"""Table II: workload characteristics (LLC-MPKI and memory footprint).

Regenerates the catalogue and verifies the synthetic workloads achieve
the paper's MPKI and footprint targets.
"""

from conftest import emit

from repro.experiments.tables import run_table2


def test_table2_workload_characteristics(run_once):
    result = run_once(run_table2)
    emit(
        result,
        "Table II: 14 rate-mode workloads, MPKI 0.19 (miniGhost) to "
        "59.8 (mcf), footprints 19.17GB to 23.18GB",
    )
    assert result.summary["max_mpki_relative_error"] < 0.05
