"""Figure 21: Chameleon-Opt mode distribution across stacked:off-chip
ratios (paper cache-mode averages: 33% at 1:3, 40.6% at 1:5, 48.7% at
1:7 — more segments per group means more groups keep a free one)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig21


def test_fig21_ratio_sensitivity(run_once):
    result = run_once(run_fig21, DEFAULT_SCALE)
    emit(result, "Opt cache-mode: 33% @1:3, 40.6% @1:5, 48.7% @1:7")
    summary = result.summary
    assert summary["1:3"] < summary["1:5"] < summary["1:7"]
    assert 20.0 < summary["1:3"] < 45.0
    assert 38.0 < summary["1:7"] < 62.0
