"""Figure 23: normalised IPC across capacity ratios (paper: Chameleon/
Chameleon-Opt beat PoM by 5.9%/7.6% at 1:3 and by 8.1%/12.4% at 1:7 —
the advantage grows when the stacked DRAM is scarcer)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig23


def test_fig23_ratio_ipc(run_once):
    result = run_once(run_fig23, DEFAULT_SCALE)
    emit(
        result,
        "Opt over PoM: +7.6% @1:3, +12.4% @1:7 (gains grow with ratio)",
    )
    summary = result.summary
    # Chameleon-Opt stays ahead of PoM at both ratios (the paper's
    # growth of the margin with the ratio is only partially reproduced;
    # see EXPERIMENTS.md).
    assert summary["1:3:opt_vs_pom"] > 0.0
    assert summary["1:7:opt_vs_pom"] > 0.0
    assert summary["1:7:opt_vs_pom"] >= summary["1:3:opt_vs_pom"] - 2.0
