"""Ablation: the PoM competing-counter swap threshold.

Section III-E describes the threshold gating swaps; this ablation
sweeps it.  A low threshold adapts faster but burns bandwidth on swaps,
a high one starves the stacked DRAM — the tension Chameleon's
threshold-free cache mode resolves.
"""

from conftest import emit

from repro.arch import PoMArchitecture
from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import FigureResult
from repro.sim import simulate
from repro.stats import geomean
from repro.workloads import benchmark, build_workload

WORKLOADS = ("mcf", "bwaves", "stream", "GemsFDTD")
THRESHOLDS = (1, 2, 4, 8, 16)


def run_threshold_ablation(scale):
    config = scale.config()
    headers = ["threshold", "geomean IPC", "avg hit %", "swaps"]
    rows = []
    summary = {}
    for threshold in THRESHOLDS:
        ipcs, hits, swaps = [], [], 0.0
        for name in WORKLOADS:
            workload = build_workload(config, benchmark(name))
            result = simulate(
                PoMArchitecture(config, swap_threshold=threshold, swap_cooldown=0),
                workload,
                accesses_per_core=scale.accesses_per_core,
                warmup_per_core=scale.warmup_per_core,
            )
            ipcs.append(result.geomean_ipc)
            hits.append(result.fast_hit_rate)
            swaps += result.swaps
        rows.append(
            [threshold, geomean(ipcs), sum(hits) / len(hits) * 100, swaps]
        )
        summary[f"ipc@{threshold}"] = geomean(ipcs)
        summary[f"swaps@{threshold}"] = swaps
    return FigureResult(
        "Ablation: PoM swap threshold", headers, rows, summary
    )


def test_ablation_swap_threshold(run_once):
    result = run_once(run_threshold_ablation, DEFAULT_SCALE)
    emit(result, "higher thresholds trade hit rate for swap bandwidth")
    summary = result.summary
    # With the epoch cooldown disabled, swaps fall monotonically as the
    # threshold rises.
    assert summary["swaps@1"] > summary["swaps@4"] > summary["swaps@16"]
