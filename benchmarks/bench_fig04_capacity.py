"""Figure 4: execution-time improvement vs the 16GB system as capacity
grows to 28GB (paper: 29.5% at 18GB to 75.4% at 24GB, saturating
afterwards)."""

from conftest import emit

from repro.experiments.longrun_figures import run_fig4


def test_fig4_capacity_improvement(run_once):
    result = run_once(run_fig4)
    emit(result, "average improvement 29.5% @18GB -> 75.4% @24GB, flat after")
    summary = result.summary
    assert summary["18GB"] < summary["20GB"] < summary["24GB"]
    assert summary["24GB"] == summary["26GB"] == summary["28GB"]
    assert 15.0 < summary["18GB"] < 45.0
    assert 55.0 < summary["24GB"] < 90.0
