"""Ablation: Chameleon's cache-mode fill policy — thrash-protected
(default) vs fill-on-every-miss ("always").  The paper specifies
threshold-free caching; the protected policy keeps that adaptivity
while resisting ping-pong on low-spatial-locality workloads."""

from conftest import emit

from repro.core import ChameleonOptArchitecture
from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import FigureResult
from repro.sim import simulate
from repro.workloads import benchmark, build_workload

WORKLOADS = ("mcf", "bwaves", "stream")


def run_fill_policy_ablation(scale):
    config = scale.config()
    headers = ["workload", "policy", "hit %", "IPC", "fills", "swaps"]
    rows = []
    summary = {}
    for name in WORKLOADS:
        workload = build_workload(config, benchmark(name))
        for policy in ("protect", "always"):
            result = simulate(
                ChameleonOptArchitecture(config, fill_policy=policy),
                workload,
                accesses_per_core=scale.accesses_per_core,
                warmup_per_core=scale.warmup_per_core,
            )
            rows.append(
                [
                    name,
                    policy,
                    result.fast_hit_rate * 100,
                    result.geomean_ipc,
                    result.counters["chameleon.fills"],
                    result.swaps,
                ]
            )
            summary[f"{name}:{policy}:ipc"] = result.geomean_ipc
            summary[f"{name}:{policy}:fills"] = result.counters[
                "chameleon.fills"
            ]
    return FigureResult(
        "Ablation: cache-mode fill policy", headers, rows, summary
    )


def test_ablation_fill_policy(run_once):
    result = run_once(run_fill_policy_ablation, DEFAULT_SCALE)
    emit(result, "protect resists mcf-style ping-pong; always fills more")
    summary = result.summary
    # Fill-on-every-miss always issues at least as many fills.
    for name in WORKLOADS:
        assert (
            summary[f"{name}:always:fills"]
            >= summary[f"{name}:protect:fills"]
        )
    # And on the thrash-prone workload the protection pays off.
    assert summary["mcf:protect:ipc"] >= summary["mcf:always:ipc"] * 0.95
