"""Figure 18: normalised IPC of the six main designs (paper geomeans vs
the 20GB flat baseline: 24GB flat +35.6%, PoM +85.2%, Chameleon +96.8%,
Chameleon-Opt +106.3%; Chameleon-Opt beats PoM by 11.6% and Alloy by
24.2%)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig18


def test_fig18_normalised_ipc(run_once):
    result = run_once(run_fig18, DEFAULT_SCALE)
    emit(
        result,
        "geomean vs 20GB baseline: 24GB 1.356, PoM 1.852, Chameleon "
        "1.968, Opt 2.063",
    )
    summary = result.summary
    # The paper's full ordering.
    assert summary["baseline_20GB_DDR3"] == 1.0
    assert summary["Alloy-Cache"] < summary["baseline_24GB_DDR3"] * 1.2
    assert summary["baseline_24GB_DDR3"] < summary["PoM"]
    assert summary["PoM"] < summary["Chameleon"]
    assert summary["Chameleon"] < summary["Chameleon-Opt"]
    # Hardware PoM designs land far above the capacity-limited baseline.
    assert summary["PoM"] > 1.5
