"""Ablation: the Section VI-G future-work extension — cross-group
free-segment sharing.  Fully allocated groups borrow idle stacked slots
from groups with spare free segments, lifting the segment-restricted
remapping limitation the paper calls out."""

from conftest import emit

from repro.core import ChameleonOptArchitecture, ChameleonSharedPool
from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import FigureResult
from repro.sim import simulate
from repro.stats import geomean
from repro.workloads import benchmark, build_workload

WORKLOADS = ("mcf", "bwaves", "GemsFDTD", "cloverleaf")


def run_shared_pool_ablation(scale):
    config = scale.config()
    headers = ["workload", "Opt hit %", "Shared hit %", "Opt IPC",
               "Shared IPC", "borrows"]
    rows = []
    opt_ipcs, shared_ipcs = [], []
    for name in WORKLOADS:
        workload = build_workload(config, benchmark(name))
        opt = simulate(
            ChameleonOptArchitecture(config),
            workload,
            accesses_per_core=scale.accesses_per_core,
            warmup_per_core=scale.warmup_per_core,
        )
        shared = simulate(
            ChameleonSharedPool(config),
            workload,
            accesses_per_core=scale.accesses_per_core,
            warmup_per_core=scale.warmup_per_core,
        )
        opt_ipcs.append(opt.geomean_ipc)
        shared_ipcs.append(shared.geomean_ipc)
        rows.append(
            [
                name,
                opt.fast_hit_rate * 100,
                shared.fast_hit_rate * 100,
                opt.geomean_ipc,
                shared.geomean_ipc,
                shared.counters["shared_pool.borrows"],
            ]
        )
    summary = {
        "opt_geomean": geomean(opt_ipcs),
        "shared_geomean": geomean(shared_ipcs),
    }
    return FigureResult(
        "Ablation: cross-group shared pool (Section VI-G extension)",
        headers,
        rows,
        summary,
    )


def test_ablation_shared_pool(run_once):
    result = run_once(run_shared_pool_ablation, DEFAULT_SCALE)
    emit(
        result,
        "future work: sharing free segments across groups relieves the "
        "segment-restricted remapping limitation",
    )
    summary = result.summary
    # The extension must not lose to plain Chameleon-Opt.
    assert summary["shared_geomean"] >= summary["opt_geomean"] * 0.97
