"""Section VI-F: ISA-Alloc/ISA-Free overhead analysis (paper: 242.8M
ISA events over the 53.8-hour Figure 3 schedule, one conservative 2KB
swap each at 700 cycles/64B on a 2.25GHz Xeon = 1.06% of end-to-end
execution time)."""

from repro.experiments.overhead import run_overhead_analysis


def test_secVIF_isa_overhead(run_once):
    report = run_once(run_overhead_analysis)
    print()
    print("Section VI-F: ISA-Alloc/ISA-Free overhead analysis")
    print(f"  ISA events        : {report.isa_events / 1e6:,.1f}M (paper 242.8M)")
    print(f"  swap time         : {report.swap_seconds:,.0f}s (paper 2071.89s)")
    print(f"  end-to-end time   : {report.total_seconds / 3600:,.1f}h (paper 53.8h)")
    print(f"  overhead          : {report.overhead_percent:.2f}% (paper 1.06%)")
    assert 1e8 < report.isa_events < 5e8
    assert 0.3 < report.overhead_percent < 3.0
