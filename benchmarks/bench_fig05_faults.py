"""Figure 5: page faults (millions) and CPU utilisation per capacity
(paper: faults fall and utilisation rises to 100% as capacity grows;
at low capacities tasks sit in the uninterruptible "D" state)."""

from conftest import emit

from repro.experiments.longrun_figures import run_fig5


def test_fig5_faults_and_utilisation(run_once):
    result = run_once(run_fig5)
    emit(
        result,
        "utilisation ~10-40% at 16GB rising to 100% at 24GB+; faults "
        "drop to zero",
    )
    summary = result.summary
    assert summary["util@16GB"] < summary["util@20GB"] < summary["util@24GB"]
    assert summary["util@24GB"] > 99.9
    assert summary["faults_M@24GB"] == 0.0
    assert summary["faults_M@16GB"] > summary["faults_M@20GB"]
