"""Ablation: seed sensitivity.

The scattered placement and access synthesis are seeded; the paper's
conclusions must not hinge on one draw.  Three seeds, headline
comparison, per-seed orderings asserted.
"""

import dataclasses

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import FigureResult
from repro.experiments.runner import geomean_by_design, run_design_sweep

DESIGNS = ("PoM", "Chameleon", "Chameleon-Opt")
WORKLOADS = ("mcf", "bwaves", "GemsFDTD", "cloverleaf")
SEEDS = (0, 1, 2)


def run_seed_ablation(base_scale):
    headers = ["seed", "PoM", "Chameleon", "Chameleon-Opt"]
    rows = []
    summary = {}
    for seed in SEEDS:
        scale = dataclasses.replace(
            base_scale,
            seed=seed,
            benchmarks=WORKLOADS,
            accesses_per_core=1200,
            warmup_per_core=3600,
        )
        results = run_design_sweep(scale, DESIGNS)
        means = geomean_by_design(results, DESIGNS, WORKLOADS)
        base = means["PoM"]
        rows.append([seed] + [means[d] / base for d in DESIGNS])
        summary[f"opt_vs_pom@seed{seed}"] = (
            means["Chameleon-Opt"] / base - 1.0
        ) * 100
    return FigureResult(
        "Ablation: seed sensitivity (IPC normalised to PoM per seed)",
        headers,
        rows,
        summary,
    )


def test_ablation_seed_sensitivity(run_once):
    result = run_once(run_seed_ablation, DEFAULT_SCALE)
    emit(result, "the Chameleon-Opt advantage holds across seeds")
    for seed in SEEDS:
        assert result.summary[f"opt_vs_pom@seed{seed}"] > -2.0
