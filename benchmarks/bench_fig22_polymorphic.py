"""Figure 22: comparison with Polymorphic Memory (paper: Chameleon
+10.5% and Chameleon-Opt +15.8% over the patent design, which harvests
the same stacked free space but never hot-swaps allocated pages)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig22


def test_fig22_polymorphic_memory(run_once):
    result = run_once(run_fig22, DEFAULT_SCALE)
    emit(result, "Chameleon +10.5%, Chameleon-Opt +15.8% over Polymorphic")
    summary = result.summary
    assert summary["opt_vs_poly_percent"] > 0.0
    assert summary["opt_vs_poly_percent"] > summary["cham_vs_poly_percent"] - 1.0
