"""Figure 15: stacked-DRAM hit rate per workload (paper averages:
Alloy 62.4%, PoM 81.0%, Chameleon 84.6%, Chameleon-Opt 89.4%)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig15


def test_fig15_stacked_hit_rates(run_once):
    result = run_once(run_fig15, DEFAULT_SCALE)
    emit(result, "averages: Alloy 62.4 / PoM 81.0 / Chameleon 84.6 / Opt 89.4")
    summary = result.summary
    # Ordering: Alloy < PoM <= Chameleon <= Chameleon-Opt.
    assert summary["Alloy-Cache"] < summary["PoM"]
    assert summary["PoM"] <= summary["Chameleon"] + 1.0
    assert summary["Chameleon"] <= summary["Chameleon-Opt"] + 1.0
    # Magnitudes in the paper's neighbourhood.
    assert 45.0 < summary["Alloy-Cache"] < 75.0
    assert 70.0 < summary["PoM"] < 92.0
    assert 75.0 < summary["Chameleon-Opt"] < 95.0
