"""Ablation: segment granularity — 2KB PoM segments vs CAMEO's 64B
congruence groups (Section VII: larger segments exploit spatial
locality and shrink metadata; 64B reduces movement for low-spatial-
locality workloads like mcf)."""

from conftest import emit

from repro.arch import CameoArchitecture, PoMArchitecture
from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import FigureResult
from repro.sim import simulate
from repro.workloads import benchmark, build_workload

#: stream has long sequential runs (2KB segments shine); mcf has runs
#: of ~2 lines (64B granularity avoids fetching 2KB for 128B of use).
WORKLOADS = ("stream", "mcf", "bwaves")


def run_segment_size_ablation(scale):
    config = scale.config()
    headers = ["workload", "PoM-2KB hit %", "CAMEO-64B hit %",
               "PoM IPC", "CAMEO IPC"]
    rows = []
    summary = {}
    for name in WORKLOADS:
        workload = build_workload(config, benchmark(name))
        pom = simulate(
            PoMArchitecture(config),
            workload,
            accesses_per_core=scale.accesses_per_core,
            warmup_per_core=scale.warmup_per_core,
        )
        cameo = simulate(
            CameoArchitecture(config),
            workload,
            accesses_per_core=scale.accesses_per_core,
            warmup_per_core=scale.warmup_per_core,
        )
        rows.append(
            [
                name,
                pom.fast_hit_rate * 100,
                cameo.fast_hit_rate * 100,
                pom.geomean_ipc,
                cameo.geomean_ipc,
            ]
        )
        summary[f"pom_hit@{name}"] = pom.fast_hit_rate
        summary[f"cameo_hit@{name}"] = cameo.fast_hit_rate
    return FigureResult(
        "Ablation: 2KB segments (PoM) vs 64B lines (CAMEO)",
        headers,
        rows,
        summary,
    )


def test_ablation_segment_size(run_once):
    result = run_once(run_segment_size_ablation, DEFAULT_SCALE)
    emit(
        result,
        "Section VII: 2KB wins on spatial locality (stream); 64B cuts "
        "movement for mcf-like patterns",
    )
    summary = result.summary
    # Spatial-locality workloads prefer 2KB segments.
    assert summary["pom_hit@stream"] > summary["cameo_hit@stream"]
