"""Figure 2c: the Cloverleaf AutoNUMA timeline (90% threshold): pages
migrated per epoch and the stacked hit rate, rising to a peak (paper
77.1% at epoch 81) then decaying (to 30.7%) once the stacked node fills
and migration fails with -ENOMEM."""

from repro.experiments import DEFAULT_SCALE, format_series
from repro.experiments.os_figures import run_fig2c


def test_fig2c_cloverleaf_timeline(run_once):
    timeline, result = run_once(run_fig2c, DEFAULT_SCALE)
    print()
    print(
        format_series(
            timeline.times,
            {
                "migrated": timeline.series("migrated"),
                "hit_rate": timeline.series("hit_rate"),
            },
            title=result.figure,
        )
    )
    print("[paper] peak 77.1% at epoch 81, final 30.7%")
    summary = result.summary
    assert summary["total_migrated"] > 0
    # Rise-peak-decay: the end sits below the peak.
    assert summary["final_hit_percent"] <= summary["peak_hit_percent"]
