"""Ablation: scale invariance of the proportionally scaled methodology.

DESIGN.md claims the paper's relationships survive shrinking every
capacity by a constant factor.  This sweep runs the Chameleon-vs-PoM
comparison at three scales (2MB/4MB/8MB stacked DRAM) and checks the
orderings hold at each — the justification for simulating the paper's
4GB system at laptop scale.
"""

import dataclasses

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import FigureResult
from repro.experiments.runner import geomean_by_design, run_design_sweep

DESIGNS = ("PoM", "Chameleon", "Chameleon-Opt")
SCALES_MB = (2.0, 4.0, 8.0)
WORKLOADS = ("mcf", "bwaves", "GemsFDTD", "cloverleaf")


def run_scale_ablation(base_scale):
    headers = ["stacked size", "PoM", "Chameleon", "Chameleon-Opt",
               "Opt/PoM hit gap [pt]"]
    rows = []
    summary = {}
    for fast_mb in SCALES_MB:
        scale = dataclasses.replace(
            base_scale,
            fast_mb=fast_mb,
            benchmarks=WORKLOADS,
            accesses_per_core=1200,
            warmup_per_core=3600,
        )
        results = run_design_sweep(scale, DESIGNS)
        means = geomean_by_design(results, DESIGNS, WORKLOADS)
        base = means["PoM"]
        hit_gap = (
            sum(
                results[("Chameleon-Opt", name)].fast_hit_rate
                - results[("PoM", name)].fast_hit_rate
                for name in WORKLOADS
            )
            / len(WORKLOADS)
            * 100
        )
        rows.append(
            [f"{fast_mb:.0f}MB"]
            + [means[d] / base for d in DESIGNS]
            + [hit_gap]
        )
        summary[f"opt_vs_pom@{fast_mb:.0f}MB"] = (
            means["Chameleon-Opt"] / base - 1.0
        ) * 100
    return FigureResult(
        "Ablation: scale invariance (IPC normalised to PoM per scale)",
        headers,
        rows,
        summary,
    )


def test_ablation_scale_invariance(run_once):
    result = run_once(run_scale_ablation, DEFAULT_SCALE)
    emit(result, "orderings must hold at every scale")
    for fast_mb in SCALES_MB:
        assert result.summary[f"opt_vs_pom@{fast_mb:.0f}MB"] > -2.0
