"""Ablation: KNL-style static hybrid modes vs dynamic Chameleon
(Section II-C3 background).  KNL partitions its MC-DRAM at boot (100%
cache / 25% / 50% hybrids / 100% memory) and needs a reboot to change;
the sweep shows every static point losing somewhere — capacity
(faults) at high cache shares, hit rate at low ones — while Chameleon
reconfigures per segment group at runtime."""

from conftest import emit

from repro.arch import StaticHybridMemory
from repro.core import ChameleonOptArchitecture
from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import FigureResult
from repro.sim import simulate
from repro.stats import geomean
from repro.workloads import benchmark, build_workload

WORKLOADS = ("mcf", "bwaves", "cloverleaf", "comd")
FRACTIONS = (0.0, 0.25, 0.5, 1.0)


def run_knl_ablation(scale):
    config = scale.config()
    headers = ["design", "geomean IPC", "avg hit %", "total faults"]
    rows = []
    summary = {}

    def run_design(label, factory):
        ipcs, hits, faults = [], [], 0
        for name in WORKLOADS:
            workload = build_workload(config, benchmark(name))
            result = simulate(
                factory(),
                workload,
                accesses_per_core=scale.accesses_per_core,
                warmup_per_core=scale.warmup_per_core,
            )
            ipcs.append(result.geomean_ipc)
            hits.append(result.fast_hit_rate)
            faults += result.page_faults
        rows.append(
            [label, geomean(ipcs), sum(hits) / len(hits) * 100, faults]
        )
        summary[label] = geomean(ipcs)
        summary[f"faults:{label}"] = float(faults)

    for fraction in FRACTIONS:
        run_design(
            f"KNL {int(fraction * 100)}% cache",
            lambda f=fraction: StaticHybridMemory(config, cache_fraction=f),
        )
    run_design("Chameleon-Opt", lambda: ChameleonOptArchitecture(config))
    return FigureResult(
        "Ablation: KNL static hybrid modes vs Chameleon-Opt",
        headers,
        rows,
        summary,
    )


def test_ablation_knl_static_modes(run_once):
    result = run_once(run_knl_ablation, DEFAULT_SCALE)
    emit(
        result,
        "KNL modes are fixed until reboot; every static point loses "
        "capacity or hit rate somewhere",
    )
    summary = result.summary
    # 100% cache faults on the high-footprint workloads; 0% never does.
    assert summary["faults:KNL 100% cache"] > 0
    assert summary["faults:KNL 0% cache"] == 0
    # The dynamic design beats every static point.
    for fraction in FRACTIONS:
        assert (
            summary["Chameleon-Opt"]
            >= summary[f"KNL {int(fraction * 100)}% cache"] * 0.98
        )
