"""Figure 16: cache-mode vs PoM-mode segment-group distribution (paper
averages: 9.2% cache mode for Chameleon, 40.6% for Chameleon-Opt)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig16


def test_fig16_mode_distribution(run_once):
    result = run_once(run_fig16, DEFAULT_SCALE)
    emit(result, "averages: Chameleon 9.2% cache mode, Chameleon-Opt 40.6%")
    summary = result.summary
    # With scattered occupancy p: basic ~ (1-p), Opt ~ (1-p^6).
    assert 5.0 < summary["Chameleon"] < 20.0
    assert 30.0 < summary["Chameleon-Opt"] < 55.0
    assert summary["Chameleon-Opt"] > 2.5 * summary["Chameleon"]
