"""Figure 3: free memory over the sequential workload schedule on the
24GB machine (paper: 53.8 hours, free space swinging between a few MB
and several GB as workloads allocate at start and free at exit)."""

from repro.experiments import format_series
from repro.experiments.longrun_figures import run_fig3


def test_fig3_free_memory_timeline(run_once):
    timeline, result = run_once(run_fig3)
    print()
    print(
        format_series(
            timeline.times,
            {"free_mb": timeline.series("free_mb")},
            title=result.figure,
            max_points=30,
        )
    )
    print(
        "[paper] free memory varies from a few MB to several GB over "
        "53.8 hours; regions 1-5 drop below 6GB free"
    )
    summary = result.summary
    assert summary["min_free_mb"] < 2048  # deep troughs (region 1-5 analogue)
    assert summary["max_free_mb"] > 16_000  # near-empty between workloads
