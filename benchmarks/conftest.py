"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures at
``DEFAULT_SCALE`` (a proportionally scaled system preserving every
Table I ratio) and prints the same rows/series the paper reports, with
the paper's numbers alongside for comparison.  Runs are single-shot
(``benchmark.pedantic(rounds=1)``) — the quantity of interest is the
regenerated data, the wall-clock time is just bookkeeping.

Sweeps are memoised per (scale, design) by
:mod:`repro.experiments.runner`, so the five main-results figures share
one simulation sweep within a pytest session.
"""

from __future__ import annotations

import pytest


def emit(result, paper_note: str = "") -> None:
    """Print a regenerated figure table plus the paper's reference."""
    print()
    print(result.render())
    if paper_note:
        print(f"[paper] {paper_note}")


@pytest.fixture
def run_once(benchmark):
    """Run a figure runner exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
