"""Ablation: DRAM data-movement energy across designs.

The paper's Section I motivates PoM with system cost and power; the
other side of that coin is the energy swap traffic burns.  This bench
estimates per-design DRAM energy from the device counters: designs
that move fewer segment bytes (Chameleon-Opt) spend less transfer
energy than swap-happy PoM at equal-or-better performance.
"""

from conftest import emit

from repro.arch import PoMArchitecture
from repro.core import ChameleonArchitecture, ChameleonOptArchitecture
from repro.dram.power import system_energy
from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import FigureResult
from repro.sim import simulate
from repro.workloads import benchmark, build_workload

WORKLOADS = ("mcf", "bwaves", "stream", "GemsFDTD")
DESIGNS = (
    ("PoM", PoMArchitecture),
    ("Chameleon", ChameleonArchitecture),
    ("Chameleon-Opt", ChameleonOptArchitecture),
)


def run_energy_ablation(scale):
    config = scale.config()
    headers = ["design", "transfer uJ", "activate uJ", "moved MB", "swaps"]
    rows = []
    summary = {}
    for label, factory in DESIGNS:
        transfer = activate = moved = swaps = 0.0
        for name in WORKLOADS:
            workload = build_workload(config, benchmark(name))
            result = simulate(
                factory(config),
                workload,
                accesses_per_core=scale.accesses_per_core,
                warmup_per_core=scale.warmup_per_core,
            )
            report = system_energy(
                result.counters, config.fast_mem, config.slow_mem, 0.0
            )
            transfer += report.transfer_nj / 1000.0
            activate += report.activate_nj / 1000.0
            moved += (
                result.counters["dram.stacked.bytes"]
                + result.counters["dram.offchip.bytes"]
            ) / (1 << 20)
            swaps += result.swaps
        rows.append([label, transfer, activate, moved, swaps])
        summary[f"transfer_uj:{label}"] = transfer
        summary[f"moved_mb:{label}"] = moved
    return FigureResult(
        "Ablation: DRAM data-movement energy", headers, rows, summary
    )


def test_ablation_movement_energy(run_once):
    result = run_once(run_energy_ablation, DEFAULT_SCALE)
    emit(
        result,
        "free-space awareness deletes swap bytes, hence transfer energy",
    )
    summary = result.summary
    assert (
        summary["transfer_uj:Chameleon-Opt"]
        <= summary["transfer_uj:PoM"] * 1.02
    )
    assert summary["moved_mb:Chameleon-Opt"] <= summary["moved_mb:PoM"] * 1.02
