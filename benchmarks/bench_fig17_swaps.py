"""Figure 17: segment swaps normalised to PoM (paper: Chameleon 0.856,
Chameleon-Opt 0.569 — 14.4% and 43.1% fewer swaps)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig17


def test_fig17_swap_reduction(run_once):
    result = run_once(run_fig17, DEFAULT_SCALE)
    emit(result, "Chameleon 0.856x PoM swaps, Chameleon-Opt 0.569x")
    summary = result.summary
    assert summary["PoM"] == 1.0
    assert summary["Chameleon"] < 1.0
    assert summary["Chameleon-Opt"] < summary["Chameleon"]
    assert 0.45 < summary["Chameleon-Opt"] < 0.85
