"""Figure 20: Chameleon vs the OS-based solutions (paper: Chameleon
+28.7% over the NUMA-aware allocator and +19.1% over AutoNUMA;
Chameleon-Opt +34.8% and +24.9%)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig20


def test_fig20_os_solutions(run_once):
    result = run_once(run_fig20, DEFAULT_SCALE)
    emit(
        result,
        "Chameleon +28.7%/+19.1% over first-touch/AutoNUMA; Opt "
        "+34.8%/+24.9%",
    )
    summary = result.summary
    # Hardware co-design beats both OS-based policies.
    assert summary["Chameleon-Opt"] > summary["numaAware"]
    assert summary["Chameleon-Opt"] > summary["autoNUMA_90percent"]
    assert summary["Chameleon"] > summary["numaAware"]
    # AutoNUMA improves on plain first-touch hit rates via migration.
    assert summary["autoNUMA_90percent"] >= summary["autoNUMA_70percent"] * 0.95
