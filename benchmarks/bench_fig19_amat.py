"""Figure 19: average memory access latency in CPU cycles (paper:
PoM highest at ~600-700 cycles geomean, Chameleon lower, Chameleon-Opt
lowest — fewer swaps and higher hit rates cut the AMAT)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.figures import run_fig19


def test_fig19_memory_latency(run_once):
    result = run_once(run_fig19, DEFAULT_SCALE)
    emit(result, "geomean AMAT: PoM > Chameleon > Chameleon-Opt")
    summary = result.summary
    assert summary["Chameleon-Opt"] <= summary["Chameleon"] * 1.02
    assert summary["Chameleon"] <= summary["PoM"] * 1.02
    # Hundreds of CPU cycles, as in the paper's y-axis.
    assert 20.0 < summary["PoM"] < 1500.0
