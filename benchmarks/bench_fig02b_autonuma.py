"""Figure 2b: AutoNUMA stacked-DRAM hit rates for the 70/80/90%
numa_period_threshold settings (paper average 64.4%, higher threshold
is better)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.os_figures import run_fig2b


def test_fig2b_autonuma_thresholds(run_once):
    result = run_once(run_fig2b, DEFAULT_SCALE)
    emit(result, "avg 64.4%; 90% threshold > 80% > 70%")
    low = result.summary["autoNUMA_70percent"]
    high = result.summary["autoNUMA_90percent"]
    assert high >= low  # higher threshold migrates more rapidly
    # AutoNUMA clearly beats first-touch but stays below hardware designs.
    assert 25.0 < high < 90.0
