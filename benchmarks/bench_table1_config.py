"""Table I: the simulated baseline configuration.

Regenerates the configuration table from :mod:`repro.config` and checks
the architectural ratios the rest of the evaluation relies on.
"""

from conftest import emit

from repro.experiments.tables import run_table1


def test_table1_configuration(run_once):
    result = run_once(run_table1)
    emit(
        result,
        "Table I: 12 cores @3.6GHz, 4GB stacked (128b/ch @1.6GHz DDR), "
        "20GB off-chip (64b/ch @0.8GHz DDR), 11-11-11-28, 100K-cycle faults",
    )
    assert result.summary["peak_bw_ratio"] == 4.0
    assert result.summary["capacity_ratio"] == 5.0
