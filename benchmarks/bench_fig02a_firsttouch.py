"""Figure 2a: stacked-DRAM hit rate of the NUMA-aware first-touch
allocator (paper average: 18.5%)."""

from conftest import emit

from repro.experiments import DEFAULT_SCALE
from repro.experiments.os_figures import run_fig2a


def test_fig2a_first_touch_hit_rate(run_once):
    result = run_once(run_fig2a, DEFAULT_SCALE)
    emit(result, "average hit rate 18.5% (capacity-share bound)")
    # Shape: hit rate hugs the stacked capacity share (~17-20%), far
    # below any hardware-managed design.
    assert 5.0 < result.summary["average"] < 40.0
