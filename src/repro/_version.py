"""Single source of the package version.

Lives in its own module so low-level consumers (the result cache and
the trace arena key their content by version; :mod:`repro.api` reports
it) can import the string without importing the whole :mod:`repro`
namespace.
"""

__version__ = "1.5.0"
