"""Trace inspection CLI.

Characterise a stored trace file (the Table II quantities)::

    python -m repro.trace path/to/trace.gz

Or synthesise-and-characterise a catalogue benchmark::

    python -m repro.trace --benchmark mcf --accesses 20000
"""

from __future__ import annotations

import argparse
import sys

from repro.config import scaled_config
from repro.trace.io import read_trace
from repro.trace.stats import characterize
from repro.workloads import benchmark, build_workload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Characterise a memory-access trace.",
    )
    parser.add_argument("path", nargs="?", help="trace file (gzip)")
    parser.add_argument(
        "--benchmark",
        help="synthesise a Table II benchmark instead of reading a file",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=20_000,
        help="accesses to synthesise with --benchmark",
    )
    args = parser.parse_args(argv)

    if args.benchmark:
        config = scaled_config()
        workload = build_workload(config, benchmark(args.benchmark))
        records = workload.generators()[0].stream(args.accesses)
        label = f"{args.benchmark} (synthetic, {args.accesses} accesses)"
    elif args.path:
        records = read_trace(args.path)
        label = args.path
    else:
        parser.print_usage(sys.stderr)
        print(
            "error: give a trace path or --benchmark NAME", file=sys.stderr
        )
        return 2

    profile = characterize(records)
    print(label)
    print(profile.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
