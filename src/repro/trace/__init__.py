"""Memory-access trace records, file round-trip, and stream utilities.

The simulator is trace-driven (the substitution for the paper's GEM5
full-system runs): each core consumes a stream of
:class:`~repro.trace.records.AccessRecord` — an LLC-level memory access
annotated with the number of instructions committed since the previous
access.  Streams can be synthesised (:mod:`repro.workloads`), written to
and replayed from disk (:mod:`repro.trace.io`), and interleaved across
cores (:func:`repro.trace.streams.interleave`).
"""

from repro.trace.batch import BUFFER_ALIGNMENT, RecordBatch, align_offset
from repro.trace.records import AccessRecord
from repro.trace.io import read_trace, write_trace
from repro.trace.streams import (
    interleave,
    replay_batches,
    take,
    truncate_instructions,
)

__all__ = [
    "AccessRecord",
    "BUFFER_ALIGNMENT",
    "RecordBatch",
    "align_offset",
    "read_trace",
    "write_trace",
    "interleave",
    "replay_batches",
    "take",
    "truncate_instructions",
]
