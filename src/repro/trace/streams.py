"""Stream utilities: interleaving per-core traces, bounding them, and
replaying precompiled column batches."""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.trace.batch import RecordBatch
from repro.trace.records import AccessRecord


def replay_batches(
    batch: RecordBatch, batch_lengths: Sequence[int]
) -> Iterator[RecordBatch]:
    """Re-slice a concatenated column run into its original chunks.

    Inverse of :meth:`RecordBatch.concat`: ``batch_lengths`` records the
    chunk boundaries the generator originally produced, and each yielded
    chunk is a zero-copy view into ``batch``'s columns — this is how an
    attached shared-memory arena trace replays without touching the
    payload.
    """
    total = int(sum(batch_lengths))
    if total != len(batch):
        raise ValueError(
            f"batch_lengths sum to {total}, batch holds {len(batch)} records"
        )
    start = 0
    for length in batch_lengths:
        end = start + int(length)
        yield RecordBatch(
            addresses=batch.addresses[start:end],
            icount_gaps=batch.icount_gaps[start:end],
            is_writes=batch.is_writes[start:end],
        )
        start = end


def take(records: Iterable[AccessRecord], limit: int) -> Iterator[AccessRecord]:
    """At most the first ``limit`` records."""
    if limit < 0:
        raise ValueError("limit must be non-negative")
    for index, record in enumerate(records):
        if index >= limit:
            return
        yield record


def truncate_instructions(
    records: Iterable[AccessRecord], max_instructions: int
) -> Iterator[AccessRecord]:
    """Stop the stream once ``max_instructions`` have been committed.

    Mirrors the paper's methodology of simulating a fixed 500M
    instructions per application.
    """
    committed = 0
    for record in records:
        committed += record.icount_gap
        if committed > max_instructions:
            return
        yield record


def interleave(
    streams: Sequence[Iterable[AccessRecord]],
) -> Iterator[Tuple[int, AccessRecord]]:
    """Merge per-core streams by instruction progress.

    Yields ``(core_id, record)`` in the order the accesses would be
    issued if all cores commit instructions at the same rate — the same
    round-robin-by-icount interleaving GEM5's simple multi-core
    interleaving produces for rate-mode workloads.
    """
    iterators: List[Iterator[AccessRecord]] = [iter(s) for s in streams]
    heap: List[Tuple[int, int, AccessRecord]] = []
    progress = [0] * len(iterators)
    for core_id, iterator in enumerate(iterators):
        record = next(iterator, None)
        if record is not None:
            progress[core_id] += record.icount_gap
            heap.append((progress[core_id], core_id, record))
    heapq.heapify(heap)
    while heap:
        _, core_id, record = heapq.heappop(heap)
        yield core_id, record
        nxt = next(iterators[core_id], None)
        if nxt is not None:
            progress[core_id] += nxt.icount_gap
            heapq.heappush(heap, (progress[core_id], core_id, nxt))
