"""Struct-of-arrays record batches for the chunked replay kernel.

A :class:`RecordBatch` carries the same information as a run of
:class:`~repro.trace.records.AccessRecord` objects — address, write
flag, instruction gap — as three parallel NumPy arrays.  Generators
produce batches directly (one per drawn access plan), the batched
simulation kernel consumes them without materialising per-record
objects, and :meth:`RecordBatch.records` adapts a batch back into the
scalar iterator protocol for everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Sequence

import numpy as np

from repro.trace.records import AccessRecord

#: Byte alignment of every column placed in an exported buffer.
BUFFER_ALIGNMENT = 8


def align_offset(offset: int) -> int:
    """Round ``offset`` up to the next :data:`BUFFER_ALIGNMENT` boundary."""
    return -(-offset // BUFFER_ALIGNMENT) * BUFFER_ALIGNMENT


@dataclass(frozen=True)
class RecordBatch:
    """A contiguous run of per-core trace records, column-major.

    Attributes
    ----------
    addresses:
        ``int64`` OS-physical byte addresses.
    icount_gaps:
        ``int64`` instructions committed since each stream's previous
        record.
    is_writes:
        ``bool`` store flags.
    """

    addresses: np.ndarray
    icount_gaps: np.ndarray
    is_writes: np.ndarray

    def __post_init__(self) -> None:
        if not (
            len(self.addresses) == len(self.icount_gaps) == len(self.is_writes)
        ):
            raise ValueError("batch columns must have equal length")

    def __len__(self) -> int:
        return len(self.addresses)

    def gaps_ns(self, ns_per_instruction: float) -> np.ndarray:
        """Per-record instruction-gap durations as ``float64`` ns.

        Elementwise ``icount_gap * ns_per_instruction`` — bit-identical
        to the scalar loop's per-record multiply (both are a single
        IEEE-754 double operation on an exactly-converted gap), hoisted
        to one vectorised pass per chunk for the batched kernels.
        """
        return self.icount_gaps * ns_per_instruction

    def records(self) -> Iterator[AccessRecord]:
        """Scalar-compatibility view: yield one record per row."""
        for address, is_write, gap in zip(
            self.addresses.tolist(),
            self.is_writes.tolist(),
            self.icount_gaps.tolist(),
        ):
            yield AccessRecord(
                address=address, is_write=is_write, icount_gap=gap
            )

    @classmethod
    def from_records(cls, records: Iterable[AccessRecord]) -> "RecordBatch":
        """Columnise an iterable of scalar records."""
        rows = list(records)
        return cls(
            addresses=np.asarray(
                [r.address for r in rows], dtype=np.int64
            ),
            icount_gaps=np.asarray(
                [r.icount_gap for r in rows], dtype=np.int64
            ),
            is_writes=np.asarray(
                [r.is_write for r in rows], dtype=bool
            ),
        )

    # -- buffer export/attach (shared-memory arena) --------------------

    @property
    def nbytes(self) -> int:
        """Raw column payload size (excluding alignment padding)."""
        return int(
            self.addresses.nbytes
            + self.icount_gaps.nbytes
            + self.is_writes.nbytes
        )

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches into one contiguous column run.

        The inverse (restoring the original chunk boundaries) is
        :func:`repro.trace.streams.replay_batches`.
        """
        if not batches:
            return cls(
                addresses=np.empty(0, dtype=np.int64),
                icount_gaps=np.empty(0, dtype=np.int64),
                is_writes=np.empty(0, dtype=bool),
            )
        return cls(
            addresses=np.concatenate([b.addresses for b in batches]),
            icount_gaps=np.concatenate([b.icount_gaps for b in batches]),
            is_writes=np.concatenate([b.is_writes for b in batches]),
        )

    @staticmethod
    def buffer_layout(records: int, offset: int = 0) -> Dict[str, int]:
        """Column byte offsets for ``records`` rows placed at ``offset``.

        The layout dict is the unit of the arena manifest: it is
        JSON-safe and is all :meth:`attach` needs to rebuild zero-copy
        views over an exported buffer.  ``end`` is the aligned offset
        just past the block.
        """
        if records < 0:
            raise ValueError("records must be non-negative")
        addresses = align_offset(offset)
        icount_gaps = addresses + records * 8
        is_writes = icount_gaps + records * 8
        return {
            "records": records,
            "addresses": addresses,
            "icount_gaps": icount_gaps,
            "is_writes": is_writes,
            "end": align_offset(is_writes + records),
        }

    def export_into(self, buffer, layout: Dict[str, int]) -> None:
        """Copy the three columns into ``buffer`` at ``layout``'s
        offsets (produced by :meth:`buffer_layout` for ``len(self)``
        rows)."""
        records = layout["records"]
        if records != len(self):
            raise ValueError(
                f"layout is for {records} records, batch has {len(self)}"
            )
        np.frombuffer(
            buffer, dtype=np.int64, count=records, offset=layout["addresses"]
        )[:] = self.addresses
        np.frombuffer(
            buffer, dtype=np.int64, count=records, offset=layout["icount_gaps"]
        )[:] = self.icount_gaps
        np.frombuffer(
            buffer, dtype=bool, count=records, offset=layout["is_writes"]
        )[:] = self.is_writes

    @classmethod
    def attach(
        cls, buffer, layout: Dict[str, int], writable: bool = False
    ) -> "RecordBatch":
        """Zero-copy view over columns previously :meth:`export_into`-ed
        at ``layout``'s offsets (read-only unless ``writable``)."""
        records = layout["records"]

        def view(dtype, key: str) -> np.ndarray:
            array = np.frombuffer(
                buffer, dtype=dtype, count=records, offset=layout[key]
            )
            if not writable:
                array = array.view()
                array.flags.writeable = False
            return array

        return cls(
            addresses=view(np.int64, "addresses"),
            icount_gaps=view(np.int64, "icount_gaps"),
            is_writes=view(bool, "is_writes"),
        )
