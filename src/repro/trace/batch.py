"""Struct-of-arrays record batches for the chunked replay kernel.

A :class:`RecordBatch` carries the same information as a run of
:class:`~repro.trace.records.AccessRecord` objects — address, write
flag, instruction gap — as three parallel NumPy arrays.  Generators
produce batches directly (one per drawn access plan), the batched
simulation kernel consumes them without materialising per-record
objects, and :meth:`RecordBatch.records` adapts a batch back into the
scalar iterator protocol for everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.trace.records import AccessRecord


@dataclass(frozen=True)
class RecordBatch:
    """A contiguous run of per-core trace records, column-major.

    Attributes
    ----------
    addresses:
        ``int64`` OS-physical byte addresses.
    icount_gaps:
        ``int64`` instructions committed since each stream's previous
        record.
    is_writes:
        ``bool`` store flags.
    """

    addresses: np.ndarray
    icount_gaps: np.ndarray
    is_writes: np.ndarray

    def __post_init__(self) -> None:
        if not (
            len(self.addresses) == len(self.icount_gaps) == len(self.is_writes)
        ):
            raise ValueError("batch columns must have equal length")

    def __len__(self) -> int:
        return len(self.addresses)

    def records(self) -> Iterator[AccessRecord]:
        """Scalar-compatibility view: yield one record per row."""
        for address, is_write, gap in zip(
            self.addresses.tolist(),
            self.is_writes.tolist(),
            self.icount_gaps.tolist(),
        ):
            yield AccessRecord(
                address=address, is_write=is_write, icount_gap=gap
            )

    @classmethod
    def from_records(cls, records: Iterable[AccessRecord]) -> "RecordBatch":
        """Columnise an iterable of scalar records."""
        rows = list(records)
        return cls(
            addresses=np.asarray(
                [r.address for r in rows], dtype=np.int64
            ),
            icount_gaps=np.asarray(
                [r.icount_gap for r in rows], dtype=np.int64
            ),
            is_writes=np.asarray(
                [r.is_write for r in rows], dtype=bool
            ),
        )
