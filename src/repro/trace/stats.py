"""Trace characterisation: the Table II quantities from any trace.

Given an access stream, :func:`characterize` measures the properties
the synthetic generator is parameterised by — MPKI, footprint, write
fraction, spatial run lengths, temporal reuse skew — so real or
synthetic traces can be compared against the Table II catalogue, and
new workload personalities can be fitted from recorded traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List

from repro.config import CACHELINE_BYTES, PAGE_BYTES
from repro.trace.records import AccessRecord


@dataclass(frozen=True)
class TraceProfile:
    """Measured characteristics of one access stream."""

    accesses: int
    instructions: int
    write_fraction: float
    footprint_bytes: int
    distinct_pages: int
    mean_run_length: float
    #: Fraction of accesses landing on the hottest 10% of touched pages
    #: (temporal skew; 0.1 means uniform).
    top_decile_share: float
    #: Fraction of accesses whose page was seen before (reuse).
    reuse_fraction: float

    @property
    def mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return self.accesses / self.instructions * 1000.0

    def summary(self) -> str:
        return (
            f"accesses={self.accesses:,} instructions={self.instructions:,} "
            f"MPKI={self.mpki:.2f} writes={self.write_fraction:.1%} "
            f"footprint={self.footprint_bytes / (1 << 20):.2f}MB "
            f"pages={self.distinct_pages:,} "
            f"run={self.mean_run_length:.1f} lines "
            f"top10%={self.top_decile_share:.1%} "
            f"reuse={self.reuse_fraction:.1%}"
        )


def characterize(
    records: Iterable[AccessRecord],
    page_bytes: int = PAGE_BYTES,
) -> TraceProfile:
    """Measure a stream (consumes it)."""
    accesses = 0
    instructions = 0
    writes = 0
    page_counts: Counter = Counter()
    seen_pages = set()
    reuse_hits = 0
    runs: List[int] = []
    current_run = 0
    previous_line = None

    for record in records:
        accesses += 1
        instructions += record.icount_gap
        if record.is_write:
            writes += 1
        page = record.address // page_bytes
        if page in seen_pages:
            reuse_hits += 1
        seen_pages.add(page)
        page_counts[page] += 1
        line = record.address // CACHELINE_BYTES
        if previous_line is not None and line == previous_line + 1:
            current_run += 1
        else:
            if current_run:
                runs.append(current_run)
            current_run = 1
        previous_line = line
    if current_run:
        runs.append(current_run)

    if not accesses:
        return TraceProfile(
            accesses=0,
            instructions=0,
            write_fraction=0.0,
            footprint_bytes=0,
            distinct_pages=0,
            mean_run_length=0.0,
            top_decile_share=0.0,
            reuse_fraction=0.0,
        )

    ranked = sorted(page_counts.values(), reverse=True)
    top = max(1, len(ranked) // 10)
    return TraceProfile(
        accesses=accesses,
        instructions=instructions,
        write_fraction=writes / accesses,
        footprint_bytes=len(seen_pages) * page_bytes,
        distinct_pages=len(seen_pages),
        mean_run_length=sum(runs) / len(runs),
        top_decile_share=sum(ranked[:top]) / accesses,
        reuse_fraction=reuse_hits / accesses,
    )
