"""Trace record definitions."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class AccessRecord:
    """One memory access in a per-core trace.

    Attributes
    ----------
    address:
        Byte address in the core's *OS physical* address space.  The
        architecture under test translates it (remap tables, cache
        placement) to a device location.
    is_write:
        Store (``True``) or load (``False``).
    icount_gap:
        Instructions committed since the previous record of the same
        stream; encodes memory intensity (MPKI) without storing every
        instruction.
    """

    address: int
    is_write: bool = False
    icount_gap: int = 1

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.icount_gap < 0:
            raise ValueError("icount_gap must be non-negative")

    def shifted(self, offset: int) -> "AccessRecord":
        """The same access relocated by ``offset`` bytes."""
        return AccessRecord(self.address + offset, self.is_write, self.icount_gap)
