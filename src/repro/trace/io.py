"""Trace file round-trip.

Traces are stored as gzip-compressed text, one record per line:
``address is_write icount_gap`` with the address in hex.  The format is
deliberately trivial — it diffs well, greps well, and round-trips exactly.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator

from repro.trace.records import AccessRecord

_MAGIC = "#repro-trace-v1"


def write_trace(path: str | Path, records: Iterable[AccessRecord]) -> int:
    """Write ``records`` to ``path``; returns the number written."""
    path = Path(path)
    count = 0
    with gzip.open(path, "wt", encoding="ascii") as handle:
        handle.write(_MAGIC + "\n")
        for record in records:
            handle.write(
                f"{record.address:x} {int(record.is_write)} {record.icount_gap}\n"
            )
            count += 1
    return count


def read_trace(path: str | Path) -> Iterator[AccessRecord]:
    """Lazily yield the records stored at ``path``."""
    path = Path(path)
    with gzip.open(path, "rt", encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        if header != _MAGIC:
            raise ValueError(f"{path} is not a repro trace (header {header!r})")
        for line_number, line in enumerate(handle, start=2):
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"{path}:{line_number}: malformed record {line!r}")
            address, is_write, gap = parts
            yield AccessRecord(int(address, 16), bool(int(is_write)), int(gap))
