"""OS-managed heterogeneous memory designs (Sections II-B, III-A).

These are the software baselines of Figures 2 and 20: the memories are
exposed to the OS as two NUMA nodes and placement is decided purely in
software.

* :class:`FirstTouchMemory` — the NUMA-aware "local" allocator: pages
  land in the fast node in *allocation order* until it fills, then
  spill to the slow node, and never move again.  Allocation order is
  uncorrelated with hotness, so the stacked hit rate degenerates to
  roughly the capacity ratio (Figure 2a's 18.5%).
* :class:`AutoNumaMemory` — AutoNUMA on top of first-touch: scan epochs
  poison a sample of pages, whose next access takes a NUMA hint fault
  (a trapped minor fault costing microseconds); hot misplaced pages
  migrate into the fast node while it has free space; once full,
  migration fails with -ENOMEM and the hit rate decays with phase churn
  (Figures 2b/2c).  Hint faults and migration copies are the costs that
  keep AutoNUMA below the hardware co-designs in Figure 20.
"""

from __future__ import annotations

from typing import Dict

from repro.config import SystemConfig
from repro.arch.base import MemoryArchitecture
from repro.arch.remap import SegmentGeometry
from repro.osmodel.autonuma import (
    FAST_NODE,
    SLOW_NODE,
    AutoNumaBalancer,
    AutoNumaConfig,
)
from repro.stats import CounterSet


class FirstTouchMemory(MemoryArchitecture):
    """NUMA-aware first-touch allocation, no migration."""

    name = "numa_first_touch"

    def __init__(self, config: SystemConfig, counters: CounterSet | None = None):
        super().__init__(config, counters)
        self.geometry = SegmentGeometry.from_config(config)
        self._placement: Dict[int, bool] = {}  # segment -> in_fast
        self._slot: Dict[int, int] = {}        # segment -> device slot
        self._fast_used = 0
        self._slow_used = 0
        self._free_fast_slots: list[int] = []
        self._free_slow_slots: list[int] = []

    def isa_alloc(self, segment_id: int) -> None:
        """Allocation-order placement: fast node until it is full."""
        if segment_id in self._placement:
            return
        in_fast = self._fast_used < self.geometry.num_fast_segments
        self._placement[segment_id] = in_fast
        if in_fast:
            self._slot[segment_id] = (
                self._free_fast_slots.pop()
                if self._free_fast_slots
                else self._fast_used
            )
            self._fast_used += 1
            self.counters.add("numa.placed_fast")
        else:
            self._slot[segment_id] = (
                self._free_slow_slots.pop()
                if self._free_slow_slots
                else self._slow_used % self.geometry.num_slow_segments
            )
            self._slow_used += 1
            self.counters.add("numa.placed_slow")

    def isa_free(self, segment_id: int) -> None:
        in_fast = self._placement.pop(segment_id, None)
        if in_fast is None:
            return
        slot = self._slot.pop(segment_id)
        if in_fast:
            self._fast_used -= 1
            self._free_fast_slots.append(slot)
        else:
            self._free_slow_slots.append(slot)

    def _device_address(self, segment_id: int, in_fast: bool, offset: int) -> int:
        return self._slot[segment_id] * self.geometry.segment_bytes + offset

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        segment = self.geometry.segment_of(address)
        in_fast = self._placement.get(segment)
        if in_fast is None:
            # Untracked access (first touch happens here for robustness).
            self.isa_alloc(segment)
            in_fast = self._placement[segment]
        offset = address % self.geometry.segment_bytes
        device_address = self._device_address(segment, in_fast, offset)
        latency = (
            self.memory.fast.access(device_address, now_ns, is_write)
            if in_fast
            else self.memory.slow.access(device_address, now_ns, is_write)
        )
        return latency, bool(in_fast)


class AutoNumaMemory(FirstTouchMemory):
    """First-touch placement plus AutoNUMA epoch migration."""

    name = "autonuma"

    #: Cost of one NUMA hint fault (trap, fixup, bookkeeping) in ns.
    HINT_FAULT_NS = 1500.0

    def __init__(
        self,
        config: SystemConfig,
        autonuma: AutoNumaConfig | None = None,
        epoch_accesses: int = 20_000,
        initial_fast_fill: float = 0.9,
        counters: CounterSet | None = None,
    ) -> None:
        super().__init__(config, counters)
        if epoch_accesses <= 0:
            raise ValueError("epoch length must be positive")
        if not 0.0 < initial_fast_fill <= 1.0:
            raise ValueError("initial fill must be in (0, 1]")
        self.autonuma_config = (
            autonuma if autonuma is not None else AutoNumaConfig()
        )
        self.epoch_accesses = epoch_accesses
        self.balancer = AutoNumaBalancer(
            fast_capacity_pages=self.geometry.num_fast_segments,
            config=self.autonuma_config,
            counters=self.counters,
        )
        # First-touch pre-fills only part of the fast node (footnote 3:
        # some stacked pages are pre-allocated; the rest is headroom
        # AutoNUMA migrates into).
        self._fast_budget = int(
            self.geometry.num_fast_segments * initial_fast_fill
        )
        # Epoch length is access-driven in the trace simulator; the
        # cycle-based scan period of the real kernel maps onto it via
        # the workload's access rate.
        self._accesses_this_epoch = 0
        self._epoch_index = 0
        self._epoch_hint_faulted: set[int] = set()

    # -- placement ------------------------------------------------------

    def isa_alloc(self, segment_id: int) -> None:
        if segment_id in self._placement:
            return
        in_fast = self._fast_used < self._fast_budget
        self._placement[segment_id] = in_fast
        self.balancer.place(
            segment_id, FAST_NODE if in_fast else SLOW_NODE
        )
        if in_fast:
            self._slot[segment_id] = (
                self._free_fast_slots.pop()
                if self._free_fast_slots
                else self._fast_used
            )
            self._fast_used += 1
            self.counters.add("numa.placed_fast")
        else:
            self._slot[segment_id] = (
                self._free_slow_slots.pop()
                if self._free_slow_slots
                else self._slow_used % self.geometry.num_slow_segments
            )
            self._slow_used += 1
            self.counters.add("numa.placed_slow")

    def isa_free(self, segment_id: int) -> None:
        placed = self._placement.pop(segment_id, None)
        if placed is None:
            return
        self.balancer.release(segment_id)
        slot = self._slot.pop(segment_id)
        if placed:
            self._fast_used -= 1
            self._free_fast_slots.append(slot)
        else:
            self._free_slow_slots.append(slot)

    # -- demand path with hint faults ------------------------------------

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        segment = self.geometry.segment_of(address)
        if segment not in self._placement:
            self.isa_alloc(segment)
        self.balancer.record_access(segment)
        self._accesses_this_epoch += 1
        if self._accesses_this_epoch >= self.epoch_accesses:
            self._accesses_this_epoch = 0
            self._epoch_index += 1
            self._epoch_hint_faulted.clear()
            report = self.balancer.end_epoch()
            self._apply_migrations(report, now_ns)
        in_fast = self.balancer.node_of(segment) == FAST_NODE
        offset = address % self.geometry.segment_bytes
        device_address = self._device_address(segment, in_fast, offset)
        latency = (
            self.memory.fast.access(device_address, now_ns, is_write)
            if in_fast
            else self.memory.slow.access(device_address, now_ns, is_write)
        )
        latency += self._hint_fault_penalty(segment)
        return latency, in_fast

    def _hint_fault_penalty(self, segment: int) -> float:
        """Charge the trapped minor fault of a poisoned page once per
        scan epoch (the sampling mechanism of Section II-B2)."""
        if segment in self._epoch_hint_faulted:
            return 0.0
        sample = self.autonuma_config.scan_sample_fraction
        # Deterministic poisoning: a segment is sampled this epoch when
        # its (segment, epoch) hash falls inside the sample fraction.
        token = (segment * 2654435761 + self._epoch_index * 40503) & 0xFFFF
        if token >= int(sample * 0x10000):
            return 0.0
        self._epoch_hint_faulted.add(segment)
        self.counters.add("autonuma.hint_faults")
        return self.HINT_FAULT_NS

    def _apply_migrations(self, report, now_ns: float = 0.0) -> None:
        """Sync the placement map with the balancer and charge each
        migration as a slow-read + fast-write segment copy — the data
        movement that makes coarse-grained AutoNUMA migration bursts
        interfere with demand traffic (Section III-A2)."""
        if not report.migrated:
            return
        migrated = 0
        seg_bytes = self.geometry.segment_bytes
        for segment, placed_fast in list(self._placement.items()):
            node_fast = self.balancer.node_of(segment) == FAST_NODE
            if node_fast and not placed_fast:
                self._placement[segment] = True
                old_slot = self._slot[segment]
                self._free_slow_slots.append(old_slot)
                new_slot = (
                    self._free_fast_slots.pop()
                    if self._free_fast_slots
                    else self._fast_used
                )
                self._slot[segment] = new_slot
                self._fast_used += 1
                migrated += 1
                self.memory.slow.transfer(
                    old_slot * seg_bytes, seg_bytes, now_ns
                )
                self.memory.fast.transfer(
                    new_slot * seg_bytes, seg_bytes, now_ns
                )
        self.counters.add("autonuma.page_copies", migrated)
