"""Simulation driver: wire workloads, OS, and architectures together.

:func:`repro.sim.engine.simulate` replays a multiprogrammed workload
against a memory architecture — issuing the up-front ISA-Alloc stream,
interleaving the 12 per-core access streams by instruction progress,
charging page faults when the footprint exceeds the design's OS-visible
capacity, and rolling per-core stats into the paper's metrics
(geomean IPC, stacked hit rate, swaps, AMAT).
"""

from repro.sim.engine import (
    KERNELS,
    RESULT_SCHEMA_VERSION,
    KernelDecision,
    SimulationResult,
    select_kernel,
    simulate,
)
from repro.sim.os_designs import AutoNumaMemory, FirstTouchMemory

__all__ = [
    "KERNELS",
    "KernelDecision",
    "RESULT_SCHEMA_VERSION",
    "SimulationResult",
    "select_kernel",
    "simulate",
    "AutoNumaMemory",
    "FirstTouchMemory",
]
