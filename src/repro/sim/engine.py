"""The end-to-end workload simulator.

Replays a multiprogrammed workload against a memory architecture: the
up-front ISA-Alloc stream, a warm-up phase (Section VI-A), then the
measured window, with the 12 per-core access streams merged in global
time order so the device models always see monotonic arrivals.  Designs
whose OS-visible capacity is smaller than the address space get an
LRU-paged resident set charging the Table I SSD fault latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.arch.base import MemoryArchitecture
from repro.config import SystemConfig
from repro.cpu import CoreRunStats, MulticoreModel, WorkloadPerformance
from repro.osmodel.vm import PageFaultEngine
from repro.stats import CounterSet
from repro.telemetry.bus import EventBus
from repro.telemetry.events import EpochSample
import heapq

from repro.workloads.multiprog import MultiprogramWorkload

#: Version of the :meth:`SimulationResult.to_dict` wire format.  This is
#: also the on-disk schema of :mod:`repro.runtime`'s result cache, so
#: bump it whenever the dict shape (or the meaning of a field) changes —
#: cached entries written under another version are never deserialised.
RESULT_SCHEMA_VERSION = 1

#: Target number of :class:`repro.telemetry.EpochSample` emissions over
#: the measured window when a telemetry bus is attached.
TELEMETRY_EPOCHS = 20


@dataclass
class SimulationResult:
    """Everything the experiment runners need from one run."""

    workload: str
    architecture: str
    performance: WorkloadPerformance
    fast_hit_rate: float
    average_latency_ns: float
    swaps: float
    page_faults: int
    counters: CounterSet = field(repr=False)
    cache_mode_fraction: Optional[float] = None

    @property
    def geomean_ipc(self) -> float:
        return self.performance.geomean_ipc

    def average_latency_cycles(self, config: SystemConfig) -> float:
        return self.average_latency_ns * 1e-9 * config.core.frequency_hz

    def to_dict(self) -> Dict[str, Any]:
        """Versioned, JSON-safe plain-dict form.

        The round trip through :meth:`from_dict` is lossless (floats
        survive ``json.dumps``/``loads`` exactly), so one schema serves
        both the public API and :mod:`repro.runtime` persistence.
        """
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "workload": self.workload,
            "architecture": self.architecture,
            "performance": self.performance.to_dict(),
            "fast_hit_rate": self.fast_hit_rate,
            "average_latency_ns": self.average_latency_ns,
            "swaps": self.swaps,
            "page_faults": self.page_faults,
            "counters": self.counters.to_dict(),
            "cache_mode_fraction": self.cache_mode_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported SimulationResult schema {schema!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            workload=data["workload"],
            architecture=data["architecture"],
            performance=WorkloadPerformance.from_dict(data["performance"]),
            fast_hit_rate=data["fast_hit_rate"],
            average_latency_ns=data["average_latency_ns"],
            swaps=data["swaps"],
            page_faults=data["page_faults"],
            counters=CounterSet.from_dict(data["counters"]),
            cache_mode_fraction=data["cache_mode_fraction"],
        )


def simulate(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    accesses_per_core: int,
    apply_isa: bool = True,
    warmup_per_core: int | None = None,
    telemetry: EventBus | None = None,
) -> SimulationResult:
    """Run ``workload`` on ``architecture`` and summarise.

    Follows the paper's methodology: the workload's footprint is fully
    allocated up front (one ISA-Alloc per segment for co-designed
    hardware), the remap tables and caches are warmed with
    ``warmup_per_core`` unmeasured accesses per core (default: half the
    measured count — "our workloads are fast-forwarded ... and caches
    are warmed-up", Section VI-A), then a fixed number of post-LLC
    accesses per core is replayed, interleaved across the 12 cores in
    global time order.  When the footprint exceeds the design's
    OS-visible capacity, an LRU-paged resident set charges the Table I
    SSD fault latency and remaps faulted pages into the visible range.
    """
    config = workload.config
    if warmup_per_core is None:
        warmup_per_core = accesses_per_core // 2
    # Telemetry is observational: attaching a bus must not perturb the
    # simulation (a dedicated regression test holds results
    # bit-identical with telemetry on and off).
    emit = telemetry is not None and telemetry.enabled
    if emit:
        architecture.telemetry = telemetry
    if apply_isa:
        workload.apply_allocations(architecture)

    # OS address translation / paging: designs whose OS-visible capacity
    # is smaller than the workload's address space (caches, small flat
    # baselines) get an LRU pager that both maps pages into the visible
    # range and charges SSD faults when the footprint overflows it.
    pager: Optional[PageFaultEngine] = None
    if architecture.os_visible_bytes < config.total_capacity_bytes:
        pager = PageFaultEngine(
            capacity_bytes=architecture.os_visible_bytes,
            page_bytes=config.page_bytes,
            fault_latency_cycles=config.page_fault_latency_cycles,
            telemetry=telemetry,
        )
        # The allocation phase touched the whole footprint once, so a
        # footprint larger than the visible capacity starts execution
        # with its coldest pages already swapped out.
        pager.prime(
            segment * config.segment_bytes for segment in workload.segments
        )

    per_core = [CoreRunStats() for _ in range(workload.num_copies)]
    ns_per_instruction = (
        config.core.base_cpi / config.core.frequency_hz * 1e9
    )
    fault_ns = (
        config.page_fault_latency_cycles / config.core.frequency_hz * 1e9
    )
    # Closed-loop timing: each core carries its own clock, advanced by
    # the instruction gap, by page-fault stalls, and by the
    # MLP-overlapped share of each miss latency — so cores naturally
    # throttle when the memory system backs up instead of piling
    # unbounded queueing onto the devices.
    # Accesses are issued in global time order (a heap over the per-core
    # clocks), so the device models always see monotonic arrivals and a
    # core that stalls on faults or slow memory naturally falls behind.
    core_clock_ns = [0.0] * workload.num_copies
    mlp = config.core.mlp

    streams = [
        iter(s) for s in workload.streams(warmup_per_core + accesses_per_core)
    ]

    # Epoch sampling: every ``epoch_every`` measured device accesses the
    # engine snapshots its cumulative counters onto the bus.  The value
    # is 0 when telemetry is off, so the hot loop pays one false branch.
    total_measured = accesses_per_core * workload.num_copies
    epoch_every = (
        max(1, total_measured // TELEMETRY_EPOCHS) if emit else 0
    )
    epoch_state = {"issued": 0, "epoch": 0}

    def emit_epoch(now_ns: float) -> None:
        epoch_state["epoch"] += 1
        counters = architecture.counters
        telemetry.emit(
            EpochSample(
                time_ns=now_ns,
                epoch=epoch_state["epoch"],
                accesses=counters["arch.accesses"],
                fast_hits=counters["arch.fast_hits"],
                swaps=counters["swap.swaps"],
                faults=float(pager.page_faults) if pager is not None else 0.0,
            )
        )

    def run_phase(budget_per_core: int, record_stats: bool) -> None:
        # Two-phase scheduling: popping a core first *prepares* its next
        # access (advancing its clock past the instruction gap and any
        # page fault) and re-queues it at the prepared issue time; the
        # access is only presented to the devices when that time is the
        # global minimum, so device arrivals stay monotonic even across
        # fault jumps.
        if budget_per_core <= 0:
            return
        remaining = [budget_per_core] * workload.num_copies
        prepared: list[Optional[tuple]] = [None] * workload.num_copies
        heap: list[tuple[float, int]] = sorted(
            (core_clock_ns[core], core)
            for core in range(workload.num_copies)
        )
        while heap:
            issue_ns, core = heapq.heappop(heap)
            pending = prepared[core]
            if pending is None:
                if remaining[core] <= 0:
                    continue
                record = next(streams[core], None)
                if record is None:
                    continue
                remaining[core] -= 1
                stats = per_core[core]
                if record_stats:
                    stats.instructions += record.icount_gap
                clock = core_clock_ns[core] + (
                    record.icount_gap * ns_per_instruction
                )
                address = record.address
                if pager is not None:
                    fault_cycles, address = pager.access_translate(
                        record.address, now_ns=clock
                    )
                    if fault_cycles:
                        if record_stats:
                            stats.page_faults += 1
                            stats.fault_cycles += fault_cycles
                        clock += fault_ns
                prepared[core] = (address, record.is_write)
                core_clock_ns[core] = clock
                heapq.heappush(heap, (clock, core))
                continue

            prepared[core] = None
            address, is_write = pending
            result = architecture.access(address, issue_ns, is_write)
            if record_stats:
                stats = per_core[core]
                stats.memory_accesses += 1
                stats.memory_latency_ns += result.latency_ns
                if epoch_every:
                    epoch_state["issued"] += 1
                    if epoch_state["issued"] % epoch_every == 0:
                        emit_epoch(issue_ns)
            core_clock_ns[core] = issue_ns + result.latency_ns / mlp
            heapq.heappush(heap, (core_clock_ns[core], core))

    run_phase(warmup_per_core, record_stats=False)
    architecture.counters.reset()
    run_phase(accesses_per_core, record_stats=True)
    if epoch_every and epoch_state["issued"] % epoch_every:
        # Flush the trailing partial epoch so the recorded timeline
        # covers the full measured window.
        emit_epoch(max(core_clock_ns))

    model = MulticoreModel(config)
    performance = model.summarize(workload.name, per_core)
    cache_fraction = None
    mode_distribution = getattr(architecture, "mode_distribution", None)
    if callable(mode_distribution):
        cache_fraction = mode_distribution()[0]
    return SimulationResult(
        workload=workload.name,
        architecture=architecture.name,
        performance=performance,
        fast_hit_rate=architecture.fast_hit_rate,
        average_latency_ns=architecture.average_latency_ns,
        swaps=architecture.swap_count,
        page_faults=performance.page_faults,
        counters=architecture.counters,
        cache_mode_fraction=cache_fraction,
    )
