"""The end-to-end workload simulator.

Replays a multiprogrammed workload against a memory architecture: the
up-front ISA-Alloc stream, a warm-up phase (Section VI-A), then the
measured window, with the 12 per-core access streams merged in global
time order so the device models always see monotonic arrivals.  Designs
whose OS-visible capacity is smaller than the address space get an
LRU-paged resident set charging the Table I SSD fault latency.

Two replay kernels produce bit-identical results:

* the **scalar** kernel — the reference two-phase heap loop that drives
  :meth:`MemoryArchitecture.access` one record at a time; always
  correct, required whenever an OS pager intercepts the address stream;
* the **batched** kernel — consumes the workload's vectorised
  :class:`repro.trace.RecordBatch` chunks, runs a single-phase heap
  over plain tuples, calls the allocation-free
  :meth:`~MemoryArchitecture.access_timing` demand path, and defers all
  counter/histogram accounting to bulk flushes at phase boundaries.

``kernel="auto"`` (the default) picks the batched kernel whenever it is
exact — see :func:`select_kernel` — so callers never trade accuracy for
speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.arch.base import MemoryArchitecture
from repro.config import SystemConfig
from repro.cpu import CoreRunStats, MulticoreModel, WorkloadPerformance
from repro.osmodel.vm import PageFaultEngine
from repro.stats import CounterSet
from repro.telemetry.bus import EventBus
from repro.telemetry.events import EpochSample
import heapq

from repro.workloads.multiprog import MultiprogramWorkload

#: Version of the :meth:`SimulationResult.to_dict` wire format.  This is
#: also the on-disk schema of :mod:`repro.runtime`'s result cache, so
#: bump it whenever the dict shape (or the meaning of a field) changes —
#: cached entries written under another version are never deserialised.
RESULT_SCHEMA_VERSION = 1

#: Target number of :class:`repro.telemetry.EpochSample` emissions over
#: the measured window when a telemetry bus is attached.
TELEMETRY_EPOCHS = 20

#: Valid values of :func:`simulate`'s ``kernel`` argument.
KERNELS = ("auto", "batched", "scalar")


@dataclass
class SimulationResult:
    """Everything the experiment runners need from one run."""

    workload: str
    architecture: str
    performance: WorkloadPerformance
    fast_hit_rate: float
    average_latency_ns: float
    swaps: float
    page_faults: int
    counters: CounterSet = field(repr=False)
    cache_mode_fraction: Optional[float] = None

    @property
    def geomean_ipc(self) -> float:
        return self.performance.geomean_ipc

    def average_latency_cycles(self, config: SystemConfig) -> float:
        return config.core.ns_to_cycles(self.average_latency_ns)

    def to_dict(self) -> Dict[str, Any]:
        """Versioned, JSON-safe plain-dict form.

        The round trip through :meth:`from_dict` is lossless (floats
        survive ``json.dumps``/``loads`` exactly), so one schema serves
        both the public API and :mod:`repro.runtime` persistence.
        """
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "workload": self.workload,
            "architecture": self.architecture,
            "performance": self.performance.to_dict(),
            "fast_hit_rate": self.fast_hit_rate,
            "average_latency_ns": self.average_latency_ns,
            "swaps": self.swaps,
            "page_faults": self.page_faults,
            "counters": self.counters.to_dict(),
            "cache_mode_fraction": self.cache_mode_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported SimulationResult schema {schema!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            workload=data["workload"],
            architecture=data["architecture"],
            performance=WorkloadPerformance.from_dict(data["performance"]),
            fast_hit_rate=data["fast_hit_rate"],
            average_latency_ns=data["average_latency_ns"],
            swaps=data["swaps"],
            page_faults=data["page_faults"],
            counters=CounterSet.from_dict(data["counters"]),
            cache_mode_fraction=data["cache_mode_fraction"],
        )


def select_kernel(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    pager_present: bool,
) -> str:
    """Pick the replay kernel that is exact for this run.

    The batched kernel is chosen only when every one of its
    preconditions holds:

    * **no pager** — page-fault translation rewrites addresses and
      stalls cores mid-stream, which the batched issue loop does not
      model; pager-backed designs (caches, under-provisioned flat
      baselines) always replay through the scalar reference loop;
    * the architecture opts in via
      :attr:`~MemoryArchitecture.supports_batch_kernel`;
    * the workload exposes ``stream_batches`` (vectorised record
      chunks).

    Otherwise the scalar kernel is returned.  The two kernels are held
    bit-identical by the parity suite, so the choice is purely about
    speed.
    """
    if pager_present:
        return "scalar"
    if not getattr(architecture, "supports_batch_kernel", False):
        return "scalar"
    if not hasattr(workload, "stream_batches"):
        return "scalar"
    return "batched"


def simulate(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    accesses_per_core: int,
    apply_isa: bool = True,
    warmup_per_core: int | None = None,
    telemetry: EventBus | None = None,
    kernel: str = "auto",
) -> SimulationResult:
    """Run ``workload`` on ``architecture`` and summarise.

    Follows the paper's methodology: the workload's footprint is fully
    allocated up front (one ISA-Alloc per segment for co-designed
    hardware), the remap tables and caches are warmed with
    ``warmup_per_core`` unmeasured accesses per core (default: half the
    measured count — "our workloads are fast-forwarded ... and caches
    are warmed-up", Section VI-A), then a fixed number of post-LLC
    accesses per core is replayed, interleaved across the 12 cores in
    global time order.  When the footprint exceeds the design's
    OS-visible capacity, an LRU-paged resident set charges the Table I
    SSD fault latency and remaps faulted pages into the visible range.

    ``kernel`` selects the replay loop: ``"auto"`` (default) uses the
    fast batched kernel whenever :func:`select_kernel` deems it exact,
    ``"scalar"`` forces the reference loop, and ``"batched"`` forces
    the fast path (raising :class:`ValueError` when its preconditions
    do not hold).  Results are bit-identical either way.
    """
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    config = workload.config
    if warmup_per_core is None:
        warmup_per_core = accesses_per_core // 2
    # Telemetry is observational: attaching a bus must not perturb the
    # simulation (a dedicated regression test holds results
    # bit-identical with telemetry on and off).  The architecture's
    # prior bus is restored on exit so one architecture instance can be
    # reused across runs without leaking the caller's bus.
    emit = telemetry is not None and telemetry.enabled
    prior_bus = architecture.telemetry
    if emit:
        architecture.telemetry = telemetry
    try:
        return _simulate(
            architecture,
            workload,
            config,
            accesses_per_core,
            warmup_per_core,
            apply_isa,
            telemetry,
            emit,
            kernel,
        )
    finally:
        if emit:
            architecture.telemetry = prior_bus


def _simulate(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    config: SystemConfig,
    accesses_per_core: int,
    warmup_per_core: int,
    apply_isa: bool,
    telemetry: EventBus | None,
    emit: bool,
    kernel: str,
) -> SimulationResult:
    if apply_isa:
        workload.apply_allocations(architecture)

    # OS address translation / paging: designs whose OS-visible capacity
    # is smaller than the workload's address space (caches, small flat
    # baselines) get an LRU pager that both maps pages into the visible
    # range and charges SSD faults when the footprint overflows it.
    pager: Optional[PageFaultEngine] = None
    if architecture.os_visible_bytes < config.total_capacity_bytes:
        pager = PageFaultEngine(
            capacity_bytes=architecture.os_visible_bytes,
            page_bytes=config.page_bytes,
            fault_latency_cycles=config.page_fault_latency_cycles,
            telemetry=telemetry,
        )
        # The allocation phase touched the whole footprint once, so a
        # footprint larger than the visible capacity starts execution
        # with its coldest pages already swapped out.
        pager.prime(
            segment * config.segment_bytes for segment in workload.segments
        )

    if kernel == "auto":
        kernel = select_kernel(architecture, workload, pager is not None)
    elif kernel == "batched":
        if pager is not None:
            raise ValueError(
                "batched kernel cannot replay pager-backed designs "
                f"({architecture.name} needs OS paging); use kernel='auto'"
            )
        if not getattr(architecture, "supports_batch_kernel", False):
            raise ValueError(
                f"{architecture.name} opts out of the batched kernel"
            )
        if not hasattr(workload, "stream_batches"):
            raise ValueError(
                "workload does not provide stream_batches(); "
                "the batched kernel needs vectorised record chunks"
            )

    per_core = [CoreRunStats() for _ in range(workload.num_copies)]
    # Closed-loop timing: each core carries its own clock, advanced by
    # the instruction gap, by page-fault stalls, and by the
    # MLP-overlapped share of each miss latency — so cores naturally
    # throttle when the memory system backs up instead of piling
    # unbounded queueing onto the devices.
    # Accesses are issued in global time order (a heap over the per-core
    # clocks), so the device models always see monotonic arrivals and a
    # core that stalls on faults or slow memory naturally falls behind.
    core_clock_ns = [0.0] * workload.num_copies

    # Epoch sampling: every ``epoch_every`` measured device accesses the
    # engine snapshots its cumulative counters onto the bus.  The value
    # is 0 when telemetry is off, so the hot loop pays one false branch.
    total_measured = accesses_per_core * workload.num_copies
    epoch_every = (
        max(1, total_measured // TELEMETRY_EPOCHS) if emit else 0
    )

    if kernel == "batched":
        _run_batched(
            architecture,
            workload,
            config,
            accesses_per_core,
            warmup_per_core,
            per_core,
            core_clock_ns,
            telemetry,
            epoch_every,
        )
    else:
        _run_scalar(
            architecture,
            workload,
            config,
            accesses_per_core,
            warmup_per_core,
            per_core,
            core_clock_ns,
            pager,
            telemetry,
            epoch_every,
        )

    model = MulticoreModel(config)
    performance = model.summarize(workload.name, per_core)
    cache_fraction = None
    mode_distribution = getattr(architecture, "mode_distribution", None)
    if callable(mode_distribution):
        cache_fraction = mode_distribution()[0]
    return SimulationResult(
        workload=workload.name,
        architecture=architecture.name,
        performance=performance,
        fast_hit_rate=architecture.fast_hit_rate,
        average_latency_ns=architecture.average_latency_ns,
        swaps=architecture.swap_count,
        page_faults=performance.page_faults,
        counters=architecture.counters,
        cache_mode_fraction=cache_fraction,
    )


def _run_scalar(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    config: SystemConfig,
    accesses_per_core: int,
    warmup_per_core: int,
    per_core: List[CoreRunStats],
    core_clock_ns: List[float],
    pager: Optional[PageFaultEngine],
    telemetry: EventBus | None,
    epoch_every: int,
) -> None:
    """Reference replay loop: one record at a time, two-phase heap."""
    ns_per_instruction = config.ns_per_instruction
    fault_ns = config.core.cycles_to_ns(config.page_fault_latency_cycles)
    mlp = config.core.mlp

    streams = [
        iter(s) for s in workload.streams(warmup_per_core + accesses_per_core)
    ]

    epoch_state = {"issued": 0, "epoch": 0}

    def emit_epoch(now_ns: float) -> None:
        epoch_state["epoch"] += 1
        counters = architecture.counters
        telemetry.emit(
            EpochSample(
                time_ns=now_ns,
                epoch=epoch_state["epoch"],
                accesses=counters["arch.accesses"],
                fast_hits=counters["arch.fast_hits"],
                swaps=counters["swap.swaps"],
                faults=pager.page_faults if pager is not None else 0,
            )
        )

    def run_phase(budget_per_core: int, record_stats: bool) -> None:
        # Two-phase scheduling: popping a core first *prepares* its next
        # access (advancing its clock past the instruction gap and any
        # page fault) and re-queues it at the prepared issue time; the
        # access is only presented to the devices when that time is the
        # global minimum, so device arrivals stay monotonic even across
        # fault jumps.
        if budget_per_core <= 0:
            return
        remaining = [budget_per_core] * workload.num_copies
        prepared: list[Optional[tuple]] = [None] * workload.num_copies
        heap: list[tuple[float, int]] = sorted(
            (core_clock_ns[core], core)
            for core in range(workload.num_copies)
        )
        while heap:
            issue_ns, core = heapq.heappop(heap)
            pending = prepared[core]
            if pending is None:
                if remaining[core] <= 0:
                    continue
                record = next(streams[core], None)
                if record is None:
                    continue
                remaining[core] -= 1
                stats = per_core[core]
                if record_stats:
                    stats.instructions += record.icount_gap
                clock = core_clock_ns[core] + (
                    record.icount_gap * ns_per_instruction
                )
                address = record.address
                if pager is not None:
                    fault_cycles, address = pager.access_translate(
                        record.address, now_ns=clock
                    )
                    if fault_cycles:
                        if record_stats:
                            stats.page_faults += 1
                            stats.fault_cycles += fault_cycles
                        clock += fault_ns
                prepared[core] = (address, record.is_write)
                core_clock_ns[core] = clock
                heapq.heappush(heap, (clock, core))
                continue

            prepared[core] = None
            address, is_write = pending
            result = architecture.access(address, issue_ns, is_write)
            if record_stats:
                stats = per_core[core]
                stats.memory_accesses += 1
                stats.memory_latency_ns += result.latency_ns
                if epoch_every:
                    epoch_state["issued"] += 1
                    if epoch_state["issued"] % epoch_every == 0:
                        emit_epoch(issue_ns)
            core_clock_ns[core] = issue_ns + result.latency_ns / mlp
            heapq.heappush(heap, (core_clock_ns[core], core))

    run_phase(warmup_per_core, record_stats=False)
    architecture.counters.reset()
    run_phase(accesses_per_core, record_stats=True)
    if epoch_every and epoch_state["issued"] % epoch_every:
        # Flush the trailing partial epoch so the recorded timeline
        # covers the full measured window.
        emit_epoch(max(core_clock_ns))


def _run_batched(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    config: SystemConfig,
    accesses_per_core: int,
    warmup_per_core: int,
    per_core: List[CoreRunStats],
    core_clock_ns: List[float],
    telemetry: EventBus | None,
    epoch_every: int,
) -> None:
    """Chunked fast-path replay loop (pager-absent designs only).

    Bit-identical to :func:`_run_scalar` by construction:

    * **Issue order** — without a pager, preparing an access touches
      only the core's own stream and clock, so the scalar two-phase
      heap issues accesses in exactly sorted ``(prepared_time, core)``
      order.  This loop keeps one heap entry per core — its next
      prepared access — and pops the global minimum, reproducing that
      order (ties break on the unique core index in both loops).
    * **Clock arithmetic** — the same two float operations per access
      in the same order: ``issue = clock + gap * ns_per_instruction``
      then ``clock = issue + latency / mlp``.
    * **Stream consumption** — each core's records are fetched in
      per-core order; the per-core generators are independent, so the
      interleaving of fetches across cores (which differs from the
      scalar loop) cannot change any record.
    * **Accounting** — latencies are collected in global issue order
      and folded into the counters/histogram by the bulk accumulators,
      whose per-key fold order matches per-access recording exactly
      (see :meth:`MemoryArchitecture.record_access_batch` and
      :meth:`repro.dram.DramDevice.flush_deferred_stats`).  Warmup
      stats are flushed *before* ``counters.reset()`` so the measured
      window starts from the same state as the scalar loop.
    """
    ns_per_instruction = config.ns_per_instruction
    mlp = config.core.mlp
    num_cores = workload.num_copies
    counters = architecture.counters
    timing = architecture.access_timing
    heappush = heapq.heappush
    heappop = heapq.heappop

    batch_streams = workload.stream_batches(
        warmup_per_core + accesses_per_core
    )
    # Per-core chunk cursors over the vectorised record stream.  Columns
    # are materialised as plain Python lists once per chunk — scalar
    # indexing into a list is several times faster than into a NumPy
    # array, and ``.tolist()`` yields exact Python ints/bools.
    addr_cols: List[Optional[list]] = [None] * num_cores
    gap_cols: List[Optional[list]] = [None] * num_cores
    write_cols: List[Optional[list]] = [None] * num_cores
    positions = [0] * num_cores
    lengths = [0] * num_cores

    def fetch(core: int):
        """Next ``(address, icount_gap, is_write)`` of ``core``'s
        stream, refilling the chunk cursor as needed."""
        pos = positions[core]
        while pos >= lengths[core]:
            batch = next(batch_streams[core], None)
            if batch is None:
                return None
            addr_cols[core] = batch.addresses.tolist()
            gap_cols[core] = batch.icount_gaps.tolist()
            write_cols[core] = batch.is_writes.tolist()
            lengths[core] = len(addr_cols[core])
            pos = 0
        positions[core] = pos + 1
        return addr_cols[core][pos], gap_cols[core][pos], write_cols[core][pos]

    epoch_state = {"epoch": 0}

    def run_phase(budget_per_core: int, record_stats: bool) -> None:
        if budget_per_core <= 0:
            return
        remaining = [budget_per_core] * num_cores
        # Engine-local accumulators, flushed in bulk at phase end: the
        # global-order latency trail (counters + histogram) and the
        # per-core tallies (CoreRunStats fields start at zero, so a
        # local fold from 0.0 lands on the same bits as the scalar
        # loop's per-access ``+=``).
        latencies: List[float] = []
        append = latencies.append
        fast_hits = 0
        issued = 0
        inst = [0] * num_cores
        nacc = [0] * num_cores
        mlat = [0.0] * num_cores
        # Single-phase heap: one entry per core holding its next
        # prepared access.  Entries never tie beyond the core index, so
        # the payload fields are never compared.
        heap: List[tuple] = []
        for core in range(num_cores):
            fetched = fetch(core)
            if fetched is None:
                continue
            remaining[core] -= 1
            address, gap, is_write = fetched
            heappush(
                heap,
                (
                    core_clock_ns[core] + gap * ns_per_instruction,
                    core,
                    address,
                    is_write,
                    gap,
                ),
            )
        while heap:
            issue_ns, core, address, is_write, gap = heappop(heap)
            latency_ns, fast_hit = timing(address, issue_ns, is_write)
            append(latency_ns)
            if fast_hit:
                fast_hits += 1
            clock = issue_ns + latency_ns / mlp
            core_clock_ns[core] = clock
            if record_stats:
                inst[core] += gap
                nacc[core] += 1
                mlat[core] += latency_ns
                if epoch_every:
                    issued += 1
                    if issued % epoch_every == 0:
                        epoch_state["epoch"] += 1
                        # Counter updates are deferred, so the snapshot
                        # is built from the engine's own exact tallies
                        # (they equal the live counters of the scalar
                        # loop at the same point).
                        telemetry.emit(
                            EpochSample(
                                time_ns=issue_ns,
                                epoch=epoch_state["epoch"],
                                accesses=float(issued),
                                fast_hits=float(fast_hits),
                                swaps=counters["swap.swaps"],
                                faults=0,
                            )
                        )
            if remaining[core] > 0:
                # Inlined ``fetch`` fast case — the chunk cursor almost
                # always has the next record in hand; the function call
                # is paid only on refill.
                pos = positions[core]
                if pos < lengths[core]:
                    remaining[core] -= 1
                    positions[core] = pos + 1
                    gap = gap_cols[core][pos]
                    heappush(
                        heap,
                        (
                            clock + gap * ns_per_instruction,
                            core,
                            addr_cols[core][pos],
                            write_cols[core][pos],
                            gap,
                        ),
                    )
                else:
                    fetched = fetch(core)
                    if fetched is not None:
                        remaining[core] -= 1
                        address, gap, is_write = fetched
                        heappush(
                            heap,
                            (
                                clock + gap * ns_per_instruction,
                                core,
                                address,
                                is_write,
                                gap,
                            ),
                        )

        architecture.record_access_batch(latencies, fast_hits)
        if record_stats:
            for core in range(num_cores):
                stats = per_core[core]
                stats.instructions = inst[core]
                stats.memory_accesses = nacc[core]
                stats.memory_latency_ns = mlat[core]
            epoch_state["issued"] = issued
            epoch_state["fast_hits"] = fast_hits

    architecture.begin_batch_stats()
    try:
        run_phase(warmup_per_core, record_stats=False)
        # Publish warmup tallies before the reset wipes them — exactly
        # what the scalar loop's per-access updates amount to — so the
        # measured window starts from a clean slate while the (never
        # reset) latency histogram keeps its warmup observations.
        architecture.flush_batch_stats()
        architecture.counters.reset()
        run_phase(accesses_per_core, record_stats=True)
    finally:
        architecture.end_batch_stats()

    issued = epoch_state.get("issued", 0)
    if epoch_every and issued % epoch_every:
        epoch_state["epoch"] += 1
        telemetry.emit(
            EpochSample(
                time_ns=max(core_clock_ns),
                epoch=epoch_state["epoch"],
                accesses=float(issued),
                fast_hits=float(epoch_state["fast_hits"]),
                swaps=counters["swap.swaps"],
                faults=0,
            )
        )
