"""The end-to-end workload simulator.

Replays a multiprogrammed workload against a memory architecture: the
up-front ISA-Alloc stream, a warm-up phase (Section VI-A), then the
measured window, with the 12 per-core access streams merged in global
time order so the device models always see monotonic arrivals.  Designs
whose OS-visible capacity is smaller than the address space get an
LRU-paged resident set charging the Table I SSD fault latency.

Three replay kernels produce bit-identical results:

* the **scalar** kernel — the reference two-phase heap loop that drives
  :meth:`MemoryArchitecture.access` one record at a time; always
  correct;
* the **batched** kernel — consumes the workload's vectorised
  :class:`repro.trace.RecordBatch` chunks, runs a single-phase heap
  over plain tuples, calls the allocation-free
  :meth:`~MemoryArchitecture.access_timing` demand path, and defers all
  counter/histogram accounting to bulk flushes at phase boundaries;
* the **batched-paged** kernel — the batched machinery for pager-backed
  designs: each chunk is split at page-fault boundaries, resident runs
  are pre-translated in one vectorised pass, and faults are serviced on
  the scalar slow path before the fast path resumes (see
  :func:`_run_batched_paged` for the exactness argument).

``kernel="auto"`` (the default) picks the fastest exact kernel — see
:func:`select_kernel`, which also reports *why* as a machine-readable
:class:`KernelDecision` — so callers never trade accuracy for speed.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, NamedTuple, Optional

from repro.arch.base import MemoryArchitecture
from repro.config import SystemConfig
from repro.cpu import CoreRunStats, MulticoreModel, WorkloadPerformance
from repro.osmodel.vm import PageFaultEngine
from repro.stats import CounterSet
from repro.telemetry.bus import EventBus
from repro.telemetry.events import EpochSample
import heapq

from repro.workloads.multiprog import MultiprogramWorkload

#: Version of the :meth:`SimulationResult.to_dict` wire format.  This is
#: also the on-disk schema of :mod:`repro.runtime`'s result cache, so
#: bump it whenever the dict shape (or the meaning of a field) changes —
#: cached entries written under another version are never deserialised.
RESULT_SCHEMA_VERSION = 1

#: Target number of :class:`repro.telemetry.EpochSample` emissions over
#: the measured window when a telemetry bus is attached.
TELEMETRY_EPOCHS = 20

#: Valid values of :func:`simulate`'s ``kernel`` argument.
KERNELS = ("auto", "batched", "batched-paged", "scalar")

#: Heap-entry kinds of the batched-paged kernel's single-phase heap.
_K_ISSUE = 0
_K_FAULT = 1

#: Deferred-LRU-touch backlog size that triggers a mid-phase compaction
#: in the batched-paged kernel (bounds memory on fault-free runs).
_TOUCH_COMPACT_LIMIT = 1 << 16


class KernelDecision(NamedTuple):
    """Outcome of :func:`select_kernel`: the chosen replay kernel plus
    a stable machine-readable reason.

    Reasons:

    * ``"batch-capable"`` — no pager, architecture and workload both
      support the chunked fast path (``batched``);
    * ``"pager-segmented"`` — an OS pager intercepts the stream, but
      the run can still be split at fault boundaries
      (``batched-paged``);
    * ``"arch-opt-out"`` — the architecture does not support the
      batched demand path (``scalar``);
    * ``"no-stream-batches"`` — the workload cannot produce vectorised
      record chunks (``scalar``).
    """

    kernel: str
    reason: str


@dataclass
class SimulationResult:
    """Everything the experiment runners need from one run."""

    workload: str
    architecture: str
    performance: WorkloadPerformance
    fast_hit_rate: float
    average_latency_ns: float
    swaps: float
    page_faults: int
    counters: CounterSet = field(repr=False)
    cache_mode_fraction: Optional[float] = None

    @property
    def geomean_ipc(self) -> float:
        return self.performance.geomean_ipc

    def average_latency_cycles(self, config: SystemConfig) -> float:
        return config.core.ns_to_cycles(self.average_latency_ns)

    def to_dict(self) -> Dict[str, Any]:
        """Versioned, JSON-safe plain-dict form.

        The round trip through :meth:`from_dict` is lossless (floats
        survive ``json.dumps``/``loads`` exactly), so one schema serves
        both the public API and :mod:`repro.runtime` persistence.
        """
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "workload": self.workload,
            "architecture": self.architecture,
            "performance": self.performance.to_dict(),
            "fast_hit_rate": self.fast_hit_rate,
            "average_latency_ns": self.average_latency_ns,
            "swaps": self.swaps,
            "page_faults": self.page_faults,
            "counters": self.counters.to_dict(),
            "cache_mode_fraction": self.cache_mode_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported SimulationResult schema {schema!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            workload=data["workload"],
            architecture=data["architecture"],
            performance=WorkloadPerformance.from_dict(data["performance"]),
            fast_hit_rate=data["fast_hit_rate"],
            average_latency_ns=data["average_latency_ns"],
            swaps=data["swaps"],
            page_faults=data["page_faults"],
            counters=CounterSet.from_dict(data["counters"]),
            cache_mode_fraction=data["cache_mode_fraction"],
        )


def select_kernel(
    architecture: MemoryArchitecture,
    workload: Optional[MultiprogramWorkload],
    pager_present: bool,
) -> KernelDecision:
    """Pick the replay kernel that is exact for this run.

    Three-way decision, returned as a :class:`KernelDecision` (a
    ``(kernel, reason)`` named tuple):

    * the architecture must opt in via
      :attr:`~MemoryArchitecture.supports_batch_kernel` and the
      workload must expose ``stream_batches`` (vectorised record
      chunks), otherwise the **scalar** reference loop runs;
    * with both preconditions met, a pager-backed run (OS-visible
      capacity below the address space) takes the **batched-paged**
      kernel — the chunked fast path segmented at page-fault
      boundaries — and a pager-free run takes the plain **batched**
      kernel.

    ``workload`` may be ``None`` for label-level decisions made before
    a workload is built (the CLI trailer, the serve metrics endpoint);
    every shipped workload provides ``stream_batches``, so ``None`` is
    treated as batch-capable.

    All kernels are held bit-identical by the parity suite, so the
    choice is purely about speed.
    """
    if not getattr(architecture, "supports_batch_kernel", False):
        return KernelDecision("scalar", "arch-opt-out")
    if workload is not None and not hasattr(workload, "stream_batches"):
        return KernelDecision("scalar", "no-stream-batches")
    if pager_present:
        return KernelDecision("batched-paged", "pager-segmented")
    return KernelDecision("batched", "batch-capable")


def _require_batch_capable(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    kernel: str,
) -> None:
    """Raise when a forced batched-family kernel's shared preconditions
    (architecture opt-in, vectorised workload chunks) do not hold."""
    if not getattr(architecture, "supports_batch_kernel", False):
        raise ValueError(
            f"{architecture.name} opts out of the {kernel} kernel"
        )
    if not hasattr(workload, "stream_batches"):
        raise ValueError(
            "workload does not provide stream_batches(); "
            f"the {kernel} kernel needs vectorised record chunks"
        )


def simulate(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    accesses_per_core: int,
    apply_isa: bool = True,
    warmup_per_core: int | None = None,
    telemetry: EventBus | None = None,
    kernel: str = "auto",
) -> SimulationResult:
    """Run ``workload`` on ``architecture`` and summarise.

    Follows the paper's methodology: the workload's footprint is fully
    allocated up front (one ISA-Alloc per segment for co-designed
    hardware), the remap tables and caches are warmed with
    ``warmup_per_core`` unmeasured accesses per core (default: half the
    measured count — "our workloads are fast-forwarded ... and caches
    are warmed-up", Section VI-A), then a fixed number of post-LLC
    accesses per core is replayed, interleaved across the 12 cores in
    global time order.  When the footprint exceeds the design's
    OS-visible capacity, an LRU-paged resident set charges the Table I
    SSD fault latency and remaps faulted pages into the visible range.

    ``kernel`` selects the replay loop: ``"auto"`` (default) follows
    :func:`select_kernel`, ``"scalar"`` forces the reference loop, and
    ``"batched"`` / ``"batched-paged"`` force the respective fast path
    (raising :class:`ValueError` when its preconditions do not hold —
    ``batched`` needs a pager-free design, ``batched-paged`` a
    pager-backed one).  Results are bit-identical in every case.
    """
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    config = workload.config
    if warmup_per_core is None:
        warmup_per_core = accesses_per_core // 2
    # Telemetry is observational: attaching a bus must not perturb the
    # simulation (a dedicated regression test holds results
    # bit-identical with telemetry on and off).  The architecture's
    # prior bus is restored on exit so one architecture instance can be
    # reused across runs without leaking the caller's bus.
    emit = telemetry is not None and telemetry.enabled
    prior_bus = architecture.telemetry
    if emit:
        architecture.telemetry = telemetry
    try:
        return _simulate(
            architecture,
            workload,
            config,
            accesses_per_core,
            warmup_per_core,
            apply_isa,
            telemetry,
            emit,
            kernel,
        )
    finally:
        if emit:
            architecture.telemetry = prior_bus


def _simulate(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    config: SystemConfig,
    accesses_per_core: int,
    warmup_per_core: int,
    apply_isa: bool,
    telemetry: EventBus | None,
    emit: bool,
    kernel: str,
) -> SimulationResult:
    if apply_isa:
        workload.apply_allocations(architecture)

    # OS address translation / paging: designs whose OS-visible capacity
    # is smaller than the workload's address space (caches, small flat
    # baselines) get an LRU pager that both maps pages into the visible
    # range and charges SSD faults when the footprint overflows it.
    pager: Optional[PageFaultEngine] = None
    if architecture.os_visible_bytes < config.total_capacity_bytes:
        pager = PageFaultEngine(
            capacity_bytes=architecture.os_visible_bytes,
            page_bytes=config.page_bytes,
            fault_latency_cycles=config.page_fault_latency_cycles,
            telemetry=telemetry,
        )
        # The allocation phase touched the whole footprint once, so a
        # footprint larger than the visible capacity starts execution
        # with its coldest pages already swapped out.
        pager.prime(
            segment * config.segment_bytes for segment in workload.segments
        )

    if kernel == "auto":
        kernel = select_kernel(architecture, workload, pager is not None).kernel
    elif kernel == "batched":
        if pager is not None:
            raise ValueError(
                "batched kernel cannot replay pager-backed designs "
                f"({architecture.name} needs OS paging); use "
                "kernel='auto' or kernel='batched-paged'"
            )
        _require_batch_capable(architecture, workload, kernel)
    elif kernel == "batched-paged":
        if pager is None:
            raise ValueError(
                "batched-paged kernel needs an OS pager "
                f"({architecture.name} is not pager-backed); "
                "use kernel='auto'"
            )
        _require_batch_capable(architecture, workload, kernel)

    per_core = [CoreRunStats() for _ in range(workload.num_copies)]
    # Closed-loop timing: each core carries its own clock, advanced by
    # the instruction gap, by page-fault stalls, and by the
    # MLP-overlapped share of each miss latency — so cores naturally
    # throttle when the memory system backs up instead of piling
    # unbounded queueing onto the devices.
    # Accesses are issued in global time order (a heap over the per-core
    # clocks), so the device models always see monotonic arrivals and a
    # core that stalls on faults or slow memory naturally falls behind.
    core_clock_ns = [0.0] * workload.num_copies

    # Epoch sampling: every ``epoch_every`` measured device accesses the
    # engine snapshots its cumulative counters onto the bus.  The value
    # is 0 when telemetry is off, so the hot loop pays one false branch.
    total_measured = accesses_per_core * workload.num_copies
    epoch_every = (
        max(1, total_measured // TELEMETRY_EPOCHS) if emit else 0
    )

    if kernel == "batched":
        _run_batched(
            architecture,
            workload,
            config,
            accesses_per_core,
            warmup_per_core,
            per_core,
            core_clock_ns,
            telemetry,
            epoch_every,
        )
    elif kernel == "batched-paged":
        _run_batched_paged(
            architecture,
            workload,
            config,
            accesses_per_core,
            warmup_per_core,
            per_core,
            core_clock_ns,
            pager,
            telemetry,
            epoch_every,
        )
    else:
        _run_scalar(
            architecture,
            workload,
            config,
            accesses_per_core,
            warmup_per_core,
            per_core,
            core_clock_ns,
            pager,
            telemetry,
            epoch_every,
        )

    model = MulticoreModel(config)
    performance = model.summarize(workload.name, per_core)
    cache_fraction = None
    mode_distribution = getattr(architecture, "mode_distribution", None)
    if callable(mode_distribution):
        cache_fraction = mode_distribution()[0]
    return SimulationResult(
        workload=workload.name,
        architecture=architecture.name,
        performance=performance,
        fast_hit_rate=architecture.fast_hit_rate,
        average_latency_ns=architecture.average_latency_ns,
        swaps=architecture.swap_count,
        page_faults=performance.page_faults,
        counters=architecture.counters,
        cache_mode_fraction=cache_fraction,
    )


def _run_scalar(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    config: SystemConfig,
    accesses_per_core: int,
    warmup_per_core: int,
    per_core: List[CoreRunStats],
    core_clock_ns: List[float],
    pager: Optional[PageFaultEngine],
    telemetry: EventBus | None,
    epoch_every: int,
) -> None:
    """Reference replay loop: one record at a time, two-phase heap."""
    ns_per_instruction = config.ns_per_instruction
    fault_ns = config.core.cycles_to_ns(config.page_fault_latency_cycles)
    mlp = config.core.mlp

    streams = [
        iter(s) for s in workload.streams(warmup_per_core + accesses_per_core)
    ]

    epoch_state = {"issued": 0, "epoch": 0}

    def emit_epoch(now_ns: float) -> None:
        epoch_state["epoch"] += 1
        counters = architecture.counters
        telemetry.emit(
            EpochSample(
                time_ns=now_ns,
                epoch=epoch_state["epoch"],
                accesses=counters["arch.accesses"],
                fast_hits=counters["arch.fast_hits"],
                swaps=counters["swap.swaps"],
                faults=pager.page_faults if pager is not None else 0,
            )
        )

    def run_phase(budget_per_core: int, record_stats: bool) -> None:
        # Two-phase scheduling: popping a core first *prepares* its next
        # access (advancing its clock past the instruction gap and any
        # page fault) and re-queues it at the prepared issue time; the
        # access is only presented to the devices when that time is the
        # global minimum, so device arrivals stay monotonic even across
        # fault jumps.
        if budget_per_core <= 0:
            return
        remaining = [budget_per_core] * workload.num_copies
        prepared: list[Optional[tuple]] = [None] * workload.num_copies
        heap: list[tuple[float, int]] = sorted(
            (core_clock_ns[core], core)
            for core in range(workload.num_copies)
        )
        while heap:
            issue_ns, core = heapq.heappop(heap)
            pending = prepared[core]
            if pending is None:
                if remaining[core] <= 0:
                    continue
                record = next(streams[core], None)
                if record is None:
                    continue
                remaining[core] -= 1
                stats = per_core[core]
                if record_stats:
                    stats.instructions += record.icount_gap
                clock = core_clock_ns[core] + (
                    record.icount_gap * ns_per_instruction
                )
                address = record.address
                if pager is not None:
                    fault_cycles, address = pager.access_translate(
                        record.address, now_ns=clock
                    )
                    if fault_cycles:
                        if record_stats:
                            stats.page_faults += 1
                            stats.fault_cycles += fault_cycles
                        clock += fault_ns
                prepared[core] = (address, record.is_write)
                core_clock_ns[core] = clock
                heapq.heappush(heap, (clock, core))
                continue

            prepared[core] = None
            address, is_write = pending
            result = architecture.access(address, issue_ns, is_write)
            if record_stats:
                stats = per_core[core]
                stats.memory_accesses += 1
                stats.memory_latency_ns += result.latency_ns
                if epoch_every:
                    epoch_state["issued"] += 1
                    if epoch_state["issued"] % epoch_every == 0:
                        emit_epoch(issue_ns)
            core_clock_ns[core] = issue_ns + result.latency_ns / mlp
            heapq.heappush(heap, (core_clock_ns[core], core))

    run_phase(warmup_per_core, record_stats=False)
    architecture.counters.reset()
    run_phase(accesses_per_core, record_stats=True)
    if epoch_every and epoch_state["issued"] % epoch_every:
        # Flush the trailing partial epoch so the recorded timeline
        # covers the full measured window.
        emit_epoch(max(core_clock_ns))


def _run_batched(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    config: SystemConfig,
    accesses_per_core: int,
    warmup_per_core: int,
    per_core: List[CoreRunStats],
    core_clock_ns: List[float],
    telemetry: EventBus | None,
    epoch_every: int,
) -> None:
    """Chunked fast-path replay loop (pager-absent designs only).

    Bit-identical to :func:`_run_scalar` by construction:

    * **Issue order** — without a pager, preparing an access touches
      only the core's own stream and clock, so the scalar two-phase
      heap issues accesses in exactly sorted ``(prepared_time, core)``
      order.  This loop keeps one heap entry per core — its next
      prepared access — and pops the global minimum, reproducing that
      order (ties break on the unique core index in both loops).
    * **Clock arithmetic** — the same two float operations per access
      in the same order: ``issue = clock + gap * ns_per_instruction``
      then ``clock = issue + latency / mlp``.
    * **Stream consumption** — each core's records are fetched in
      per-core order; the per-core generators are independent, so the
      interleaving of fetches across cores (which differs from the
      scalar loop) cannot change any record.
    * **Accounting** — latencies are collected in global issue order
      and folded into the counters/histogram by the bulk accumulators,
      whose per-key fold order matches per-access recording exactly
      (see :meth:`MemoryArchitecture.record_access_batch` and
      :meth:`repro.dram.DramDevice.flush_deferred_stats`).  Warmup
      stats are flushed *before* ``counters.reset()`` so the measured
      window starts from the same state as the scalar loop.
    """
    ns_per_instruction = config.ns_per_instruction
    mlp = config.core.mlp
    num_cores = workload.num_copies
    counters = architecture.counters
    timing = architecture.access_timing
    heappush = heapq.heappush
    heappop = heapq.heappop

    batch_streams = workload.stream_batches(
        warmup_per_core + accesses_per_core
    )
    # Per-core chunk cursors over the vectorised record stream.  Columns
    # are materialised as plain Python lists once per chunk — scalar
    # indexing into a list is several times faster than into a NumPy
    # array, and ``.tolist()`` yields exact Python ints/bools.
    addr_cols: List[Optional[list]] = [None] * num_cores
    gap_cols: List[Optional[list]] = [None] * num_cores
    write_cols: List[Optional[list]] = [None] * num_cores
    positions = [0] * num_cores
    lengths = [0] * num_cores

    def fetch(core: int):
        """Next ``(address, icount_gap, is_write)`` of ``core``'s
        stream, refilling the chunk cursor as needed."""
        pos = positions[core]
        while pos >= lengths[core]:
            batch = next(batch_streams[core], None)
            if batch is None:
                return None
            addr_cols[core] = batch.addresses.tolist()
            gap_cols[core] = batch.icount_gaps.tolist()
            write_cols[core] = batch.is_writes.tolist()
            lengths[core] = len(addr_cols[core])
            pos = 0
        positions[core] = pos + 1
        return addr_cols[core][pos], gap_cols[core][pos], write_cols[core][pos]

    epoch_state = {"epoch": 0}

    def run_phase(budget_per_core: int, record_stats: bool) -> None:
        if budget_per_core <= 0:
            return
        remaining = [budget_per_core] * num_cores
        # Engine-local accumulators, flushed in bulk at phase end: the
        # global-order latency trail (counters + histogram) and the
        # per-core tallies (CoreRunStats fields start at zero, so a
        # local fold from 0.0 lands on the same bits as the scalar
        # loop's per-access ``+=``).
        latencies: List[float] = []
        append = latencies.append
        fast_hits = 0
        issued = 0
        inst = [0] * num_cores
        nacc = [0] * num_cores
        mlat = [0.0] * num_cores
        # Single-phase heap: one entry per core holding its next
        # prepared access.  Entries never tie beyond the core index, so
        # the payload fields are never compared.
        heap: List[tuple] = []
        for core in range(num_cores):
            fetched = fetch(core)
            if fetched is None:
                continue
            remaining[core] -= 1
            address, gap, is_write = fetched
            heappush(
                heap,
                (
                    core_clock_ns[core] + gap * ns_per_instruction,
                    core,
                    address,
                    is_write,
                    gap,
                ),
            )
        while heap:
            issue_ns, core, address, is_write, gap = heappop(heap)
            latency_ns, fast_hit = timing(address, issue_ns, is_write)
            append(latency_ns)
            if fast_hit:
                fast_hits += 1
            clock = issue_ns + latency_ns / mlp
            core_clock_ns[core] = clock
            if record_stats:
                inst[core] += gap
                nacc[core] += 1
                mlat[core] += latency_ns
                if epoch_every:
                    issued += 1
                    if issued % epoch_every == 0:
                        epoch_state["epoch"] += 1
                        # Counter updates are deferred, so the snapshot
                        # is built from the engine's own exact tallies
                        # (they equal the live counters of the scalar
                        # loop at the same point).
                        telemetry.emit(
                            EpochSample(
                                time_ns=issue_ns,
                                epoch=epoch_state["epoch"],
                                accesses=float(issued),
                                fast_hits=float(fast_hits),
                                swaps=counters["swap.swaps"],
                                faults=0,
                            )
                        )
            if remaining[core] > 0:
                # Inlined ``fetch`` fast case — the chunk cursor almost
                # always has the next record in hand; the function call
                # is paid only on refill.
                pos = positions[core]
                if pos < lengths[core]:
                    remaining[core] -= 1
                    positions[core] = pos + 1
                    gap = gap_cols[core][pos]
                    heappush(
                        heap,
                        (
                            clock + gap * ns_per_instruction,
                            core,
                            addr_cols[core][pos],
                            write_cols[core][pos],
                            gap,
                        ),
                    )
                else:
                    fetched = fetch(core)
                    if fetched is not None:
                        remaining[core] -= 1
                        address, gap, is_write = fetched
                        heappush(
                            heap,
                            (
                                clock + gap * ns_per_instruction,
                                core,
                                address,
                                is_write,
                                gap,
                            ),
                        )

        architecture.record_access_batch(latencies, fast_hits)
        if record_stats:
            for core in range(num_cores):
                stats = per_core[core]
                stats.instructions = inst[core]
                stats.memory_accesses = nacc[core]
                stats.memory_latency_ns = mlat[core]
            epoch_state["issued"] = issued
            epoch_state["fast_hits"] = fast_hits

    architecture.begin_batch_stats()
    try:
        run_phase(warmup_per_core, record_stats=False)
        # Publish warmup tallies before the reset wipes them — exactly
        # what the scalar loop's per-access updates amount to — so the
        # measured window starts from a clean slate while the (never
        # reset) latency histogram keeps its warmup observations.
        architecture.flush_batch_stats()
        architecture.counters.reset()
        run_phase(accesses_per_core, record_stats=True)
    finally:
        architecture.end_batch_stats()

    issued = epoch_state.get("issued", 0)
    if epoch_every and issued % epoch_every:
        epoch_state["epoch"] += 1
        telemetry.emit(
            EpochSample(
                time_ns=max(core_clock_ns),
                epoch=epoch_state["epoch"],
                accesses=float(issued),
                fast_hits=float(epoch_state["fast_hits"]),
                swaps=counters["swap.swaps"],
                faults=0,
            )
        )


def _run_batched_paged(
    architecture: MemoryArchitecture,
    workload: MultiprogramWorkload,
    config: SystemConfig,
    accesses_per_core: int,
    warmup_per_core: int,
    per_core: List[CoreRunStats],
    core_clock_ns: List[float],
    pager: PageFaultEngine,
    telemetry: EventBus | None,
    epoch_every: int,
) -> None:
    """Fault-segmented chunked replay for pager-backed designs.

    Splits each per-core record chunk at page-fault boundaries: runs of
    resident lanes are pre-translated in one vectorised
    :meth:`~repro.osmodel.vm.PageFaultEngine.translate_batch` pass and
    issued through the same single-phase heap as :func:`_run_batched`;
    the first non-resident lane is serviced on the scalar slow path
    (exact fault-cycle accounting, event emission, LRU eviction), after
    which the fast path resumes.  Bit-identical to :func:`_run_scalar`:

    * **Pager mutation order** — the scalar loop touches the pager at
      each access's *prepare* pop, keyed ``(core clock after previous
      issue, core)``.  Fault lanes enter the heap as dedicated entries
      at exactly that key, so faults/evictions interleave with other
      cores' work in scalar order.  Resident lanes' only pager effect
      is an LRU ``move_to_end``; those are deferred as ``(prepare key,
      core, page)`` touch records and replayed in sorted key order
      before every eviction decision (and at phase end), which leaves
      the LRU identical at every point where its order is observable.
    * **Stale translations** — a resident lane pre-translated before an
      eviction of its page would use a frame the scalar loop re-faults
      on (its prepare key sorts after the fault).  Such in-flight
      entries are exactly the deferred touches past the fault key, so
      the eviction path diverts them back to the slow path at their
      recorded prepare keys.  Conversely, an access *prepared before*
      the eviction keeps its stale frame — precisely what the scalar
      loop does.  Cached column translations are revalidated against
      the pager's eviction epoch; insertions never invalidate a cached
      frame (a stale fault horizon just resolves as a resident hit on
      the slow path, as in the scalar loop).
    * **Clocks and accounting** — identical float operations in
      identical order (``gaps_ns`` is precomputed per chunk but
      bit-equal per record), engine-local accumulators flushed in bulk
      as in :func:`_run_batched`, and live ``pager.page_faults`` for
      epoch samples since fault counters advance at correctly-ordered
      heap pops.
    """
    ns_per_instruction = config.ns_per_instruction
    fault_ns = config.core.cycles_to_ns(config.page_fault_latency_cycles)
    mlp = config.core.mlp
    num_cores = workload.num_copies
    counters = architecture.counters
    timing = architecture.access_timing
    access_translate = pager.access_translate
    heappush = heapq.heappush
    heappop = heapq.heappop
    page_bytes = pager.page_bytes

    batch_streams = workload.stream_batches(
        warmup_per_core + accesses_per_core
    )
    # Per-core chunk cursors (as in _run_batched) plus a translation
    # cache over the current chunk: physical/page columns for the
    # resident run starting at ``trans_base`` and ending at ``horizon``
    # (the first non-resident lane), valid while ``stamp`` matches the
    # pager's eviction epoch.
    addr_np: List[Any] = [None] * num_cores
    gap_cols: List[Optional[list]] = [None] * num_cores
    gapns_cols: List[Optional[list]] = [None] * num_cores
    write_cols: List[Optional[list]] = [None] * num_cores
    positions = [0] * num_cores
    lengths = [0] * num_cores
    phys_cols: List[Optional[list]] = [None] * num_cores
    page_cols: List[Optional[list]] = [None] * num_cores
    trans_base = [0] * num_cores
    horizon = [0] * num_cores
    stamp = [-1] * num_cores

    def retranslate(core: int, pos: int) -> None:
        physical, pages, n_resident = pager.translate_batch(
            addr_np[core][pos:]
        )
        phys_cols[core] = physical.tolist()
        page_cols[core] = pages.tolist()
        trans_base[core] = pos
        horizon[core] = pos + n_resident
        stamp[core] = pager.epoch

    epoch_state = {"epoch": 0}

    def run_phase(budget_per_core: int, record_stats: bool) -> None:
        if budget_per_core <= 0:
            return
        remaining = [budget_per_core] * num_cores
        latencies: List[float] = []
        append = latencies.append
        fast_hits = 0
        issued = 0
        inst = [0] * num_cores
        nacc = [0] * num_cores
        mlat = [0.0] * num_cores
        pfault = [0] * num_cores
        fcycles = [0] * num_cores
        # Deferred LRU touches of fast-path lanes: (prepare key ns,
        # core, page).  Per-core keys strictly increase and cores break
        # ties, so entries are unique and sort deterministically
        # without ever comparing the page.
        pending: List[tuple] = []
        pending_append = pending.append
        fastpath_hits = 0
        heap: List[tuple] = []
        # Pager eviction epoch, mirrored into a local: it only advances
        # inside the slow-path access_translate calls below, so the hot
        # issue loop revalidates translations against a plain int.
        cur_epoch = pager.epoch

        def apply_touches(limit: Optional[tuple]) -> None:
            """Replay deferred LRU touches in global key order — all of
            them (``limit=None``, phase end) or those strictly before a
            fault's ``(time_ns, core)`` heap key."""
            if not pending:
                return
            pending.sort()
            cut = (
                len(pending)
                if limit is None
                else bisect.bisect_left(pending, limit)
            )
            if cut:
                pager.touch_resident_many(
                    [entry[2] for entry in pending[:cut]]
                )
                del pending[:cut]

        def refill(core: int, clock: float) -> bool:
            batch = next(batch_streams[core], None)
            if batch is None:
                return False
            addr_np[core] = batch.addresses
            gap_cols[core] = batch.icount_gaps.tolist()
            gapns_cols[core] = batch.gaps_ns(ns_per_instruction).tolist()
            write_cols[core] = batch.is_writes.tolist()
            lengths[core] = len(gap_cols[core])
            positions[core] = 0
            retranslate(core, 0)
            # Compaction: on (nearly) fault-free runs nothing drains
            # the touch backlog mid-phase, so periodically apply the
            # prefix that can no longer precede any eviction — every
            # future fault pops at or after the heap minimum and at or
            # after this core's next entry (keyed >= ``clock``).
            if len(pending) >= _TOUCH_COMPACT_LIMIT:
                floor = min(clock, heap[0][0]) if heap else clock
                apply_touches((floor, -1))
            return True

        def push_next(core: int, clock: float) -> bool:
            """Queue ``core``'s next access: a pre-translated issue
            entry for resident lanes, or a fault entry keyed at the
            prepare time for the lane at the fault horizon."""
            nonlocal fastpath_hits
            pos = positions[core]
            while pos >= lengths[core]:
                if not refill(core, clock):
                    return False
                pos = 0
            positions[core] = pos + 1
            if (
                stamp[core] != cur_epoch
                or pos < trans_base[core]
                or pos > horizon[core]
            ):
                retranslate(core, pos)
            if pos < horizon[core]:
                index = pos - trans_base[core]
                page = page_cols[core][index]
                pending_append((clock, core, page))
                fastpath_hits += 1
                heappush(
                    heap,
                    (
                        clock + gapns_cols[core][pos],
                        core,
                        _K_ISSUE,
                        phys_cols[core][index],
                        write_cols[core][pos],
                        gap_cols[core][pos],
                    ),
                )
            else:
                heappush(
                    heap,
                    (
                        clock,
                        core,
                        _K_FAULT,
                        int(addr_np[core][pos]),
                        gap_cols[core][pos],
                        gapns_cols[core][pos],
                        write_cols[core][pos],
                    ),
                )
            return True

        def divert_stale(victim: int) -> None:
            """An eviction invalidated ``victim``'s frame: any other
            core's in-flight pre-translated access to it (exactly the
            deferred touches past the fault key) must re-enter the heap
            as a fault entry at its recorded prepare key — the scalar
            loop prepares those accesses after this fault and re-faults
            them."""
            stale = [entry for entry in pending if entry[2] == victim]
            if not stale:
                return
            nonlocal fastpath_hits
            stale_cores = set()
            converted = []
            for entry in stale:
                pending.remove(entry)
                fastpath_hits -= 1
                prep_ns, other, _ = entry
                stale_cores.add(other)
                lane = positions[other] - 1
                converted.append(
                    (
                        prep_ns,
                        other,
                        _K_FAULT,
                        int(addr_np[other][lane]),
                        gap_cols[other][lane],
                        gapns_cols[other][lane],
                        write_cols[other][lane],
                    )
                )
            heap[:] = [
                entry for entry in heap if entry[1] not in stale_cores
            ] + converted
            heapq.heapify(heap)

        for core in range(num_cores):
            if push_next(core, core_clock_ns[core]):
                remaining[core] -= 1

        while heap:
            entry = heappop(heap)
            if entry[2] == _K_FAULT:
                # Slow-path lane, popped at its scalar prepare key: the
                # pager sees faults, evictions, and (stale-horizon)
                # resident hits in exactly the reference order.
                prep_ns, core, _, address, gap, gapns, is_write = entry
                apply_touches((prep_ns, core))
                clock = prep_ns + gapns
                page = address // page_bytes
                victim = None
                if not pager.is_resident(page):
                    victim = pager.eviction_candidate()
                fault_cycles, physical = access_translate(
                    address, now_ns=clock
                )
                cur_epoch = pager.epoch
                if fault_cycles:
                    if record_stats:
                        pfault[core] += 1
                        fcycles[core] += fault_cycles
                    clock += fault_ns
                if victim is not None:
                    divert_stale(victim)
                core_clock_ns[core] = clock
                heappush(
                    heap, (clock, core, _K_ISSUE, physical, is_write, gap)
                )
                continue

            issue_ns, core, _, address, is_write, gap = entry
            latency_ns, fast_hit = timing(address, issue_ns, is_write)
            append(latency_ns)
            if fast_hit:
                fast_hits += 1
            clock = issue_ns + latency_ns / mlp
            core_clock_ns[core] = clock
            if record_stats:
                inst[core] += gap
                nacc[core] += 1
                mlat[core] += latency_ns
                if epoch_every:
                    issued += 1
                    if issued % epoch_every == 0:
                        epoch_state["epoch"] += 1
                        # Engine tallies stand in for the deferred
                        # architecture counters; the pager's fault
                        # counter is live and correctly ordered, so it
                        # is read directly (as the scalar loop does).
                        telemetry.emit(
                            EpochSample(
                                time_ns=issue_ns,
                                epoch=epoch_state["epoch"],
                                accesses=float(issued),
                                fast_hits=float(fast_hits),
                                swaps=counters["swap.swaps"],
                                faults=pager.page_faults,
                            )
                        )
            if remaining[core] > 0:
                # Inlined fast path of push_next (profile-driven, as in
                # _run_batched's chunk cursor): a mid-chunk lane with a
                # valid translation strictly below the fault horizon
                # queues without the function call.
                pos = positions[core]
                if (
                    pos < lengths[core]
                    and stamp[core] == cur_epoch
                    and trans_base[core] <= pos < horizon[core]
                ):
                    positions[core] = pos + 1
                    index = pos - trans_base[core]
                    pending_append((clock, core, page_cols[core][index]))
                    fastpath_hits += 1
                    heappush(
                        heap,
                        (
                            clock + gapns_cols[core][pos],
                            core,
                            _K_ISSUE,
                            phys_cols[core][index],
                            write_cols[core][pos],
                            gap_cols[core][pos],
                        ),
                    )
                    remaining[core] -= 1
                elif push_next(core, clock):
                    remaining[core] -= 1

        # Phase barrier: every remaining recency update lands before
        # anything from the next phase (the scalar loop performed them
        # during this phase), and the fast-path resident hits are
        # folded into the pager's (integer) counter in bulk.
        apply_touches(None)
        pager.note_resident_hits(fastpath_hits)
        architecture.record_access_batch(latencies, fast_hits)
        if record_stats:
            for core in range(num_cores):
                stats = per_core[core]
                stats.instructions = inst[core]
                stats.memory_accesses = nacc[core]
                stats.memory_latency_ns = mlat[core]
                stats.page_faults = pfault[core]
                stats.fault_cycles = float(fcycles[core])
            epoch_state["issued"] = issued
            epoch_state["fast_hits"] = fast_hits

    architecture.begin_batch_stats()
    try:
        run_phase(warmup_per_core, record_stats=False)
        architecture.flush_batch_stats()
        architecture.counters.reset()
        run_phase(accesses_per_core, record_stats=True)
    finally:
        architecture.end_batch_stats()

    issued = epoch_state.get("issued", 0)
    if epoch_every and issued % epoch_every:
        epoch_state["epoch"] += 1
        telemetry.emit(
            EpochSample(
                time_ns=max(core_clock_ns),
                epoch=epoch_state["epoch"],
                accesses=float(issued),
                fast_hits=float(epoch_state["fast_hits"]),
                swaps=counters["swap.swaps"],
                faults=pager.page_faults,
            )
        )
