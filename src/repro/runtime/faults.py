"""Deterministic fault injection for the sweep runtime.

Long heterogeneous-memory sweeps (Figures 15-23 at production scale)
die in every way a process pool can die: a worker segfaults, a cell
hangs, a transient exception escapes, an on-disk cache entry is cut
short by a power loss.  The hardened
:class:`~repro.runtime.executor.SweepExecutor` tolerates all of these
— and this module makes each failure mode *reproducible on demand* so
the tolerance machinery is itself under test.

A :class:`FaultPlan` is a seed-driven description of which faults to
inject into a sweep.  :meth:`FaultPlan.materialise` assigns the
planned faults to concrete ``(design, workload)`` cells with a seeded
:class:`random.Random` shuffle of the *sorted* cell grid, so the
assignment depends only on ``(seed, grid)`` — never on execution
order, worker count, or cache state.  Each chosen cell faults at most
once, on the first attempt that actually runs it, which is what makes
the ISSUE-level guarantee cheap to state: any plan with
``retries >= 1`` still converges to results byte-equal to a
fault-free serial run.

Plans activate two ways: passed to ``SweepExecutor(faults=...)``
directly, or exported as ``REPRO_FAULTS`` for CI (see
:meth:`FaultPlan.from_env`)::

    REPRO_FAULTS="seed=7,crash=3,hang=1,error=2,corrupt=1,retries=4,timeout=5"

Fault kinds
-----------

``crash``
    The worker process dies mid-cell (``os._exit``); serially, a
    :class:`WorkerCrashError` is raised in its place.
``hang``
    The worker stalls for ``hang_seconds`` before proceeding — long
    enough for the executor's per-job timeout to kill it; serially
    (where nothing can preempt an inline call) it converts directly
    into a :class:`JobTimeoutError`.
``error``
    A transient :class:`InjectedFault` exception escapes the cell.
``corrupt``
    The cell's on-disk :class:`~repro.runtime.cache.ResultCache`
    entry is truncated before lookup, exercising the
    corrupt-entry-is-a-miss path.  A cold cache makes this a no-op.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

FAULT_CRASH = "crash"
FAULT_HANG = "hang"
FAULT_ERROR = "error"
FAULT_CORRUPT = "corrupt"

#: Every injectable fault kind.
FAULT_KINDS = (FAULT_CRASH, FAULT_HANG, FAULT_ERROR, FAULT_CORRUPT)

#: Exit code used by injected worker crashes (recognisable in logs).
CRASH_EXIT_CODE = 86

#: Environment variable holding a :meth:`FaultPlan.parse` spec.
FAULTS_ENV = "REPRO_FAULTS"


# ----------------------------------------------------------------------
# Failure vocabulary
# ----------------------------------------------------------------------


class SweepJobError(RuntimeError):
    """A sweep cell failed permanently (every retry exhausted).

    Carries the full job context — ``design``, ``workload``, and how
    many ``attempts`` were made — plus the last underlying ``cause``
    (also chained as ``__cause__`` when raised by the executor), so a
    multi-hour sweep never dies with a bare ``BrokenProcessPool``.
    """

    def __init__(
        self,
        design: str,
        workload: str,
        attempts: int,
        cause: Optional[BaseException] = None,
    ) -> None:
        self.design = design
        self.workload = workload
        self.attempts = attempts
        self.cause = cause
        detail = f": {cause!r}" if cause is not None else ""
        super().__init__(
            f"sweep cell {design}/{workload} failed after "
            f"{attempts} attempt(s){detail}"
        )

    def __reduce__(self):  # picklable across process boundaries
        return (
            type(self),
            (self.design, self.workload, self.attempts, self.cause),
        )


class WorkerCrashError(RuntimeError):
    """A worker process died without delivering its cell's result."""


class JobTimeoutError(RuntimeError):
    """One attempt at a cell exceeded the per-job wall-clock timeout."""


class InjectedFault(RuntimeError):
    """A transient exception injected by a :class:`FaultPlan`."""


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------

_SPEC_KEYS = {
    "seed": ("seed", int),
    "crash": ("crashes", int),
    "crashes": ("crashes", int),
    "hang": ("hangs", int),
    "hangs": ("hangs", int),
    "error": ("errors", int),
    "errors": ("errors", int),
    "corrupt": ("corrupt", int),
    "hang_seconds": ("hang_seconds", float),
    "retries": ("retries", int),
    "timeout": ("timeout", float),
}


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven description of the faults to inject into a sweep.

    ``retries``/``timeout`` are *suggested executor settings* that ride
    along with an environment-activated plan (CI exports one variable
    and the executor adopts matching tolerance); an explicit executor
    argument always wins.
    """

    seed: int = 0
    crashes: int = 0
    hangs: int = 0
    errors: int = 0
    corrupt: int = 0
    hang_seconds: float = 60.0
    retries: Optional[int] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        for field in ("crashes", "hangs", "errors", "corrupt"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")

    @property
    def total(self) -> int:
        """How many faults the plan wants to inject."""
        return self.crashes + self.hangs + self.errors + self.corrupt

    def materialise(
        self, cells: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], str]:
        """Assign the planned faults to concrete cells.

        Deterministic in ``(seed, cell grid)`` only: the sorted grid is
        shuffled with ``random.Random(seed)`` and faults are dealt onto
        it in kind order.  At most one fault lands per cell; a plan
        larger than the grid is truncated (``zip`` semantics).
        """
        order = sorted(set(cells))
        random.Random(self.seed).shuffle(order)
        kinds = (
            [FAULT_CRASH] * self.crashes
            + [FAULT_HANG] * self.hangs
            + [FAULT_ERROR] * self.errors
            + [FAULT_CORRUPT] * self.corrupt
        )
        return dict(zip(order, kinds))

    # -- spec syntax ---------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``k=v,k=v`` spec string.

        Keys: ``seed``, ``crash``/``crashes``, ``hang``/``hangs``,
        ``error``/``errors``, ``corrupt``, ``hang-seconds``,
        ``retries``, ``timeout`` (hyphens and underscores are
        interchangeable).
        """
        values: Dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip().replace("-", "_")
            if not sep or key not in _SPEC_KEYS:
                raise ValueError(
                    f"bad {FAULTS_ENV} entry {part!r}; expected "
                    f"key=value with key in "
                    f"{sorted(set(k for k in _SPEC_KEYS))}"
                )
            field, convert = _SPEC_KEYS[key]
            try:
                values[field] = convert(raw.strip())
            except ValueError:
                raise ValueError(
                    f"bad {FAULTS_ENV} value {part!r}: "
                    f"expected {convert.__name__}"
                ) from None
        return cls(**values)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan in ``$REPRO_FAULTS``, or ``None`` when unset/empty."""
        spec = os.environ.get(FAULTS_ENV, "").strip()
        if not spec:
            return None
        return cls.parse(spec)


# ----------------------------------------------------------------------
# Fault execution
# ----------------------------------------------------------------------


def apply_fault(
    kind: str, *, serial: bool, hang_seconds: float = 60.0
) -> None:
    """Execute one injected fault at the top of a cell attempt.

    Runs inside the worker process for pooled execution (``serial=
    False``) where a crash really kills the process and a hang really
    stalls it; inline execution (``serial=True``) substitutes the
    exception the executor would have derived from the same condition,
    because the parent cannot crash or preempt itself.
    """
    if kind == FAULT_ERROR:
        raise InjectedFault("injected transient worker exception")
    if kind == FAULT_CRASH:
        if serial:
            raise WorkerCrashError("injected worker crash (serial)")
        os._exit(CRASH_EXIT_CODE)
    if kind == FAULT_HANG:
        if serial:
            raise JobTimeoutError("injected hang (serial)")
        # Stall, then continue normally: with a per-job timeout the
        # parent terminates this worker long before the sleep ends;
        # without one the cell is merely delayed, never wrong.
        time.sleep(hang_seconds)
        return
    raise ValueError(f"unknown fault kind {kind!r}")


def corrupt_cache_entry(
    cache: Any, scale: Any, design: str, workload: str
) -> bool:
    """Truncate a cell's on-disk cache entry (the ``corrupt`` fault).

    Emulates a write cut short by a crash: the file keeps a prefix of
    its JSON payload.  Returns whether an entry existed to corrupt.
    """
    path = cache.entry_path(scale, design, workload)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return False
    path.write_bytes(data[: max(1, len(data) // 2)])
    return True


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULTS_ENV",
    "FAULT_CORRUPT",
    "FAULT_CRASH",
    "FAULT_ERROR",
    "FAULT_HANG",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "JobTimeoutError",
    "SweepJobError",
    "WorkerCrashError",
    "apply_fault",
    "corrupt_cache_entry",
]
