"""Precompiled, zero-copy shared-memory trace arena for design sweeps.

Every figure sweep replays the same Table II workload traces across
many designs, yet each sweep cell historically re-synthesised its
workload trace from the spec — trace generation was paid ``designs ×
workloads`` times instead of ``workloads`` times.  The arena fixes
that: the parent process compiles each workload in the sweep grid once
(:func:`repro.workloads.compile_trace`), exports the struct-of-arrays
columns into one ``multiprocessing.shared_memory`` segment, and every
worker attaches read-only :class:`~repro.trace.batch.RecordBatch`
views directly over the shared buffers — no per-cell regeneration, no
pickling traces over the job pipe.

The manifest is content-addressed the same way as
:class:`~repro.runtime.cache.ResultCache` keys — SHA-256 over the
canonical JSON of ``(Scale, workload names, repro.__version__, arena
schema)`` — and is itself a plain JSON-safe dict, so it crosses the
worker fork/pipe boundary as-is.

Degradation is always graceful and never changes results:

* shared memory unavailable (no ``/dev/shm``, permissions, import
  failure) → :meth:`TraceArena.publish` returns ``None`` and cells
  regenerate;
* estimated or exact payload over the size budget
  (:data:`DEFAULT_ARENA_BUDGET`, override with ``$REPRO_ARENA_BUDGET``
  or the executor's ``arena_budget``) → same fallback;
* a worker that cannot attach (segment vanished, stale manifest)
  regenerates locally — byte-identical, since compiled traces come
  from the same seeded generators.

Lifetime: the publishing executor owns the segment and unlinks it in a
``finally`` block, so crashes, fault-plan kills, and resumed sweeps
cannot leak ``/dev/shm`` entries; workers only ever ``close()`` their
attachment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.trace.batch import RecordBatch, align_offset
from repro.workloads import benchmark, build_workload
from repro.workloads.compiled import CompiledTrace, CoreTrace, compile_trace

#: Wire/layout version, part of the content-addressed key.
ARENA_SCHEMA_VERSION = 1

#: Default arena size budget (bytes); larger grids fall back to
#: per-cell generation rather than squeezing ``/dev/shm``.
DEFAULT_ARENA_BUDGET = 256 * 1024 * 1024

#: Environment override for the size budget (bytes).
ARENA_BUDGET_ENV = "REPRO_ARENA_BUDGET"

#: Shared-memory segment name prefix (leak checks glob for this).
ARENA_PREFIX = "repro-arena-"

#: Raw bytes per trace record across the three columns (two ``int64``
#: plus one ``bool``) — the pre-compile budget estimate.
_BYTES_PER_RECORD = 17

#: Segments whose buffers were still referenced when closed: live
#: zero-copy views need the mapping, so it is pinned for the process
#: lifetime instead of letting ``__del__`` retry (and noisily fail)
#: the close.  Unlink is unaffected — names never leak.
_PINNED_SEGMENTS: list = []


def _close_segment(shm) -> None:
    try:
        shm.close()
    except BufferError:
        _PINNED_SEGMENTS.append(shm)


def arena_budget(budget: Optional[int] = None) -> int:
    """Resolve the size budget: explicit > ``$REPRO_ARENA_BUDGET`` >
    :data:`DEFAULT_ARENA_BUDGET`."""
    if budget is not None:
        return budget
    raw = os.environ.get(ARENA_BUDGET_ENV)
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return DEFAULT_ARENA_BUDGET


def arena_key(scale, workloads: Sequence[str]) -> str:
    """Content address of an arena: Scale + workload names + version."""
    payload = {
        "scale": dataclasses.asdict(scale),
        "workloads": list(workloads),
        "version": __version__,
        "arena_schema": ARENA_SCHEMA_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _shared_memory():
    """The stdlib module, or ``None`` when unavailable."""
    try:
        from multiprocessing import shared_memory
    except Exception:  # pragma: no cover — exotic builds only
        return None
    return shared_memory


def _attach_segment(name: str):
    """Attach an existing segment without registering it with the
    resource tracker where the runtime supports opting out (3.13+);
    older runtimes share the forked parent's tracker, which is
    harmless — the parent unlinks exactly once."""
    shared_memory = _shared_memory()
    if shared_memory is None:
        raise OSError("multiprocessing.shared_memory unavailable")
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _layout_workloads(
    compiled: Dict[str, CompiledTrace]
) -> tuple[Dict[str, List[Dict[str, Any]]], int]:
    """Per-workload/per-core block offsets, and the total segment size."""
    offset = 0
    workloads: Dict[str, List[Dict[str, Any]]] = {}
    for name, trace in compiled.items():
        cores: List[Dict[str, Any]] = []
        for core in trace.cores:
            columns = RecordBatch.buffer_layout(len(core), offset)
            lengths = columns["end"]
            nbatches = len(core.batch_lengths)
            offset = align_offset(lengths + nbatches * 8)
            cores.append(
                {
                    "columns": columns,
                    "lengths": lengths,
                    "nbatches": nbatches,
                }
            )
        workloads[name] = cores
    return workloads, max(offset, 1)


class TraceArena:
    """Parent-side handle on a published arena segment.

    Create with :meth:`publish`; pass :attr:`manifest` to workers (it
    is a plain dict); call :meth:`dispose` — idempotent, exception-safe
    — when the sweep is done.
    """

    def __init__(self, shm, manifest: Dict[str, Any]) -> None:
        self._shm = shm
        self.manifest = manifest

    @property
    def name(self) -> str:
        return str(self.manifest["segment"])

    @property
    def nbytes(self) -> int:
        return int(self.manifest["bytes"])

    @classmethod
    def publish(
        cls,
        scale,
        workloads: Sequence[str],
        budget: Optional[int] = None,
    ) -> Optional["TraceArena"]:
        """Compile ``workloads`` at ``scale`` and publish the arena.

        Returns ``None`` (callers fall back to per-cell generation)
        when shared memory is unavailable or the payload would exceed
        the budget — never raises for environmental reasons.
        """
        shared_memory = _shared_memory()
        if shared_memory is None:
            return None
        budget = arena_budget(budget)
        names = sorted(set(workloads))
        if not names:
            return None
        total_per_core = scale.warmup_per_core + scale.accesses_per_core
        estimate = (
            len(names) * scale.num_copies * total_per_core * _BYTES_PER_RECORD
        )
        if estimate > budget:
            return None
        config = scale.config()
        compiled: Dict[str, CompiledTrace] = {}
        for name in names:
            workload = build_workload(
                config,
                benchmark(name),
                num_copies=scale.num_copies,
                seed=scale.seed,
            )
            compiled[name] = compile_trace(workload, total_per_core)
        layout, total_bytes = _layout_workloads(compiled)
        if total_bytes > budget:
            return None
        key = arena_key(scale, names)
        segment = f"{ARENA_PREFIX}{key[:12]}-{os.getpid()}"
        try:
            shm = cls._create_segment(shared_memory, segment, total_bytes)
        except OSError:
            return None
        try:
            for name, trace in compiled.items():
                for core, spec in zip(trace.cores, layout[name]):
                    core.batch.export_into(shm.buf, spec["columns"])
                    np.frombuffer(
                        shm.buf,
                        dtype=np.int64,
                        count=spec["nbatches"],
                        offset=spec["lengths"],
                    )[:] = core.batch_lengths
        except BaseException:
            cls._destroy_segment(shm)
            raise
        manifest = {
            "arena_schema": ARENA_SCHEMA_VERSION,
            "segment": segment,
            "key": key,
            "bytes": total_bytes,
            "accesses_per_core": total_per_core,
            "num_copies": scale.num_copies,
            "workloads": layout,
        }
        return cls(shm, manifest)

    @staticmethod
    def _create_segment(shared_memory, name: str, size: int):
        """Create the segment, reclaiming a stale same-name leftover
        from a crashed earlier run (pid reuse) rather than failing."""
        try:
            return shared_memory.SharedMemory(
                create=True, size=size, name=name
            )
        except FileExistsError:
            stale = shared_memory.SharedMemory(name=name)
            TraceArena._destroy_segment(stale)
            return shared_memory.SharedMemory(
                create=True, size=size, name=name
            )

    @staticmethod
    def _destroy_segment(shm) -> None:
        _close_segment(shm)
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            self._destroy_segment(shm)


class ArenaView:
    """Worker-side read-only attachment to a published arena."""

    def __init__(self, manifest: Dict[str, Any]) -> None:
        if manifest.get("arena_schema") != ARENA_SCHEMA_VERSION:
            raise ValueError(
                f"arena schema {manifest.get('arena_schema')!r} != "
                f"{ARENA_SCHEMA_VERSION}"
            )
        self.manifest = manifest
        self._shm = _attach_segment(str(manifest["segment"]))

    def trace(self, workload: str) -> CompiledTrace:
        """Zero-copy :class:`CompiledTrace` over the shared columns."""
        specs = self.manifest["workloads"][workload]
        cores = []
        for spec in specs:
            batch = RecordBatch.attach(self._shm.buf, spec["columns"])
            lengths = np.frombuffer(
                self._shm.buf,
                dtype=np.int64,
                count=spec["nbatches"],
                offset=spec["lengths"],
            ).view()
            lengths.flags.writeable = False
            cores.append(CoreTrace(batch=batch, batch_lengths=lengths))
        return CompiledTrace(
            workload=workload,
            accesses_per_core=int(self.manifest["accesses_per_core"]),
            cores=tuple(cores),
        )

    def close(self) -> None:
        """Detach (never unlinks — the publisher owns the segment).

        If zero-copy views over the segment are still alive, the
        mapping stays pinned until process exit — closing it under
        them would invalidate their memory."""
        shm, self._shm = self._shm, None
        if shm is not None:
            _close_segment(shm)


def attach_arena(manifest: Dict[str, Any]) -> ArenaView:
    """Attach to a published arena by manifest.

    Raises ``OSError`` when the segment is gone (callers regenerate)
    and ``ValueError`` on a schema mismatch.
    """
    return ArenaView(manifest)


__all__ = [
    "ARENA_BUDGET_ENV",
    "ARENA_PREFIX",
    "ARENA_SCHEMA_VERSION",
    "ArenaView",
    "DEFAULT_ARENA_BUDGET",
    "TraceArena",
    "arena_budget",
    "arena_key",
    "attach_arena",
]
