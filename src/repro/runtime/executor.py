"""Fault-tolerant sweep executor: cache front-end, supervised
process-pool back-end, checkpoint/resume journal.

:class:`SweepExecutor` fans the independent ``(design, workload)``
cells of a design sweep out across worker processes, front-ended by an
optional on-disk :class:`~repro.runtime.cache.ResultCache` and
checkpointed into a :class:`~repro.runtime.journal.SweepJournal`.
``jobs=1`` is the degenerate serial case (no processes, everything
inline), so results are bit-identical at any worker count — cells
never share state, and each is seed-deterministic.

Fault tolerance (see docs/RUNTIME.md):

* **per-job timeout** — each pooled attempt runs in its own worker
  process with a wall-clock deadline; an overdue worker is terminated
  and only *its* job is charged;
* **crash isolation** — a worker that dies (segfault, OOM-kill,
  injected ``os._exit``) fails only its own job, wrapped in a
  :class:`~repro.runtime.faults.SweepJobError` carrying (design,
  workload, attempt) once retries are exhausted;
* **bounded retries** — failed attempts re-queue with exponential
  backoff and seeded jitter; a :class:`JobRetryEvent` is emitted on
  the telemetry bus and counted in :class:`SweepMetrics`;
* **graceful degradation** — after ``degrade_after`` worker-level
  failures (crashes + timeouts) in one sweep, the executor stops
  spawning processes and finishes the sweep serially inline;
* **checkpoint/resume** — with ``journal_dir`` set, completed cells
  are journalled as they finish and an interrupted sweep replays only
  the missing cells on restart, merging bit-identically;
* **deterministic fault injection** — a
  :class:`~repro.runtime.faults.FaultPlan` (or ``$REPRO_FAULTS``)
  injects crashes/hangs/transient errors into workers and corruption
  into the cache, keeping the whole tolerance surface under test;
* **shared-memory trace arena** — each sweep's workload traces are
  compiled once by the parent and published read-only via
  :class:`~repro.runtime.arena.TraceArena`; workers attach zero-copy
  instead of regenerating (``arena=False`` or an over-budget grid
  falls back to per-cell generation, byte-identically).

The module-level default executor (serial, no disk cache) is what
:func:`repro.experiments.runner.run_design_sweep` uses when not handed
one explicitly; the CLI builds its own from ``--jobs``/``--cache-dir``
/``--timeout``/``--retries``/``--resume``.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runtime.arena import TraceArena
from repro.runtime.cache import ResultCache
from repro.runtime.cells import timed_cell
from repro.runtime.faults import (
    FAULT_CORRUPT,
    FaultPlan,
    JobTimeoutError,
    SweepJobError,
    WorkerCrashError,
    apply_fault,
    corrupt_cache_entry,
)
from repro.runtime.journal import SweepJournal
from repro.runtime.metrics import (
    FAILURE_CRASH,
    FAILURE_ERROR,
    FAILURE_TIMEOUT,
    SOURCE_DISK,
    SOURCE_JOURNAL,
    SOURCE_SIMULATED,
    CellStat,
    ProgressCallback,
    SweepMetrics,
)
from repro.sim import SimulationResult
from repro.telemetry.auditor import InvariantViolation
from repro.telemetry.bus import EventBus
from repro.telemetry.events import JobRetryEvent, TelemetryEvent, event_from_dict

#: Sweep results keyed by ``(design, workload)``.
SweepResults = Dict[Tuple[str, str], SimulationResult]

#: Captured telemetry keyed by ``(design, workload)``.
SweepEvents = Dict[Tuple[str, str], List[TelemetryEvent]]

#: One cell attempt's outcome: (design, workload, seconds, result,
#: wire-format events).
CellOutcome = Tuple[str, str, float, SimulationResult, List[dict]]

#: Default retry budget: attempts allowed = retries + 1.
DEFAULT_RETRIES = 2

#: Default worker-failure count (crashes + timeouts, per sweep) after
#: which the executor degrades to serial execution.
DEFAULT_DEGRADE_AFTER = 5

#: Sentinel: resolve the fault plan from ``$REPRO_FAULTS``.
FAULTS_FROM_ENV = "env"


@dataclass
class _Job:
    """One cell attempt waiting to run (or re-run)."""

    design: str
    workload: str
    attempt: int = 1
    fault: Optional[str] = None  # injected fault riding this attempt
    not_before: float = 0.0      # monotonic backoff gate

    @property
    def cell(self) -> Tuple[str, str]:
        return (self.design, self.workload)


@dataclass
class _Worker:
    """A live worker process running exactly one cell attempt."""

    job: _Job
    process: object
    conn: connection.Connection
    started: float = field(default_factory=time.monotonic)


def _cell_worker(conn, args) -> None:
    """Child-process entry: run one attempt, ship the outcome back.

    Everything crosses the pipe — the result on success, the exception
    on failure (re-wrapped if unpicklable).  An injected crash
    (``os._exit`` inside :func:`timed_cell`) bypasses all of this and
    is detected by the parent as EOF + a dead process.
    """
    try:
        try:
            payload = timed_cell(args)
        except BaseException as exc:  # noqa: BLE001 — must cross the pipe
            try:
                conn.send(("error", exc))
            except Exception:
                conn.send(
                    ("error", RuntimeError(f"{type(exc).__name__}: {exc}"))
                )
        else:
            conn.send(("ok", payload))
    finally:
        conn.close()


class SweepExecutor:
    """Runs design sweeps: cache front-end, supervised pool back-end.

    Telemetry capture (``telemetry=EventBus()``) records each simulated
    cell's event stream into :attr:`events` and replays it onto the
    given bus at the parent, cell by cell in completion order — worker
    processes cannot share the parent's bus, so events cross the pool
    boundary as dicts and are rehydrated here.  ``audit=True`` attaches
    a live invariant auditor to every cell's architecture *inside* the
    worker (violations propagate out of :meth:`run` unretried — an
    audit failure is deterministic, retrying cannot fix it).

    Events never touch the result cache or the journal: the cached/
    journalled key and payload are exactly the telemetry-off ones, so
    warm replays and resumes stay bit-identical — but cells served
    from disk or journal contribute **no events** (re-run with the
    cache disabled to trace them).  Failed attempts also contribute no
    events; only :class:`JobRetryEvent` marks them on the parent bus.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        on_cell: Optional[ProgressCallback] = None,
        telemetry: Optional[EventBus] = None,
        audit: bool = False,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: float = 0.1,
        jitter: float = 0.25,
        degrade_after: int = DEFAULT_DEGRADE_AFTER,
        faults: Optional[FaultPlan | str] = FAULTS_FROM_ENV,
        journal_dir: Optional[Path | str] = None,
        arena: bool = True,
        arena_budget: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if faults == FAULTS_FROM_ENV:
            faults = FaultPlan.from_env()
        if retries is None:
            retries = (
                faults.retries
                if faults is not None and faults.retries is not None
                else DEFAULT_RETRIES
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is None and faults is not None:
            timeout = faults.timeout
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if degrade_after < 1:
            raise ValueError(
                f"degrade_after must be >= 1, got {degrade_after}"
            )
        self.jobs = jobs
        self.cache = cache
        self.on_cell = on_cell
        self.telemetry = telemetry
        self.audit = audit
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.degrade_after = degrade_after
        self.faults = faults
        self.journal_dir = (
            Path(journal_dir) if journal_dir is not None else None
        )
        #: Publish a shared-memory trace arena per sweep (fall back to
        #: per-cell generation when shared memory is unavailable or the
        #: payload exceeds ``arena_budget`` bytes).
        self.arena = arena
        self.arena_budget = arena_budget
        self.metrics = SweepMetrics(jobs=jobs)
        #: Backoff jitter only (never touches results): seeded so two
        #: identical faulted runs retry on the same schedule.
        self._rng = random.Random(faults.seed if faults is not None else 0)
        #: Event streams of simulated (never cached) cells, accumulated
        #: across :meth:`run` calls; a re-simulated cell overwrites its
        #: earlier entry.
        self.events: SweepEvents = {}

    def run(self, scale, designs: Sequence[str]) -> SweepResults:
        """Simulate every ``(design, workload)`` cell of ``scale``,
        serving what it can from the journal and the disk cache."""
        self._check_designs(designs)
        cells = [
            (design, workload)
            for design in designs
            for workload in scale.benchmarks
        ]
        journal: Optional[SweepJournal] = None
        if self.journal_dir is not None:
            journal = SweepJournal.for_sweep(self.journal_dir, scale, designs)
        return self._run_cells(scale, cells, journal)

    def run_cells(
        self, scale, cells: Sequence[Tuple[str, str]]
    ) -> SweepResults:
        """Simulate an explicit list of ``(design, workload)`` cells.

        The batching hook used by :mod:`repro.serve` dispatch batches:
        unlike :meth:`run`, the grid is not the ``designs ×
        scale.benchmarks`` cross product but exactly ``cells`` (order
        preserved, duplicates rejected).  Cache, arena, journal, fault
        and retry semantics are identical — a cell's result is
        bit-identical whichever entry point ran it.
        """
        seen = set()
        for cell in cells:
            if cell in seen:
                raise ValueError(f"duplicate cell {cell!r}")
            seen.add(cell)
        self._check_designs(sorted({design for design, _ in cells}))
        journal: Optional[SweepJournal] = None
        if self.journal_dir is not None:
            journal = SweepJournal.for_cells(self.journal_dir, scale, cells)
        return self._run_cells(scale, list(cells), journal)

    @staticmethod
    def _check_designs(designs: Sequence[str]) -> None:
        from repro.experiments.designs import REGISTRY

        for design in designs:
            if design not in REGISTRY:
                raise KeyError(f"unknown design {design!r}")

    def _run_cells(
        self,
        scale,
        cells: List[Tuple[str, str]],
        journal: Optional[SweepJournal],
    ) -> SweepResults:
        start = time.perf_counter()
        results: SweepResults = {}
        pending: List[Tuple[str, str]] = []
        done = 0

        recovered: Dict[Tuple[str, str], SimulationResult] = {}
        if journal is not None:
            recovered = journal.load()
            journal.start()

        fault_map = (
            self.faults.materialise(cells) if self.faults is not None else {}
        )
        # Corruption faults damage cache entries *before* lookup (a
        # cold cache makes them no-ops); they never reach workers.
        for cell, kind in list(fault_map.items()):
            if kind == FAULT_CORRUPT:
                del fault_map[cell]
                if self.cache is not None:
                    corrupt_cache_entry(self.cache, scale, *cell)

        arena: Optional[TraceArena] = None
        try:
            for design, workload in cells:
                if (design, workload) in recovered:
                    results[(design, workload)] = recovered[
                        (design, workload)
                    ]
                    done += 1
                    self._record(
                        CellStat(design, workload, 0.0, SOURCE_JOURNAL),
                        done,
                        len(cells),
                    )
                    continue
                cached = (
                    self.cache.get(scale, design, workload)
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    results[(design, workload)] = cached
                    if journal is not None:
                        journal.record(design, workload, 0.0, cached)
                    done += 1
                    self._record(
                        CellStat(design, workload, 0.0, SOURCE_DISK),
                        done,
                        len(cells),
                    )
                else:
                    pending.append((design, workload))

            if pending:
                # Surface which replay kernel each simulated cell will
                # resolve to (cache/journal hits never pick a kernel).
                from repro.experiments.designs import kernel_decision

                config = scale.config()
                decisions = {
                    design: kernel_decision(design, config)
                    for design in sorted({d for d, _ in pending})
                }
                for design, _ in pending:
                    self.metrics.record_kernel(decisions[design])

            if self.arena and pending:
                arena = TraceArena.publish(
                    scale,
                    sorted({workload for _, workload in pending}),
                    budget=self.arena_budget,
                )
                if arena is not None:
                    self.metrics.record_arena(arena.nbytes)
            manifest = arena.manifest if arena is not None else None

            for design, workload, seconds, result, events in self._execute(
                scale, pending, fault_map, manifest
            ):
                results[(design, workload)] = result
                if self.cache is not None:
                    self.cache.put(scale, design, workload, result)
                if journal is not None:
                    journal.record(design, workload, seconds, result)
                if events:
                    self._merge_events(design, workload, events)
                if manifest is not None:
                    self.metrics.record_arena_hit()
                done += 1
                self._record(
                    CellStat(design, workload, seconds, SOURCE_SIMULATED),
                    done,
                    len(cells),
                )
        except BaseException:
            # Interrupted (including KeyboardInterrupt/kill-adjacent
            # exceptions): keep the journal for resume.
            if journal is not None:
                journal.close()
            raise
        finally:
            # The publisher owns the segment: unlink on every exit path
            # (completion, failure, interrupt) so /dev/shm never leaks —
            # even when workers were killed mid-attach.
            if arena is not None:
                arena.dispose()

        if journal is not None:
            journal.discard()  # completed: the journal is obsolete
        self.metrics.record_sweep(time.perf_counter() - start)
        return results

    # -- internals -----------------------------------------------------

    @property
    def _capture(self) -> bool:
        return self.telemetry is not None and self.telemetry.enabled

    @property
    def _hang_seconds(self) -> float:
        return self.faults.hang_seconds if self.faults is not None else 0.0

    def _merge_events(
        self, design: str, workload: str, events: Sequence[dict]
    ) -> None:
        """Rehydrate one cell's wire-format events and replay them on
        the parent bus, preserving in-cell order."""
        hydrated = [event_from_dict(data) for data in events]
        self.events[(design, workload)] = hydrated
        bus = self.telemetry
        if bus is not None and bus.enabled:
            for event in hydrated:
                bus.emit(event)

    def _args(self, scale, job: _Job, manifest: Optional[Dict]) -> Tuple:
        return (
            scale,
            job.design,
            job.workload,
            self._capture,
            self.audit,
            job.fault,
            self._hang_seconds,
            manifest,
        )

    def _execute(
        self,
        scale,
        pending: Sequence[Tuple[str, str]],
        fault_map: Dict[Tuple[str, str], str],
        manifest: Optional[Dict] = None,
    ) -> Iterator[CellOutcome]:
        """Yield a :data:`CellOutcome` for each missing cell — inline
        at ``jobs=1``, supervised worker processes otherwise.  Both
        paths run the same :func:`timed_cell` entry point (including
        arena attachment via ``manifest``), so event capture and
        results are identical at any worker count."""
        if not pending:
            return
        jobs = deque(
            _Job(design, workload, fault=fault_map.get((design, workload)))
            for design, workload in pending
        )
        if self.jobs == 1:
            yield from self._run_serial(scale, jobs, manifest)
        else:
            yield from self._run_supervised(scale, jobs, manifest)

    # -- serial back-end ----------------------------------------------

    def _run_serial(
        self, scale, jobs: deque, manifest: Optional[Dict] = None
    ) -> Iterator[CellOutcome]:
        """Inline execution with the same retry/fault semantics as the
        pool.  Nothing can preempt an inline cell, so the per-job
        timeout is not enforced here (injected hangs convert to
        :class:`JobTimeoutError` instead, see :func:`apply_fault`)."""
        while jobs:
            job = jobs.popleft()
            delay = job.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                if job.fault is not None:
                    apply_fault(
                        job.fault,
                        serial=True,
                        hang_seconds=self._hang_seconds,
                    )
                outcome = timed_cell(
                    (scale, job.design, job.workload, self._capture,
                     self.audit, None, 0.0, manifest)
                )
            except Exception as exc:
                jobs.appendleft(self._retry(job, exc))
                continue
            yield outcome

    # -- supervised pool back-end -------------------------------------

    def _run_supervised(
        self, scale, jobs: deque, manifest: Optional[Dict] = None
    ) -> Iterator[CellOutcome]:
        """Process-per-attempt supervisor.

        Each attempt runs in its own (cheap, forked) worker process
        with a private result pipe, which is what buys exact fault
        attribution: a crash or timeout charges *only* the job on that
        worker, and killing a hung worker cannot disturb its siblings.
        After ``degrade_after`` crashes + timeouts the remaining cells
        finish serially inline.
        """
        ctx = get_context()
        active: List[_Worker] = []
        failures = 0
        try:
            while jobs or active:
                if failures >= self.degrade_after:
                    # Too many pool failures: abandon worker processes.
                    self.metrics.degraded = True
                    for worker in active:
                        self._kill(worker)
                        jobs.append(worker.job)
                    active.clear()
                    break
                now = time.monotonic()
                while jobs and len(active) < self.jobs:
                    job = self._pop_ready(jobs, now)
                    if job is None:
                        break
                    active.append(self._spawn(ctx, scale, job, manifest))
                if not active:
                    # Everything is backing off; sleep to the earliest.
                    soonest = min(job.not_before for job in jobs)
                    time.sleep(max(0.0, soonest - now))
                    continue
                ready = connection.wait(
                    [worker.conn for worker in active],
                    timeout=self._wait_timeout(active, jobs, now),
                )
                now = time.monotonic()
                for worker in list(active):
                    if worker.conn in ready:
                        active.remove(worker)
                        outcome, exc = self._collect(worker)
                        if exc is None:
                            yield outcome
                        else:
                            if isinstance(exc, WorkerCrashError):
                                failures += 1
                            jobs.append(self._retry(worker.job, exc))
                    elif (
                        self.timeout is not None
                        and now - worker.started >= self.timeout
                    ):
                        active.remove(worker)
                        self._kill(worker)
                        failures += 1
                        timeout_error = JobTimeoutError(
                            f"cell {worker.job.design}/"
                            f"{worker.job.workload} exceeded "
                            f"{self.timeout:.3g}s "
                            f"(attempt {worker.job.attempt})"
                        )
                        jobs.append(self._retry(worker.job, timeout_error))
        finally:
            for worker in active:
                self._kill(worker)
        if jobs:  # degraded: finish the sweep serially inline
            yield from self._run_serial(scale, jobs, manifest)

    def _wait_timeout(
        self, active: List[_Worker], jobs: deque, now: float
    ) -> Optional[float]:
        """How long :func:`connection.wait` may block: until the next
        per-job deadline or the next backoff expiry."""
        timeout: Optional[float] = None
        if self.timeout is not None:
            deadline = min(w.started + self.timeout for w in active)
            timeout = max(0.0, deadline - now) + 0.005
        if jobs and len(active) < self.jobs:
            soonest = min(job.not_before for job in jobs)
            wake = max(0.0, soonest - now) + 0.005
            timeout = wake if timeout is None else min(timeout, wake)
        return timeout

    @staticmethod
    def _pop_ready(jobs: deque, now: float) -> Optional[_Job]:
        """Remove and return the first job whose backoff has elapsed."""
        for index, job in enumerate(jobs):
            if job.not_before <= now:
                del jobs[index]
                return job
        return None

    def _spawn(
        self, ctx, scale, job: _Job, manifest: Optional[Dict] = None
    ) -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_cell_worker,
            args=(child_conn, self._args(scale, job, manifest)),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(job=job, process=process, conn=parent_conn)

    def _collect(
        self, worker: _Worker
    ) -> Tuple[Optional[CellOutcome], Optional[BaseException]]:
        """Drain a readable worker: its outcome, or the failure that
        took it (a crash surfaces as EOF + a dead process)."""
        try:
            status, payload = worker.conn.recv()
        except (EOFError, OSError):
            status, payload = None, None
        worker.conn.close()
        worker.process.join(timeout=10.0)
        if worker.process.is_alive():  # pragma: no cover — paranoia
            worker.process.kill()
            worker.process.join()
        if status == "ok":
            return payload, None
        if status == "error":
            return None, payload
        exitcode = worker.process.exitcode
        return None, WorkerCrashError(
            f"worker for cell {worker.job.design}/{worker.job.workload} "
            f"died with exit code {exitcode} "
            f"(attempt {worker.job.attempt})"
        )

    def _kill(self, worker: _Worker) -> None:
        worker.process.terminate()
        worker.process.join(timeout=10.0)
        if worker.process.is_alive():  # pragma: no cover — paranoia
            worker.process.kill()
            worker.process.join()
        worker.conn.close()

    # -- retry engine --------------------------------------------------

    def _retry(self, job: _Job, exc: BaseException) -> _Job:
        """Account one failed attempt; the re-queued job, or raise
        :class:`SweepJobError` when the retry budget is spent."""
        if isinstance(exc, InvariantViolation):
            # Deterministic audit failure: retrying cannot change it,
            # and callers match on the violation itself.
            raise exc
        kind = (
            FAILURE_CRASH
            if isinstance(exc, WorkerCrashError)
            else FAILURE_TIMEOUT
            if isinstance(exc, JobTimeoutError)
            else FAILURE_ERROR
        )
        self.metrics.record_failure(kind)
        if job.attempt > self.retries:
            raise SweepJobError(
                job.design, job.workload, job.attempt, exc
            ) from exc
        self.metrics.record_retry()
        bus = self.telemetry
        if bus is not None and bus.enabled:
            bus.emit(
                JobRetryEvent(
                    0.0,
                    design=job.design,
                    workload=job.workload,
                    attempt=job.attempt + 1,
                    reason=kind,
                )
            )
        delay = 0.0
        if self.backoff > 0:
            delay = (
                self.backoff
                * (2 ** (job.attempt - 1))
                * (1.0 + self.jitter * self._rng.random())
            )
        return _Job(
            job.design,
            job.workload,
            attempt=job.attempt + 1,
            fault=None,  # a fault fires on exactly one attempt
            not_before=time.monotonic() + delay,
        )

    def _record(self, stat: CellStat, done: int, total: int) -> None:
        self.metrics.record_cell(stat)
        if self.on_cell is not None:
            self.on_cell(stat, done, total)


# ----------------------------------------------------------------------
# Default executor (library path: serial, in-memory memoisation only)
# ----------------------------------------------------------------------

_default_executor: Optional[SweepExecutor] = None


def get_default_executor() -> SweepExecutor:
    """The executor sweeps use when none is passed explicitly."""
    global _default_executor
    if _default_executor is None:
        _default_executor = SweepExecutor()
    return _default_executor


def set_default_executor(executor: Optional[SweepExecutor]) -> None:
    """Install (or, with ``None``, reset) the process-wide default."""
    global _default_executor
    _default_executor = executor


__all__ = [
    "DEFAULT_DEGRADE_AFTER",
    "DEFAULT_RETRIES",
    "SweepEvents",
    "SweepExecutor",
    "SweepResults",
    "get_default_executor",
    "set_default_executor",
]
