"""Process-pool sweep executor with a persistent result cache.

:class:`SweepExecutor` fans the independent ``(design, workload)``
cells of a design sweep out across worker processes, front-ended by an
optional on-disk :class:`~repro.runtime.cache.ResultCache`.  ``jobs=1``
is the degenerate serial case (no pool, everything inline), so results
are bit-identical at any worker count — cells never share state, and
each is seed-deterministic.

The module-level default executor (serial, no disk cache) is what
:func:`repro.experiments.runner.run_design_sweep` uses when not handed
one explicitly; the CLI builds its own from ``--jobs``/``--cache-dir``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.cache import ResultCache
from repro.runtime.cells import timed_cell
from repro.runtime.metrics import (
    SOURCE_DISK,
    SOURCE_SIMULATED,
    CellStat,
    ProgressCallback,
    SweepMetrics,
)
from repro.sim import SimulationResult
from repro.telemetry.bus import EventBus
from repro.telemetry.events import TelemetryEvent, event_from_dict

#: Sweep results keyed by ``(design, workload)``.
SweepResults = Dict[Tuple[str, str], SimulationResult]

#: Captured telemetry keyed by ``(design, workload)``.
SweepEvents = Dict[Tuple[str, str], List[TelemetryEvent]]


class SweepExecutor:
    """Runs design sweeps: cache front-end, process-pool back-end.

    Telemetry capture (``telemetry=EventBus()``) records each simulated
    cell's event stream into :attr:`events` and replays it onto the
    given bus at the parent, cell by cell in completion order — worker
    processes cannot share the parent's bus, so events cross the pool
    boundary as dicts and are rehydrated here.  ``audit=True`` attaches
    a live invariant auditor to every cell's architecture *inside* the
    worker (violations propagate out of :meth:`run`).

    Events never touch the result cache: the cache key and payload are
    exactly the telemetry-off ones, so a warm-cache replay stays
    bit-identical — but it also means cells served from disk contribute
    **no events** (re-run with the cache disabled to trace them).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        on_cell: Optional[ProgressCallback] = None,
        telemetry: Optional[EventBus] = None,
        audit: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.on_cell = on_cell
        self.telemetry = telemetry
        self.audit = audit
        self.metrics = SweepMetrics(jobs=jobs)
        #: Event streams of simulated (never cached) cells, accumulated
        #: across :meth:`run` calls; a re-simulated cell overwrites its
        #: earlier entry.
        self.events: SweepEvents = {}

    def run(self, scale, designs: Sequence[str]) -> SweepResults:
        """Simulate every ``(design, workload)`` cell of ``scale``,
        serving what it can from the disk cache."""
        from repro.experiments.designs import REGISTRY

        for design in designs:
            if design not in REGISTRY:
                raise KeyError(f"unknown design {design!r}")

        cells = [
            (design, workload)
            for design in designs
            for workload in scale.benchmarks
        ]
        start = time.perf_counter()
        results: SweepResults = {}
        pending: List[Tuple[str, str]] = []
        done = 0

        for design, workload in cells:
            cached = (
                self.cache.get(scale, design, workload)
                if self.cache is not None
                else None
            )
            if cached is not None:
                results[(design, workload)] = cached
                done += 1
                self._record(
                    CellStat(design, workload, 0.0, SOURCE_DISK),
                    done,
                    len(cells),
                )
            else:
                pending.append((design, workload))

        for design, workload, seconds, result, events in self._execute(
            scale, pending
        ):
            results[(design, workload)] = result
            if self.cache is not None:
                self.cache.put(scale, design, workload, result)
            if events:
                self._merge_events(design, workload, events)
            done += 1
            self._record(
                CellStat(design, workload, seconds, SOURCE_SIMULATED),
                done,
                len(cells),
            )

        self.metrics.record_sweep(time.perf_counter() - start)
        return results

    # -- internals -----------------------------------------------------

    @property
    def _capture(self) -> bool:
        return self.telemetry is not None and self.telemetry.enabled

    def _merge_events(
        self, design: str, workload: str, events: Sequence[dict]
    ) -> None:
        """Rehydrate one cell's wire-format events and replay them on
        the parent bus, preserving in-cell order."""
        hydrated = [event_from_dict(data) for data in events]
        self.events[(design, workload)] = hydrated
        bus = self.telemetry
        if bus is not None and bus.enabled:
            for event in hydrated:
                bus.emit(event)

    def _execute(self, scale, pending: Sequence[Tuple[str, str]]):
        """Yield ``(design, workload, seconds, result, events)`` for
        each missing cell — inline at ``jobs=1``, pooled otherwise.
        Both paths run the same :func:`timed_cell` entry point, so
        event capture is identical at any worker count."""
        if not pending:
            return
        capture = self._capture
        if self.jobs == 1:
            for design, workload in pending:
                yield timed_cell(
                    (scale, design, workload, capture, self.audit)
                )
            return

        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    timed_cell,
                    (scale, design, workload, capture, self.audit),
                )
                for design, workload in pending
            }
            while futures:
                finished, futures = wait(
                    futures, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    yield future.result()

    def _record(self, stat: CellStat, done: int, total: int) -> None:
        self.metrics.record_cell(stat)
        if self.on_cell is not None:
            self.on_cell(stat, done, total)


# ----------------------------------------------------------------------
# Default executor (library path: serial, in-memory memoisation only)
# ----------------------------------------------------------------------

_default_executor: Optional[SweepExecutor] = None


def get_default_executor() -> SweepExecutor:
    """The executor sweeps use when none is passed explicitly."""
    global _default_executor
    if _default_executor is None:
        _default_executor = SweepExecutor()
    return _default_executor


def set_default_executor(executor: Optional[SweepExecutor]) -> None:
    """Install (or, with ``None``, reset) the process-wide default."""
    global _default_executor
    _default_executor = executor


__all__ = [
    "SweepEvents",
    "SweepExecutor",
    "SweepResults",
    "get_default_executor",
    "set_default_executor",
]
