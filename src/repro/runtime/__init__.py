"""Parallel sweep runtime: executor, persistent result cache, metrics.

Every paper figure funnels through a design sweep — up to 15 designs
× 14 workloads of independent, seed-deterministic simulation cells.
This package makes that sweep fast and repeatable:

* :class:`SweepExecutor` — fans cells out across a process pool
  (``jobs=1`` is the serial degenerate case; results are bit-identical
  at any worker count);
* :class:`ResultCache` — content-addressed on-disk cache keyed by
  ``(Scale, design, workload, repro.__version__)``, surviving across
  processes and CLI invocations, with hit/miss/eviction accounting;
* :class:`SweepMetrics` — cells completed, wall time per cell, worker
  utilisation, cache hit rate — surfaced by the CLI's ``[runtime]``
  summary line.

See docs/RUNTIME.md for the cache-key scheme and the determinism
guarantee.
"""

from repro.runtime.cache import CacheStats, ResultCache, default_cache_dir
from repro.runtime.cells import simulate_cell, timed_cell
from repro.runtime.executor import (
    SweepEvents,
    SweepExecutor,
    SweepResults,
    get_default_executor,
    set_default_executor,
)
from repro.runtime.metrics import (
    CellStat,
    SweepMetrics,
    print_progress,
)

__all__ = [
    "CacheStats",
    "CellStat",
    "ResultCache",
    "SweepEvents",
    "SweepExecutor",
    "SweepMetrics",
    "SweepResults",
    "default_cache_dir",
    "get_default_executor",
    "print_progress",
    "set_default_executor",
    "simulate_cell",
    "timed_cell",
]
