"""Fault-tolerant parallel sweep runtime: executor, persistent result
cache, checkpoint journal, deterministic fault injection, metrics.

Every paper figure funnels through a design sweep — up to 15 designs
× 14 workloads of independent, seed-deterministic simulation cells.
This package makes that sweep fast, repeatable, and crash-proof:

* :class:`SweepExecutor` — fans cells out across supervised worker
  processes (``jobs=1`` is the serial degenerate case; results are
  bit-identical at any worker count) with per-job timeouts, bounded
  retries with exponential backoff, worker-crash isolation, and
  graceful degradation to serial execution;
* :class:`ResultCache` — content-addressed on-disk cache keyed by
  ``(Scale, design, workload, repro.__version__)``, surviving across
  processes and CLI invocations, with hit/miss/eviction/corruption
  accounting (a damaged entry is a miss, never an error);
* :class:`SweepJournal` — append-only JSONL checkpoint next to the
  cache; an interrupted sweep resumes and replays only missing cells,
  bit-identical to an uninterrupted run;
* :class:`FaultPlan` — seed-driven injection of worker crashes,
  hangs, transient exceptions, and cache corruption (also via
  ``$REPRO_FAULTS``), keeping the tolerance machinery under test;
* :class:`SweepMetrics` — cells completed, wall time per cell, worker
  utilisation, cache hit rate, retry/timeout/crash/resume counters —
  surfaced by the CLI's ``[runtime]`` summary line.

See docs/RUNTIME.md for the cache-key scheme, the determinism
guarantee, retry semantics, and the journal format.
"""

from repro.runtime.arena import (
    ARENA_BUDGET_ENV,
    ARENA_PREFIX,
    ARENA_SCHEMA_VERSION,
    ArenaView,
    DEFAULT_ARENA_BUDGET,
    TraceArena,
    arena_budget,
    arena_key,
    attach_arena,
)
from repro.runtime.cache import CacheStats, ResultCache, default_cache_dir
from repro.runtime.cells import simulate_cell, timed_cell
from repro.runtime.executor import (
    DEFAULT_DEGRADE_AFTER,
    DEFAULT_RETRIES,
    SweepEvents,
    SweepExecutor,
    SweepResults,
    get_default_executor,
    set_default_executor,
)
from repro.runtime.faults import (
    FAULTS_ENV,
    FAULT_CORRUPT,
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_HANG,
    FAULT_KINDS,
    FaultPlan,
    InjectedFault,
    JobTimeoutError,
    SweepJobError,
    WorkerCrashError,
    apply_fault,
    corrupt_cache_entry,
)
from repro.runtime.journal import SweepJournal
from repro.runtime.metrics import (
    CellStat,
    SweepMetrics,
    print_progress,
)

__all__ = [
    "ARENA_BUDGET_ENV",
    "ARENA_PREFIX",
    "ARENA_SCHEMA_VERSION",
    "ArenaView",
    "CacheStats",
    "CellStat",
    "DEFAULT_ARENA_BUDGET",
    "DEFAULT_DEGRADE_AFTER",
    "DEFAULT_RETRIES",
    "FAULTS_ENV",
    "FAULT_CORRUPT",
    "FAULT_CRASH",
    "FAULT_ERROR",
    "FAULT_HANG",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "JobTimeoutError",
    "ResultCache",
    "SweepEvents",
    "SweepExecutor",
    "SweepJobError",
    "SweepJournal",
    "SweepMetrics",
    "SweepResults",
    "TraceArena",
    "WorkerCrashError",
    "apply_fault",
    "arena_budget",
    "arena_key",
    "attach_arena",
    "corrupt_cache_entry",
    "default_cache_dir",
    "get_default_executor",
    "print_progress",
    "set_default_executor",
    "simulate_cell",
    "timed_cell",
]
