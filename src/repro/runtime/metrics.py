"""Sweep progress accounting: per-cell wall time, cache hit rate,
worker utilisation.

Every :class:`repro.runtime.executor.SweepExecutor` owns one
:class:`SweepMetrics` and records into it across all of its sweeps, so
a CLI invocation that triggers several sweeps (``fig21`` runs one per
capacity ratio) still reports one coherent summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Where a finished cell's result came from.
SOURCE_SIMULATED = "simulated"
SOURCE_DISK = "disk-cache"
SOURCE_MEMORY = "memory"
SOURCE_JOURNAL = "journal"

#: Failure kinds recorded by :meth:`SweepMetrics.record_failure`.
FAILURE_CRASH = "crash"
FAILURE_TIMEOUT = "timeout"
FAILURE_ERROR = "error"

#: Callback fired as each cell completes: ``(stat, done, total)`` where
#: ``done``/``total`` count cells within the current sweep.
ProgressCallback = Callable[["CellStat", int, int], None]


@dataclass(frozen=True)
class CellStat:
    """One completed ``(design, workload)`` cell."""

    design: str
    workload: str
    seconds: float
    source: str  # SOURCE_SIMULATED | SOURCE_DISK | SOURCE_MEMORY


@dataclass
class SweepMetrics:
    """Accumulated accounting over an executor's lifetime."""

    jobs: int = 1
    cells: List[CellStat] = field(default_factory=list)
    wall_seconds: float = 0.0
    sweeps: int = 0
    #: Failed attempts, by kind (see docs/RUNTIME.md fault tolerance).
    crashes: int = 0
    timeouts: int = 0
    errors: int = 0
    #: Attempts re-queued after a failure (failures that were absorbed).
    retries: int = 0
    #: The executor gave up on its worker pool and finished serially.
    degraded: bool = False
    #: Shared-memory trace-arena accounting: payload bytes published
    #: (across sweeps) and cells dispatched with an arena available.
    arena_bytes: int = 0
    arena_hits: int = 0
    #: Simulated cells by replay kernel: ``"kernel[reason]"`` -> count
    #: (the :class:`~repro.sim.KernelDecision` each design resolved to).
    kernels: Dict[str, int] = field(default_factory=dict)

    def record_cell(self, stat: CellStat) -> None:
        self.cells.append(stat)

    def record_sweep(self, wall_seconds: float) -> None:
        self.sweeps += 1
        self.wall_seconds += wall_seconds

    def record_failure(self, kind: str) -> None:
        """Count one failed attempt (``crash``/``timeout``/``error``)."""
        if kind == FAILURE_CRASH:
            self.crashes += 1
        elif kind == FAILURE_TIMEOUT:
            self.timeouts += 1
        else:
            self.errors += 1

    def record_retry(self) -> None:
        self.retries += 1

    def record_arena(self, nbytes: int) -> None:
        """Count one published trace arena of ``nbytes`` payload."""
        self.arena_bytes += nbytes

    def record_arena_hit(self) -> None:
        """Count one cell simulated with a published arena attached."""
        self.arena_hits += 1

    def record_kernel(self, decision) -> None:
        """Count one simulated cell's resolved replay kernel
        (a :class:`~repro.sim.KernelDecision` or ``(kernel, reason)``)."""
        key = f"{decision[0]}[{decision[1]}]"
        self.kernels[key] = self.kernels.get(key, 0) + 1

    # -- derived -------------------------------------------------------

    @property
    def cells_total(self) -> int:
        return len(self.cells)

    def _count(self, source: str) -> int:
        return sum(1 for c in self.cells if c.source == source)

    @property
    def simulated(self) -> int:
        return self._count(SOURCE_SIMULATED)

    @property
    def disk_hits(self) -> int:
        return self._count(SOURCE_DISK)

    @property
    def memory_hits(self) -> int:
        return self._count(SOURCE_MEMORY)

    @property
    def resumed(self) -> int:
        """Cells recovered from an interrupted sweep's journal."""
        return self._count(SOURCE_JOURNAL)

    @property
    def failures(self) -> int:
        """Total failed attempts, every kind."""
        return self.crashes + self.timeouts + self.errors

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cells served without simulating, 0..1."""
        if not self.cells:
            return 0.0
        return 1.0 - self.simulated / len(self.cells)

    @property
    def busy_seconds(self) -> float:
        """Total simulation time, summed over cells (not wall time)."""
        return sum(c.seconds for c in self.cells)

    @property
    def mean_cell_seconds(self) -> float:
        simulated = [c.seconds for c in self.cells if c.source == SOURCE_SIMULATED]
        return sum(simulated) / len(simulated) if simulated else 0.0

    @property
    def worker_utilisation(self) -> float:
        """``busy / (jobs * wall)`` — how full the worker pool ran.

        1.0 means every worker simulated for the whole wall time; a
        fully cache-served sweep reports 0.0.
        """
        denom = self.jobs * self.wall_seconds
        if denom <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / denom)

    def summary(self) -> str:
        """One-line human summary (the CLI's ``[runtime]`` trailer)."""
        line = (
            f"cells={self.cells_total}"
            f" simulated={self.simulated}"
            f" disk-hits={self.disk_hits}"
            f" hit-rate={self.cache_hit_rate:.1%}"
            f" wall={self.wall_seconds:.2f}s"
            f" jobs={self.jobs}"
            f" util={self.worker_utilisation:.1%}"
            f" retries={self.retries}"
            f" timeouts={self.timeouts}"
            f" crashes={self.crashes}"
            f" resumed={self.resumed}"
        )
        if self.arena_bytes:
            line += (
                f" arena-bytes={self.arena_bytes}"
                f" arena-hits={self.arena_hits}"
            )
        if self.kernels:
            line += " kernels=" + ",".join(
                f"{key}:{count}"
                for key, count in sorted(self.kernels.items())
            )
        if self.degraded:
            line += " degraded=serial"
        return line


def print_progress(stat: CellStat, done: int, total: int) -> None:
    """Default progress printer: one stderr line per completed cell."""
    import sys

    print(
        f"[{done:>4}/{total}] {stat.design}/{stat.workload}"
        f" {stat.seconds:.2f}s ({stat.source})",
        file=sys.stderr,
    )


__all__ = [
    "CellStat",
    "FAILURE_CRASH",
    "FAILURE_ERROR",
    "FAILURE_TIMEOUT",
    "ProgressCallback",
    "SOURCE_DISK",
    "SOURCE_JOURNAL",
    "SOURCE_MEMORY",
    "SOURCE_SIMULATED",
    "SweepMetrics",
    "print_progress",
]
