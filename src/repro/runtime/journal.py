"""Checkpoint/resume journal for design sweeps.

A multi-hour sweep must survive being killed: the
:class:`~repro.runtime.executor.SweepExecutor` appends every completed
``(design, workload)`` cell — with its full
:meth:`~repro.sim.SimulationResult.to_dict` payload — to an
append-only JSONL journal, flushed and fsynced per line, so a restart
replays **only the missing cells** and merges bit-identically with an
uninterrupted run.

One journal file describes exactly one sweep: its name embeds the
SHA-256 of the sweep identity (scale fields, design list, library
version, result schema), so a changed grid can never resume from a
stale journal — it simply addresses a different file.  The first line
is a ``{"kind": "sweep", ...}`` header restating that identity; every
further line is a ``{"kind": "cell", ...}`` record.

Crash tolerance on the journal itself: a kill mid-append leaves a
truncated final line.  :meth:`SweepJournal.load` stops at the first
line that does not parse (or lacks its newline), remembers the byte
offset of the last good line, and :meth:`SweepJournal.start` truncates
the file there before appending — the partial record is dropped and
its cell re-runs.

Journals live next to the :class:`~repro.runtime.cache.ResultCache`
(the CLI's ``--resume`` points them at the cache directory) and are
deleted the moment their sweep completes: an existing journal *is* the
marker of an interrupted sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.sim import RESULT_SCHEMA_VERSION, SimulationResult

#: Journal cells keyed by ``(design, workload)``.
JournalCells = Dict[Tuple[str, str], SimulationResult]


class SweepJournal:
    """Append-only JSONL checkpoint of one sweep's completed cells."""

    def __init__(self, path: Path | str, identity: Optional[dict] = None):
        self.path = Path(path)
        #: JSON-normalised sweep identity (``None`` skips validation).
        self.identity = identity
        self._handle = None
        self._clean = 0  # byte offset of the last fully-parsed line

    @classmethod
    def for_sweep(
        cls,
        root: Path | str,
        scale: Any,
        designs: Sequence[str],
        version: Optional[str] = None,
    ) -> "SweepJournal":
        """The journal for one ``(scale, designs, version)`` sweep,
        living under ``root`` with the identity digest in its name."""
        if version is None:
            from repro import __version__ as version
        identity = json.loads(
            json.dumps(
                {
                    "scale": dataclasses.asdict(scale),
                    "designs": list(designs),
                    "version": version,
                    "result_schema": RESULT_SCHEMA_VERSION,
                }
            )
        )
        digest = hashlib.sha256(
            json.dumps(identity, sort_keys=True).encode()
        ).hexdigest()
        return cls(Path(root) / f"sweep-{digest[:16]}.jsonl", identity)

    @classmethod
    def for_cells(
        cls,
        root: Path | str,
        scale: Any,
        cells: Sequence[Tuple[str, str]],
        version: Optional[str] = None,
    ) -> "SweepJournal":
        """Like :meth:`for_sweep`, but for an explicit cell list (the
        :meth:`~repro.runtime.executor.SweepExecutor.run_cells` path
        used by :mod:`repro.serve` dispatch batches) — the identity
        names each ``(design, workload)`` pair instead of a design ×
        ``scale.benchmarks`` grid."""
        if version is None:
            from repro import __version__ as version
        identity = json.loads(
            json.dumps(
                {
                    "scale": dataclasses.asdict(scale),
                    "cells": [list(cell) for cell in cells],
                    "version": version,
                    "result_schema": RESULT_SCHEMA_VERSION,
                }
            )
        )
        digest = hashlib.sha256(
            json.dumps(identity, sort_keys=True).encode()
        ).hexdigest()
        return cls(Path(root) / f"cells-{digest[:16]}.jsonl", identity)

    # -- resume --------------------------------------------------------

    def load(self) -> JournalCells:
        """Cells recovered from a previous interrupted run.

        Tolerates a truncated tail (kill mid-append) by stopping at the
        first unparseable or newline-less line; everything before it is
        trusted.  A missing, empty, or wrong-identity journal recovers
        nothing and will be rewritten from scratch by :meth:`start`.
        """
        recovered: JournalCells = {}
        self._clean = 0
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return recovered
        offset = 0
        header_seen = False
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break
            try:
                entry = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                break
            if not isinstance(entry, dict):
                break
            if not header_seen:
                expected = dict(self.identity or {}, kind="sweep")
                if entry.get("kind") != "sweep" or (
                    self.identity is not None and entry != expected
                ):
                    return {}  # foreign or stale journal: start over
                header_seen = True
            elif entry.get("kind") == "cell":
                try:
                    result = SimulationResult.from_dict(entry["result"])
                    cell = (str(entry["design"]), str(entry["workload"]))
                except (KeyError, TypeError, ValueError):
                    break
                recovered[cell] = result
            else:
                break
            offset += len(line)
        self._clean = offset
        return recovered

    # -- writing -------------------------------------------------------

    def start(self) -> None:
        """Open for appending, dropping any partial trailing record
        (and writing the header when the journal is fresh)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a+b")
        self._handle.truncate(self._clean)
        if self._clean == 0:
            header = dict(self.identity or {}, kind="sweep")
            self._write_line(header)

    def record(
        self,
        design: str,
        workload: str,
        seconds: float,
        result: SimulationResult,
    ) -> None:
        """Checkpoint one completed cell (flushed + fsynced, so it
        survives an immediate kill)."""
        self._write_line(
            {
                "kind": "cell",
                "design": design,
                "workload": workload,
                "seconds": seconds,
                "result": result.to_dict(),
            }
        )

    def _write_line(self, entry: dict) -> None:
        if self._handle is None:
            raise RuntimeError("journal not started")
        self._handle.write(json.dumps(entry).encode() + b"\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Stop writing; the journal stays on disk for a later resume."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def discard(self) -> None:
        """The sweep completed: close and delete the journal."""
        self.close()
        self.path.unlink(missing_ok=True)

    @property
    def exists(self) -> bool:
        return self.path.exists()


__all__ = ["JournalCells", "SweepJournal"]
