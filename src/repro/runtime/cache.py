"""Content-addressed on-disk result cache for sweep cells.

Each ``(Scale, design, workload)`` simulation cell is deterministic
(seeded workload synthesis, no wall-clock dependence), so its
:class:`~repro.sim.SimulationResult` can be cached across processes and
CLI invocations.  The cache key is the SHA-256 of the canonical JSON of

    {scale fields, design label, workload name,
     repro.__version__, result schema version}

so any change to the experiment scale, the library version, or the wire
format addresses a different entry — stale results are never returned,
they are simply orphaned (and reclaimable with ``cache clear``).

Entries are one JSON file each, sharded by digest prefix
(``<root>/ab/abcdef....json``).  An optional ``max_entries`` bound
evicts least-recently-used entries (by file mtime; hits refresh it).
All traffic is counted in :class:`CacheStats`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.sim import RESULT_SCHEMA_VERSION, SimulationResult


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


@dataclass
class CacheStats:
    """Traffic accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Unreadable/truncated/incompatible entries dropped on lookup
    #: (each also counts as a miss and an eviction).
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Persistent map ``(scale, design, workload) -> SimulationResult``."""

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        version: str | None = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if version is None:
            from repro import __version__ as version
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version
        self.max_entries = max_entries
        self.stats = CacheStats()

    # -- keying --------------------------------------------------------

    def key(self, scale: Any, design: str, workload: str) -> str:
        """SHA-256 digest of the canonical cell description."""
        description = self.describe(scale, design, workload)
        canonical = json.dumps(description, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(
        self, scale: Any, design: str, workload: str
    ) -> Dict[str, Any]:
        """The cell's identity, as stored alongside each entry.

        The scale's ``benchmarks`` tuple is *excluded*: it lists the
        cell's sweep siblings, which never influence the cell's own
        result (cells share no state).  Keying on it would give the
        same simulation a different address depending on which grid —
        or which :mod:`repro.serve` dispatch batch — it happened to
        run in.
        """
        scale_fields = dataclasses.asdict(scale)
        scale_fields.pop("benchmarks", None)
        return {
            "scale": scale_fields,
            "design": design,
            "workload": workload,
            "version": self.version,
            "result_schema": RESULT_SCHEMA_VERSION,
        }

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def entry_path(self, scale: Any, design: str, workload: str) -> Path:
        """Where the cell's entry lives (whether or not it exists)."""
        return self._path(self.key(scale, design, workload))

    # -- traffic -------------------------------------------------------

    def get(
        self, scale: Any, design: str, workload: str
    ) -> Optional[SimulationResult]:
        """The cached result, or ``None`` (counted as hit/miss).

        A corrupt entry — truncated file, invalid JSON or UTF-8, wrong
        payload shape, incompatible result schema, even an unreadable
        file — **never raises**: it is evicted and counted as a miss
        (plus ``stats.corrupt``/``stats.evictions``), so one damaged
        file costs one re-simulation, not the sweep.
        """
        path = self._path(self.key(scale, design, workload))
        try:
            payload = json.loads(path.read_text())
            result = SimulationResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (
            OSError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ):
            # Corrupt or incompatible entry: drop it and report a miss.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # unremovable (permissions): still just a miss
            self.stats.corrupt += 1
            self.stats.evictions += 1
            self.stats.misses += 1
            return None
        os.utime(path)  # refresh LRU position
        self.stats.hits += 1
        return result

    def put(
        self,
        scale: Any,
        design: str,
        workload: str,
        result: SimulationResult,
    ) -> Path:
        """Persist ``result``; evicts LRU entries past ``max_entries``.

        Safe under concurrent writers: each writer stages into its own
        uniquely-named temp file and publishes with :func:`os.replace`,
        so two processes racing the same key (``--jobs`` sweeps or
        :mod:`repro.serve` dispatch batches sharing a cache dir) each
        land a complete entry — last replace wins, and readers never
        observe a partial file.  A shared ``.tmp`` name would let the
        racers interleave writes into one file and publish garbage.
        """
        digest = self.key(scale, design, workload)
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": self.describe(scale, design, workload),
            "result": result.to_dict(),
        }
        tmp = path.with_name(f".{digest}.{uuid.uuid4().hex}.tmp")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)  # atomic publish, even when racing
        finally:
            tmp.unlink(missing_ok=True)  # only if the replace never ran
        self.stats.stores += 1
        if self.max_entries is not None:
            self._evict(keep=path)
        return path

    def _evict(self, keep: Path) -> None:
        entries = sorted(
            self._entries(), key=lambda p: p.stat().st_mtime
        )
        excess = len(entries) - self.max_entries
        for path in entries:
            if excess <= 0:
                break
            if path == keep:
                continue
            path.unlink(missing_ok=True)
            self.stats.evictions += 1
            excess -= 1

    # -- maintenance ---------------------------------------------------

    def _entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob("??/*.json"))

    def info(self) -> Dict[str, Any]:
        """Inventory: root, entry count, total bytes, version keyed."""
        entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "version": self.version,
            "result_schema": RESULT_SCHEMA_VERSION,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        entries = self._entries()
        for path in entries:
            path.unlink(missing_ok=True)
        return len(entries)


__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]
