"""The unit of sweep parallelism: one ``(design, workload)`` cell.

A cell is fully described by ``(Scale, design label, workload name)``
and is deterministic: the workload is synthesised from
``scale.seed`` and the simulator has no other randomness, so running a
cell in a worker process is bit-identical to running it inline.  Design
factories are closures and do not pickle, so workers receive only the
*label* and re-resolve it against the design registry on their side of
the fork.

Telemetry rides along the same boundary: a worker cannot share the
parent's :class:`~repro.telemetry.EventBus`, so ``timed_cell`` captures
the cell's events on a private bus and ships them back as plain dicts
(:meth:`TelemetryEvent.to_dict`), which the executor rehydrates with
:func:`~repro.telemetry.event_from_dict`.  Capture is observational —
the :class:`SimulationResult` is bit-identical with it on or off.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.runtime.arena import attach_arena
from repro.runtime.faults import apply_fault
from repro.sim import SimulationResult, simulate
from repro.telemetry.auditor import InvariantAuditor
from repro.telemetry.bus import EventBus
from repro.telemetry.events import ArenaEvent
from repro.telemetry.recorder import EventLog
from repro.workloads import benchmark, build_workload
from repro.workloads.compiled import CompiledTrace


def simulate_cell(
    scale,
    design: str,
    workload: str,
    telemetry: EventBus | None = None,
    audit: bool = False,
    trace: CompiledTrace | None = None,
    kernel: str = "auto",
) -> SimulationResult:
    """Simulate one cell from scratch (config, workload, architecture
    all built fresh — nothing is shared between cells).

    ``telemetry`` receives the cell's event stream; ``audit`` attaches
    a live :class:`~repro.telemetry.InvariantAuditor` to the cell's
    architecture (on ``telemetry``, or on a private bus when none is
    given), raising :class:`~repro.telemetry.InvariantViolation` the
    moment an SRRT invariant breaks.  ``trace`` replays a precompiled
    trace (e.g. attached from a shared-memory arena) instead of
    regenerating — byte-identical either way.  ``kernel`` forces a
    replay kernel (the conformance oracle in :mod:`repro.check` pins
    each path explicitly); the default follows
    :func:`repro.sim.select_kernel`.
    """
    from repro.experiments.designs import REGISTRY

    spec = REGISTRY.get(design)
    config = scale.config()
    built = build_workload(
        config,
        benchmark(workload),
        num_copies=scale.num_copies,
        seed=scale.seed,
    )
    if trace is not None:
        built.attach_trace(trace)
    architecture = spec.factory(config)
    bus = telemetry
    if audit:
        if bus is None or not bus.enabled:
            bus = EventBus()
        InvariantAuditor(architecture).attach(bus)
    return simulate(
        architecture,
        built,
        accesses_per_core=scale.accesses_per_core,
        warmup_per_core=scale.warmup_per_core,
        telemetry=bus,
        kernel=kernel,
    )


def timed_cell(
    args: Tuple,
) -> Tuple[str, str, float, SimulationResult, List[Dict]]:
    """Worker-process entry point: ``(scale, design, workload[,
    capture, audit[, fault, hang_seconds[, arena]]])`` in, ``(design,
    workload, seconds, result, events)`` out.

    ``events`` is a list of :meth:`TelemetryEvent.to_dict` dicts (events
    themselves carry no pickle guarantee across versions; the dict form
    is the wire format) — empty unless ``capture`` is set.

    ``fault`` is an injected fault kind from a
    :class:`~repro.runtime.faults.FaultPlan`, executed *inside the
    worker* before the simulation so crashes kill the right process and
    hangs stall the right attempt.  Fault injection is observational
    with respect to the final sweep: a faulted attempt never produces a
    result, and the retried attempt carries no fault.

    ``arena`` is a :class:`~repro.runtime.arena.TraceArena` manifest;
    when present the cell attaches read-only views over the shared
    trace segment and replays instead of regenerating.  A failed attach
    (segment gone, stale manifest) silently falls back to generation —
    the records are byte-identical either way.
    """
    if len(args) == 3:
        args = (*args, False, False)
    if len(args) == 5:
        args = (*args, None, 0.0)
    if len(args) == 7:
        args = (*args, None)
    scale, design, workload, capture, audit, fault, hang_seconds, arena = args
    if fault is not None:
        apply_fault(fault, serial=False, hang_seconds=hang_seconds)
    view = None
    trace: Optional[CompiledTrace] = None
    if arena is not None:
        try:
            view = attach_arena(arena)
            trace = view.trace(workload)
        except (OSError, KeyError, ValueError):
            view = None
            trace = None
    try:
        start = time.perf_counter()
        if capture or audit:
            bus = EventBus()
            log = bus.subscribe(EventLog())
            if capture and trace is not None:
                bus.emit(
                    ArenaEvent(
                        0.0,
                        action="attach",
                        segment=str(arena["segment"]),
                        bytes=int(arena["bytes"]),
                        workloads=1,
                    )
                )
            result = simulate_cell(
                scale, design, workload, telemetry=bus, audit=audit,
                trace=trace,
            )
            if capture and trace is not None:
                bus.emit(
                    ArenaEvent(
                        0.0,
                        action="detach",
                        segment=str(arena["segment"]),
                        bytes=int(arena["bytes"]),
                        workloads=1,
                    )
                )
            events = (
                [event.to_dict() for event in log.events] if capture else []
            )
        else:
            result = simulate_cell(scale, design, workload, trace=trace)
            events = []
        return design, workload, time.perf_counter() - start, result, events
    finally:
        if view is not None:
            trace = None
            view.close()


__all__ = ["simulate_cell", "timed_cell"]
