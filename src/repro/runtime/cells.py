"""The unit of sweep parallelism: one ``(design, workload)`` cell.

A cell is fully described by ``(Scale, design label, workload name)``
and is deterministic: the workload is synthesised from
``scale.seed`` and the simulator has no other randomness, so running a
cell in a worker process is bit-identical to running it inline.  Design
factories are closures and do not pickle, so workers receive only the
*label* and re-resolve it against the design registry on their side of
the fork.
"""

from __future__ import annotations

import time
from typing import Tuple

from repro.sim import SimulationResult, simulate
from repro.workloads import benchmark, build_workload


def simulate_cell(
    scale, design: str, workload: str
) -> SimulationResult:
    """Simulate one cell from scratch (config, workload, architecture
    all built fresh — nothing is shared between cells)."""
    from repro.experiments.designs import REGISTRY

    spec = REGISTRY.get(design)
    config = scale.config()
    built = build_workload(
        config,
        benchmark(workload),
        num_copies=scale.num_copies,
        seed=scale.seed,
    )
    return simulate(
        spec.factory(config),
        built,
        accesses_per_core=scale.accesses_per_core,
        warmup_per_core=scale.warmup_per_core,
    )


def timed_cell(
    args: Tuple,
) -> Tuple[str, str, float, SimulationResult]:
    """Process-pool entry point: ``(scale, design, workload)`` in,
    ``(design, workload, seconds, result)`` out."""
    scale, design, workload = args
    start = time.perf_counter()
    result = simulate_cell(scale, design, workload)
    return design, workload, time.perf_counter() - start, result


__all__ = ["simulate_cell", "timed_cell"]
