"""Bus subscribers that accumulate events: raw log and epoch timeline.

:class:`EventLog` keeps the raw stream (optionally bounded) for the
exporters and for post-mortem windows; :class:`TimelineRecorder` folds
the stream into the existing :class:`repro.stats.Timeline` per-epoch
channels, so event-sourced runs plug straight into the timeline
reporting the figure runners already use (Figures 2c/3 style).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.stats.timeline import Timeline
from repro.telemetry.events import (
    EpochSample,
    IsaAllocEvent,
    ModeTransition,
    PageFaultEvent,
    SegmentSwap,
    TelemetryEvent,
    WritebackEvent,
)


class EventLog:
    """Collects events in arrival order.

    ``limit`` bounds memory for long runs: when set, only the most
    recent ``limit`` events are retained (the count of everything seen
    stays in ``total``).
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 (or None for unbounded)")
        self._events: Deque[TelemetryEvent] = deque(maxlen=limit)
        self.total = 0

    def __call__(self, event: TelemetryEvent) -> None:
        self._events.append(event)
        self.total += 1

    @property
    def events(self) -> List[TelemetryEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.total = 0

    def drain(self) -> List[TelemetryEvent]:
        """Return the retained events and reset the log."""
        events = list(self._events)
        self.clear()
        return events


#: The channels :class:`TimelineRecorder` folds events into.
TIMELINE_CHANNELS = (
    "swaps",          # SegmentSwap events this epoch (all reasons)
    "to_cache",       # ModeTransition -> cache mode
    "to_pom",         # ModeTransition -> PoM mode
    "isa_allocs",     # IsaAllocEvent(alloc=True)
    "isa_frees",      # IsaAllocEvent(alloc=False)
    "writebacks",     # WritebackEvent
    "page_faults",    # PageFaultEvent (major only)
    "fast_hit_rate",  # per-epoch hit rate from EpochSample deltas
)


class TimelineRecorder:
    """Folds bus events into per-epoch :class:`Timeline` samples.

    Structural events (swaps, mode flips, ISA traffic, writebacks,
    faults) are counted as they arrive; each :class:`EpochSample`
    closes the epoch, appending one timeline row at the sample's time
    with the accumulated counts plus the epoch's stacked hit rate
    (differenced from the previous cumulative sample).
    """

    def __init__(self) -> None:
        self.timeline = Timeline(TIMELINE_CHANNELS)
        self._pending = dict.fromkeys(TIMELINE_CHANNELS[:-1], 0.0)
        self._last_accesses = 0.0
        self._last_fast_hits = 0.0

    def __call__(self, event: TelemetryEvent) -> None:
        pending = self._pending
        if isinstance(event, SegmentSwap):
            pending["swaps"] += 1
        elif isinstance(event, ModeTransition):
            key = "to_cache" if event.mode == "cache" else "to_pom"
            pending[key] += 1
        elif isinstance(event, IsaAllocEvent):
            pending["isa_allocs" if event.alloc else "isa_frees"] += 1
        elif isinstance(event, WritebackEvent):
            pending["writebacks"] += 1
        elif isinstance(event, PageFaultEvent):
            if event.major:
                pending["page_faults"] += 1
        elif isinstance(event, EpochSample):
            self._close_epoch(event)

    def _close_epoch(self, sample: EpochSample) -> None:
        accesses = sample.accesses - self._last_accesses
        fast_hits = sample.fast_hits - self._last_fast_hits
        self._last_accesses = sample.accesses
        self._last_fast_hits = sample.fast_hits
        hit_rate = fast_hits / accesses if accesses > 0 else 0.0
        self.timeline.sample(
            sample.time_ns, fast_hit_rate=hit_rate, **self._pending
        )
        self._pending = dict.fromkeys(self._pending, 0.0)

    @property
    def epochs(self) -> int:
        return len(self.timeline)


__all__ = ["EventLog", "TIMELINE_CHANNELS", "TimelineRecorder"]
