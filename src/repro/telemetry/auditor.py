"""Live SRRT consistency auditing over the event stream.

The :class:`InvariantAuditor` subscribes to an :class:`~repro
.telemetry.bus.EventBus` alongside the recorders and, after every
structural event, re-validates the touched segment group against the
design's invariants:

* the remap vector is a permutation of the group's slots and
  ``slot_of`` inverts ``seg_at`` (the SRRT tag bits stay coherent);
* a PoM-mode group holds no cached segment, and a set dirty bit means
  exactly one cached segment is pending writeback;
* ABV/mode-bit coherence — basic Chameleon may only run a group in
  cache mode while the *stacked* segment is ISA-free (Figure 8's
  gating), Chameleon-Opt keeps a group in cache mode iff *any* segment
  is free with a free segment as the nominal stacked resident
  (Section V-C's invariant).

A violation raises :class:`InvariantViolation` immediately — failing
fast at the offending operation — with the last ``window`` events
formatted into the message so the divergence is debuggable without
re-running.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    IsaAllocEvent,
    ModeTransition,
    SegmentSwap,
    TelemetryEvent,
    WritebackEvent,
)

#: Events that mutate (or witness) per-group SRRT state.
_STRUCTURAL = (SegmentSwap, ModeTransition, IsaAllocEvent, WritebackEvent)


class InvariantViolation(AssertionError):
    """An SRRT consistency check failed.

    Constructed with a single pre-formatted message so the exception
    survives pickling across :class:`~repro.runtime.SweepExecutor`
    worker-process boundaries.
    """


class InvariantAuditor:
    """Checks one architecture's SRRT state after every structural
    event; keeps a bounded window of recent events for diagnosis."""

    def __init__(self, architecture, window: int = 16) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.architecture = architecture
        self.window: Deque[TelemetryEvent] = deque(maxlen=window)
        self.checked = 0
        self.violations = 0

    def attach(self, bus: EventBus) -> "InvariantAuditor":
        """Subscribe to ``bus``; returns self for chaining."""
        bus.subscribe(self)
        return self

    # -- subscriber ----------------------------------------------------

    def __call__(self, event: TelemetryEvent) -> None:
        self.window.append(event)
        if isinstance(event, _STRUCTURAL):
            group = getattr(event, "group", None)
            if group is not None:
                # ABV/mode coherence only holds at *settled* points:
                # swap and writeback events fire mid-transition (ABV
                # already updated, mode bit not yet flipped), while
                # mode transitions and ISA events are emitted once the
                # handler's state is final.
                self.check_group(
                    group,
                    event,
                    check_abv=isinstance(
                        event, (ModeTransition, IsaAllocEvent)
                    ),
                )

    # -- checks --------------------------------------------------------

    def check_group(
        self,
        group: int,
        event: Optional[TelemetryEvent] = None,
        check_abv: bool = True,
    ) -> None:
        """Validate every invariant of ``group``'s SRRT entry."""
        arch = self.architecture
        group_state = getattr(arch, "group_state", None)
        if group_state is None:
            return  # design without SRRT machinery: nothing to audit
        state = group_state(group)
        self.checked += 1

        size = state.size
        if sorted(state.seg_at) != list(range(size)):
            self._fail(group, event, f"seg_at={state.seg_at} is not a permutation")
        for slot, local in enumerate(state.seg_at):
            if state.slot_of[local] != slot:
                self._fail(
                    group,
                    event,
                    f"slot_of={state.slot_of} does not invert seg_at={state.seg_at}",
                )

        mode = getattr(state.mode, "value", state.mode)
        if mode == "pom" and state.cached is not None:
            self._fail(
                group, event, f"PoM-mode group caches local {state.cached}"
            )
        if state.cached is not None and not 0 <= state.cached < size:
            self._fail(group, event, f"cached local {state.cached} out of range")
        if state.dirty and state.cached is None:
            self._fail(
                group, event, "dirty bit set with no cached segment pending writeback"
            )

        if check_abv:
            self._check_mode_abv(group, state, mode, event)

    def _check_mode_abv(self, group, state, mode, event) -> None:
        """ABV/mode-bit coherence, per design (lazy imports keep this
        module free of repro.core at import time)."""
        from repro.core.chameleon import ChameleonArchitecture
        from repro.core.chameleon_opt import ChameleonOptArchitecture

        arch = self.architecture
        if type(arch) is ChameleonOptArchitecture:
            # Section V-C: cache mode iff any segment free, with a free
            # segment as the nominal stacked resident.
            if mode == "cache":
                if not state.any_free:
                    self._fail(
                        group, event, "cache mode with every segment allocated"
                    )
                resident = state.resident_of_fast()
                if state.abv[resident]:
                    self._fail(
                        group,
                        event,
                        f"cache mode with allocated local {resident} "
                        f"resident in the stacked slot",
                    )
            # (No PoM-direction check: ISA-Free legitimately updates the
            # ABV, swaps, and only then flips the mode bit, so a group
            # is transiently PoM-with-free-space mid-transition.)
        elif isinstance(arch, ChameleonArchitecture) and not isinstance(
            arch, ChameleonOptArchitecture
        ):
            # Figure 8: basic Chameleon gates cache mode on the stacked
            # segment being ISA-free.
            if mode == "cache" and state.abv[0]:
                self._fail(
                    group,
                    event,
                    "cache mode while the stacked segment is allocated",
                )
            if mode == "pom" and not state.abv[0]:
                self._fail(
                    group,
                    event,
                    "PoM mode while the stacked segment is free",
                )

    def audit_all(self) -> int:
        """End-of-run sweep over every touched group; returns the
        number of groups checked."""
        groups = getattr(self.architecture, "_groups", None)
        if not groups:
            return 0
        for group in list(groups):
            self.check_group(group, event=None)
        return len(groups)

    # -- failure -------------------------------------------------------

    def _fail(self, group, event, problem: str) -> None:
        self.violations += 1
        lines = [
            f"SRRT invariant violated in group {group} of "
            f"{self.architecture.name!r}: {problem}",
        ]
        state = self.architecture.group_state(group)
        lines.append(
            f"  group state: mode={getattr(state.mode, 'value', state.mode)} "
            f"seg_at={state.seg_at} slot_of={state.slot_of} "
            f"abv={state.abv} cached={state.cached} dirty={state.dirty}"
        )
        if event is not None:
            lines.append(f"  offending event: {event!r}")
        if self.window:
            lines.append(f"  last {len(self.window)} event(s):")
            lines.extend(f"    {e!r}" for e in self.window)
        raise InvariantViolation("\n".join(lines))


__all__ = ["InvariantAuditor", "InvariantViolation"]
