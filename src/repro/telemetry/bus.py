"""The event bus: fan-out when enabled, nothing when not.

Instrumentation must cost nothing on the default path — the
acceptance bar is < 5% wall-time overhead with telemetry disabled, and
the emit sites sit on the simulator's hot loops.  Emitters therefore
follow one pattern::

    bus = self.telemetry
    if bus.enabled:
        bus.emit(SegmentSwap(...))

With the :data:`NULL_BUS` default, that is one attribute load and one
false branch — the event object is never even constructed.  Wiring a
real :class:`EventBus` flips ``enabled`` and fans every event out to
the subscribed handlers synchronously, in emission order.
"""

from __future__ import annotations

from typing import Callable, List

from repro.telemetry.events import TelemetryEvent

#: A subscriber: any callable taking one event.
EventHandler = Callable[[TelemetryEvent], None]


class NullBus:
    """The disabled fast path: drops everything, accepts no subscribers."""

    enabled = False

    __slots__ = ()

    def emit(self, event: TelemetryEvent) -> None:  # pragma: no cover
        """Drop ``event`` (emit sites gate on ``enabled`` first)."""

    def subscribe(self, handler: EventHandler) -> EventHandler:
        raise RuntimeError(
            "cannot subscribe to the null bus; create an EventBus and "
            "attach it (simulate(..., telemetry=bus) or "
            "architecture.telemetry = bus)"
        )

    def __bool__(self) -> bool:
        return False


#: Shared disabled bus — the default ``telemetry`` of every
#: architecture, dispatcher and pager.  Stateless, hence shareable.
NULL_BUS = NullBus()


class EventBus:
    """Synchronous fan-out bus with typed events."""

    enabled = True

    def __init__(self) -> None:
        self._handlers: List[EventHandler] = []
        self.emitted = 0

    def subscribe(self, handler: EventHandler) -> EventHandler:
        """Attach ``handler``; returns it (decorator-friendly)."""
        self._handlers.append(handler)
        return handler

    def unsubscribe(self, handler: EventHandler) -> None:
        self._handlers.remove(handler)

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscribe order.

        Handlers may raise (the invariant auditor does, on purpose);
        the exception propagates to the emit site so a violated
        invariant stops the run at the offending operation.
        """
        self.emitted += 1
        for handler in self._handlers:
            handler(event)

    @property
    def subscriber_count(self) -> int:
        return len(self._handlers)

    def __bool__(self) -> bool:
        return True


__all__ = ["EventBus", "EventHandler", "NULL_BUS", "NullBus"]
