"""Trace exporters: JSONL event log and Chrome-trace/Perfetto JSON.

Both exporters accept either a flat event sequence (one run) or a
mapping of *track label* -> event sequence (a merged sweep, one track
per ``design/workload`` cell).  The Chrome export follows the Trace
Event Format — instant events for the structural stream, counter
tracks for the epoch samples — so a file written here opens directly
in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.telemetry.events import EpochSample, TelemetryEvent

#: Exporter input: one run's events, or label -> events for many runs.
EventStream = Union[
    Sequence[TelemetryEvent], Mapping[str, Sequence[TelemetryEvent]]
]

#: Thread ids within each Chrome-trace process, one lane per event
#: kind so the structural streams render as parallel tracks.
_KIND_TIDS = {
    "segment_swap": 1,
    "mode_transition": 2,
    "isa_alloc": 3,
    "writeback": 4,
    "page_fault": 5,
    "epoch_sample": 6,
    "job_retry": 7,
    "arena": 8,
}


def _tracks(events: EventStream) -> Dict[str, Sequence[TelemetryEvent]]:
    if isinstance(events, Mapping):
        return dict(events)
    return {"run": events}


def write_jsonl(events: EventStream, path: str | Path) -> int:
    """Write one JSON object per event; returns the event count.

    Multi-track input adds a ``"track"`` field to every line so a
    merged sweep log remains self-describing.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        tracks = _tracks(events)
        tag_tracks = len(tracks) > 1
        for label, stream in tracks.items():
            for event in stream:
                data = event.to_dict()
                if tag_tracks:
                    data["track"] = label
                handle.write(json.dumps(data, sort_keys=True))
                handle.write("\n")
                count += 1
    return count


def chrome_trace_events(
    events: Sequence[TelemetryEvent], pid: int, label: str
) -> List[dict]:
    """One track's Trace Event Format records (metadata included)."""
    records: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    named_tids = set()
    for event in events:
        tid = _KIND_TIDS.get(event.kind, 0)
        if tid not in named_tids:
            named_tids.add(tid)
            records.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": event.kind},
                }
            )
        ts = event.time_ns / 1000.0  # Trace Event ts is microseconds
        args = event.to_dict()
        del args["kind"], args["time_ns"]
        if isinstance(event, EpochSample):
            # Counter track: cumulative engine counters over time.
            records.append(
                {
                    "name": "engine counters",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "accesses": event.accesses,
                        "fast_hits": event.fast_hits,
                        "swaps": event.swaps,
                        "faults": event.faults,
                    },
                }
            )
        else:
            records.append(
                {
                    "name": event.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return records


def write_chrome_trace(events: EventStream, path: str | Path) -> int:
    """Write a ``chrome://tracing``/Perfetto JSON file; returns the
    number of (non-metadata) events exported."""
    path = Path(path)
    records: List[dict] = []
    count = 0
    for pid, (label, stream) in enumerate(_tracks(events).items(), start=1):
        records.extend(chrome_trace_events(stream, pid=pid, label=label))
        count += len(stream)
    payload = {"traceEvents": records, "displayTimeUnit": "ns"}
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return count


def write_trace(events: EventStream, path: str | Path) -> int:
    """Dispatch on suffix: ``.jsonl`` -> JSONL, anything else ->
    Chrome trace JSON."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(events, path)
    return write_chrome_trace(events, path)


__all__ = [
    "EventStream",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
