"""Typed telemetry events — the vocabulary of the event bus.

Every headline claim of the paper is a claim about *event sequences*:
mode-bit flips between PoM and cache mode (Figure 16), swap traffic
under the competing counter (Figure 17), the ISA-Alloc/ISA-Free stream
driving the ABV (Figures 8-14).  Each event class below captures one
such occurrence with enough context to audit SRRT consistency after
the fact (or live, see :mod:`repro.telemetry.auditor`) and to export
the run as a Chrome/Perfetto trace.

Events are frozen dataclasses with a stable ``kind`` tag; the
``to_dict``/:func:`event_from_dict` round trip is the wire format used
to ship events out of :class:`~repro.runtime.SweepExecutor` worker
processes and into the JSONL exporter.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Type

#: ``SegmentSwap.reason`` values.
SWAP_REASONS = (
    "counter",         # PoM competing counter crossed the threshold
    "restore",         # ISA-Free restoring the stacked home (Figure 11)
    "proactive",       # Chameleon-Opt free-space remap (Figures 12-14)
    "dirty_eviction",  # cache-mode dirty evict+fill pair (Section VI-B)
)


@dataclass(frozen=True)
class TelemetryEvent:
    """Base of every bus event; ``time_ns`` is simulated time."""

    kind: ClassVar[str] = "event"

    time_ns: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe plain dict, ``kind`` tag included."""
        data = asdict(self)
        data["kind"] = self.kind
        return data


@dataclass(frozen=True)
class SegmentSwap(TelemetryEvent):
    """One SRRT remap: the residents of two slots exchanged.

    ``moved_local`` is the off-chip-resident local id pulled toward the
    stacked slot; ``displaced_local`` the previous stacked resident
    pushed out.  ``reason`` is one of :data:`SWAP_REASONS`.
    """

    kind: ClassVar[str] = "segment_swap"

    group: int
    moved_local: int
    displaced_local: int
    reason: str = "counter"


@dataclass(frozen=True)
class ModeTransition(TelemetryEvent):
    """A segment group flipped its SRRT mode bit."""

    kind: ClassVar[str] = "mode_transition"

    group: int
    mode: str  # "pom" | "cache"


@dataclass(frozen=True)
class IsaAllocEvent(TelemetryEvent):
    """One ISA-Alloc (``alloc=True``) or ISA-Free (``alloc=False``).

    Architecture-level emitters fill ``group``/``local``; the
    page-hook dispatcher (which has no group geometry) leaves them
    ``None``.
    """

    kind: ClassVar[str] = "isa_alloc"

    segment: int
    alloc: bool
    group: Optional[int] = None
    local: Optional[int] = None


@dataclass(frozen=True)
class WritebackEvent(TelemetryEvent):
    """A dirty cached segment was written back to its home slot."""

    kind: ClassVar[str] = "writeback"

    group: int
    local: int


@dataclass(frozen=True)
class PageFaultEvent(TelemetryEvent):
    """The OS pager faulted on a non-resident page.

    ``major`` distinguishes SSD swap-ins (Table I latency) from cheap
    first-touch minor faults.
    """

    kind: ClassVar[str] = "page_fault"

    page: int
    major: bool


@dataclass(frozen=True)
class EpochSample(TelemetryEvent):
    """Periodic counter snapshot from the simulation engine.

    Values are *cumulative* over the measured window; consumers that
    want per-epoch rates (e.g. the timeline recorder) difference
    consecutive samples.
    """

    kind: ClassVar[str] = "epoch_sample"

    epoch: int
    accesses: float
    fast_hits: float
    swaps: float
    #: Cumulative page-fault count — an exact integer tally, carried as
    #: ``int`` end-to-end (the engine no longer widens it to float).
    faults: int


@dataclass(frozen=True)
class JobRetryEvent(TelemetryEvent):
    """The sweep executor re-queued a failed cell attempt.

    Emitted on the *parent* bus (host-side, so ``time_ns`` is always
    ``0.0`` — retries have no simulated timestamp): ``attempt`` is the
    attempt about to run, ``reason`` the failure kind of the one that
    died (``crash`` | ``timeout`` | ``error``).  See docs/RUNTIME.md.
    """

    kind: ClassVar[str] = "job_retry"

    design: str
    workload: str
    attempt: int
    reason: str


#: ``ArenaEvent.action`` values.
ARENA_ACTIONS = (
    "publish",   # parent exported the compiled traces to shared memory
    "attach",    # a cell attached read-only views over the segment
    "detach",    # the cell released its attachment
    "unlink",    # parent destroyed the segment at end of sweep
)


@dataclass(frozen=True)
class ArenaEvent(TelemetryEvent):
    """Shared-memory trace-arena lifecycle (host-side, ``time_ns`` 0).

    The parent emits ``publish``/``unlink`` around a sweep; each
    simulated cell that replays from the arena emits ``attach`` and
    ``detach`` into its captured stream.  ``action`` is one of
    :data:`ARENA_ACTIONS`; ``bytes`` is the segment payload size and
    ``workloads`` the number of compiled traces it holds (1 for
    cell-side events).
    """

    kind: ClassVar[str] = "arena"

    action: str
    segment: str
    bytes: int = 0
    workloads: int = 0


#: ``ServeEvent.action`` values (the request lifecycle of one job in
#: :mod:`repro.serve`, in the order a worked request passes them).
SERVE_ACTIONS = (
    "admit",        # request accepted into the pending queue
    "coalesce",     # identical in-flight request joined an existing job
    "cache_hit",    # answered from the ResultCache, no worker touched
    "reject",       # admission control bounced it (queue full)
    "dispatch",     # a batch of queued cells went to the executor
    "complete",     # job finished (result or structured error)
    "drain",        # shutdown checkpointed the unserved queue
    "resume",       # a restarted server re-queued checkpointed jobs
)


@dataclass(frozen=True)
class ServeEvent(TelemetryEvent):
    """One :mod:`repro.serve` request-lifecycle step (host-side, so
    ``time_ns`` is always ``0.0`` — serving has no simulated clock).

    ``action`` is one of :data:`SERVE_ACTIONS`; ``job`` the request
    digest, ``client`` the fair-share tenant id, ``queue_depth`` the
    pending-queue depth *after* the step, and ``seconds`` the
    admit-to-complete wall latency (``complete`` only).
    """

    kind: ClassVar[str] = "serve"

    action: str
    job: str = ""
    client: str = ""
    queue_depth: int = 0
    seconds: float = 0.0


#: ``kind`` tag -> event class, for deserialisation.
EVENT_TYPES: Dict[str, Type[TelemetryEvent]] = {
    cls.kind: cls
    for cls in (
        SegmentSwap,
        ModeTransition,
        IsaAllocEvent,
        WritebackEvent,
        PageFaultEvent,
        EpochSample,
        JobRetryEvent,
        ArenaEvent,
        ServeEvent,
    )
}


def event_from_dict(data: Mapping[str, Any]) -> TelemetryEvent:
    """Inverse of :meth:`TelemetryEvent.to_dict`."""
    try:
        cls = EVENT_TYPES[data["kind"]]
    except KeyError:
        raise ValueError(f"unknown event kind {data.get('kind')!r}") from None
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in names})


__all__ = [
    "ARENA_ACTIONS",
    "ArenaEvent",
    "EVENT_TYPES",
    "EpochSample",
    "IsaAllocEvent",
    "JobRetryEvent",
    "ModeTransition",
    "PageFaultEvent",
    "SERVE_ACTIONS",
    "SegmentSwap",
    "ServeEvent",
    "SWAP_REASONS",
    "TelemetryEvent",
    "WritebackEvent",
    "event_from_dict",
]
