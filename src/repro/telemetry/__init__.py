"""Event-sourced instrumentation for the simulator.

The paper's figures are claims about event *sequences* — mode-bit
flips (Figure 16), swap traffic (Figure 17), the ISA-Alloc/ISA-Free
stream (Figures 8-14) — but scalar end-of-run counters cannot show
*which* transitions diverge when a reproduced shape is off.  This
package adds the observability layer:

* :class:`EventBus` / :data:`NULL_BUS` — a structured event bus with a
  zero-overhead disabled fast path (the default everywhere);
* typed events (:mod:`~repro.telemetry.events`): ``SegmentSwap``,
  ``ModeTransition``, ``IsaAllocEvent``, ``WritebackEvent``,
  ``PageFaultEvent``, ``EpochSample``;
* :class:`EventLog` and :class:`TimelineRecorder` — raw capture and
  per-epoch folding into :class:`repro.stats.Timeline`;
* exporters — JSONL and Chrome-trace/Perfetto JSON
  (``chrome://tracing`` / ui.perfetto.dev);
* :class:`InvariantAuditor` — live SRRT consistency checking that
  fails fast with the offending event window.

Wire it through :func:`repro.sim.simulate` (``telemetry=bus``), the
:class:`repro.runtime.SweepExecutor` (``telemetry=``/``audit=``), or
the CLI (``--trace``/``--trace-out``/``--audit``).  See
docs/TELEMETRY.md.
"""

from repro.telemetry.auditor import InvariantAuditor, InvariantViolation
from repro.telemetry.bus import NULL_BUS, EventBus, EventHandler, NullBus
from repro.telemetry.events import (
    ARENA_ACTIONS,
    ArenaEvent,
    EVENT_TYPES,
    EpochSample,
    IsaAllocEvent,
    JobRetryEvent,
    ModeTransition,
    PageFaultEvent,
    SERVE_ACTIONS,
    SegmentSwap,
    ServeEvent,
    TelemetryEvent,
    WritebackEvent,
    event_from_dict,
)
from repro.telemetry.exporters import (
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.telemetry.recorder import (
    TIMELINE_CHANNELS,
    EventLog,
    TimelineRecorder,
)

__all__ = [
    "ARENA_ACTIONS",
    "ArenaEvent",
    "EVENT_TYPES",
    "EpochSample",
    "EventBus",
    "EventHandler",
    "EventLog",
    "InvariantAuditor",
    "InvariantViolation",
    "IsaAllocEvent",
    "JobRetryEvent",
    "ModeTransition",
    "NULL_BUS",
    "NullBus",
    "PageFaultEvent",
    "SERVE_ACTIONS",
    "SegmentSwap",
    "ServeEvent",
    "TIMELINE_CHANNELS",
    "TelemetryEvent",
    "TimelineRecorder",
    "WritebackEvent",
    "chrome_trace_events",
    "event_from_dict",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
