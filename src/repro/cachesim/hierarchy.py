"""Three-level cache hierarchy (private L1/L2, shared L3).

Filters a raw address stream down to the LLC-miss stream that the
heterogeneous memory system services, and measures MPKI (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.config import SystemConfig
from repro.cachesim.cache import Cache, AccessOutcome
from repro.stats import CounterSet
from repro.trace.records import AccessRecord


@dataclass
class HierarchyResult:
    """Summary of a stream filtered through the hierarchy."""

    instructions: int = 0
    accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    llc_misses: int = 0
    llc_writebacks: int = 0

    @property
    def llc_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return self.llc_misses / self.instructions * 1000.0

    @property
    def llc_miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.llc_misses / self.accesses


class CacheHierarchy:
    """Private L1+L2 per core, shared L3; inclusive-enough for tracing.

    The model is functional (no timing): its job is to decide which
    accesses reach memory.  ``filter_stream`` yields the LLC-miss
    records (demand misses plus dirty LLC writebacks as writes) with
    ``icount_gap`` re-aggregated so MPKI is preserved.
    """

    def __init__(
        self,
        config: SystemConfig,
        num_cores: int | None = None,
        counters: CounterSet | None = None,
    ) -> None:
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        cores = num_cores if num_cores is not None else config.num_cores
        if cores < 1:
            raise ValueError("need at least one core")
        self.l1: List[Cache] = [
            Cache(config.l1, f"l1.{core}", counters=self.counters)
            for core in range(cores)
        ]
        self.l2: List[Cache] = [
            Cache(config.l2, f"l2.{core}", counters=self.counters)
            for core in range(cores)
        ]
        self.l3 = Cache(config.l3, "l3", counters=self.counters)

    def access(
        self, core: int, address: int, is_write: bool = False
    ) -> tuple[bool, List[AccessRecord]]:
        """One access from ``core``.

        Returns ``(llc_miss, memory_records)`` where ``memory_records``
        are the accesses that reach DRAM (the demand miss and any dirty
        LLC writeback).
        """
        memory: List[AccessRecord] = []
        outcome, _ = self.l1[core].access(address, is_write)
        if outcome is AccessOutcome.HIT:
            return False, memory
        outcome, _ = self.l2[core].access(address, is_write)
        if outcome is AccessOutcome.HIT:
            return False, memory
        outcome, eviction = self.l3.access(address, is_write)
        if outcome is AccessOutcome.HIT:
            return False, memory
        memory.append(AccessRecord(address, is_write=False, icount_gap=0))
        if eviction is not None and eviction.dirty:
            memory.append(
                AccessRecord(eviction.address, is_write=True, icount_gap=0)
            )
        return True, memory

    def filter_stream(
        self, core: int, records: Iterable[AccessRecord]
    ) -> Iterator[AccessRecord]:
        """Yield only the records that miss the whole hierarchy.

        The instruction gaps of hit records are folded into the next
        miss so the downstream MPKI is exact.
        """
        pending_gap = 0
        for record in records:
            pending_gap += record.icount_gap
            miss, memory = self.access(core, record.address, record.is_write)
            if not miss:
                continue
            for index, mem_record in enumerate(memory):
                gap = pending_gap if index == 0 else 0
                yield AccessRecord(mem_record.address, mem_record.is_write, gap)
            pending_gap = 0

    def measure(
        self, core: int, records: Iterable[AccessRecord]
    ) -> HierarchyResult:
        """Run a stream through the hierarchy and report Table II stats."""
        result = HierarchyResult()
        before = self.counters.snapshot()
        for record in records:
            result.instructions += record.icount_gap
            result.accesses += 1
            self.access(core, record.address, record.is_write)
        delta = self.counters.diff(before)
        result.l1_misses = int(delta.get(f"l1.{core}.misses", 0))
        result.l2_misses = int(delta.get(f"l2.{core}.misses", 0))
        result.llc_misses = int(delta.get("l3.misses", 0))
        result.llc_writebacks = int(delta.get("l3.writebacks", 0))
        return result
