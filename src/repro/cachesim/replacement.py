"""Replacement policies for the set-associative cache model."""

from __future__ import annotations

import random
from typing import List, Protocol


class ReplacementPolicy(Protocol):
    """Per-set victim selection and recency bookkeeping."""

    def on_access(self, set_state: List[int], way: int) -> None:
        """Record a hit/fill touching ``way``."""

    def victim(self, set_state: List[int]) -> int:
        """Choose the way to evict from a full set."""


class LruPolicy:
    """Least-recently-used: ``set_state`` holds ways in recency order,
    most recent last."""

    def on_access(self, set_state: List[int], way: int) -> None:
        try:
            set_state.remove(way)
        except ValueError:
            pass
        set_state.append(way)

    def victim(self, set_state: List[int]) -> int:
        if not set_state:
            raise ValueError("victim() on an empty set")
        return set_state[0]


class RandomPolicy:
    """Uniform random victim; deterministic under a seeded RNG."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_access(self, set_state: List[int], way: int) -> None:
        if way not in set_state:
            set_state.append(way)

    def victim(self, set_state: List[int]) -> int:
        if not set_state:
            raise ValueError("victim() on an empty set")
        return self._rng.choice(set_state)
