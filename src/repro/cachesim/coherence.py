"""MESI coherence across the private caches (Table I: the shared L3 is
kept coherent with a MESI protocol).

The model is functional, directory-based, and sits on top of the plain
:class:`~repro.cachesim.cache.Cache` storage:

* each 64B line present in any private (L1/L2) cache has a directory
  entry recording its global state (M/E/S) and the sharer set;
* a read miss joins the sharer set — downgrading a remote Modified
  owner (forcing its writeback) if necessary — and loads Exclusive when
  it is the only sharer;
* a write invalidates every other sharer's private copies and takes the
  line to Modified;
* private-cache evictions silently leave the sharer set, and the last
  leaver removes the entry.

The controller counts the coherence traffic (invalidations, downgrades,
ownership writebacks) that a multiprogrammed rate-mode workload mostly
avoids (disjoint footprints) but shared-memory workloads pay.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.config import SystemConfig
from repro.cachesim.cache import AccessOutcome, Cache
from repro.stats import CounterSet
from repro.trace.records import AccessRecord


class MesiState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class DirectoryEntry:
    """Global coherence state of one line across the private caches."""

    state: MesiState
    sharers: Set[int] = field(default_factory=set)
    owner: int | None = None  # valid when state is M or E

    def validate(self) -> None:
        if self.state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
            if self.owner is None or self.sharers != {self.owner}:
                raise AssertionError(
                    f"{self.state.value} line must have exactly its owner "
                    f"as sharer (owner={self.owner}, sharers={self.sharers})"
                )
        elif self.state is MesiState.SHARED:
            if not self.sharers:
                raise AssertionError("shared line with no sharers")
            if self.owner is not None:
                raise AssertionError("shared line cannot have an owner")


class CoherentHierarchy:
    """Private L1+L2 per core with a MESI directory and a shared L3."""

    LINE_BYTES = 64

    def __init__(
        self,
        config: SystemConfig,
        num_cores: int | None = None,
        counters: CounterSet | None = None,
    ) -> None:
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        cores = num_cores if num_cores is not None else config.num_cores
        if cores < 1:
            raise ValueError("need at least one core")
        self.num_cores = cores
        self.l1: List[Cache] = [
            Cache(config.l1, f"l1.{core}", counters=self.counters)
            for core in range(cores)
        ]
        self.l2: List[Cache] = [
            Cache(config.l2, f"l2.{core}", counters=self.counters)
            for core in range(cores)
        ]
        self.l3 = Cache(config.l3, "l3", counters=self.counters)
        self._directory: Dict[int, DirectoryEntry] = {}

    # ------------------------------------------------------------------

    def _line(self, address: int) -> int:
        return address // self.LINE_BYTES

    def _drop_private(self, core: int, address: int) -> None:
        self.l1[core].invalidate(address)
        self.l2[core].invalidate(address)

    def _leave(self, line: int, core: int) -> None:
        """Remove ``core`` from a line's sharer set (private eviction)."""
        entry = self._directory.get(line)
        if entry is None:
            return
        entry.sharers.discard(core)
        if not entry.sharers:
            del self._directory[line]
            return
        if entry.owner == core:
            # The owner evicted: remaining sharers hold it Shared.
            entry.owner = None
            entry.state = MesiState.SHARED

    def _note_private_evictions(self, core: int, evictions) -> None:
        for eviction in evictions:
            if eviction is not None:
                self._leave(self._line(eviction.address), core)

    # ------------------------------------------------------------------

    def access(
        self, core: int, address: int, is_write: bool = False
    ) -> tuple[bool, List[AccessRecord]]:
        """One coherent access; returns (llc_miss, memory_records)."""
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
        line = self._line(address)
        memory: List[AccessRecord] = []
        entry = self._directory.get(line)

        if is_write:
            self._handle_write_coherence(core, line, address, entry)
        else:
            self._handle_read_coherence(core, line, address, entry)

        # Storage path: private caches then the shared L3.
        outcome1, ev1 = self.l1[core].access(address, is_write)
        if outcome1 is AccessOutcome.MISS:
            outcome2, ev2 = self.l2[core].access(address, is_write)
            self._note_private_evictions(core, (ev1, ev2))
            if outcome2 is AccessOutcome.MISS:
                outcome3, ev3 = self.l3.access(address, is_write)
                if outcome3 is AccessOutcome.MISS:
                    memory.append(
                        AccessRecord(address, is_write=False, icount_gap=0)
                    )
                    if ev3 is not None and ev3.dirty:
                        memory.append(
                            AccessRecord(
                                ev3.address, is_write=True, icount_gap=0
                            )
                        )
                    return True, memory
        else:
            self._note_private_evictions(core, (ev1,))
        return False, memory

    # ------------------------------------------------------------------

    def _handle_read_coherence(
        self, core: int, line: int, address: int, entry: DirectoryEntry | None
    ) -> None:
        if entry is None:
            self._directory[line] = DirectoryEntry(
                state=MesiState.EXCLUSIVE, sharers={core}, owner=core
            )
            self.counters.add("mesi.loads_exclusive")
            return
        if core in entry.sharers:
            return  # already coherent for reads
        if entry.state is MesiState.MODIFIED:
            # Downgrade the remote owner: it writes back and keeps S.
            assert entry.owner is not None
            self.counters.add("mesi.downgrades")
            self.counters.add("mesi.ownership_writebacks")
        entry.state = MesiState.SHARED
        entry.owner = None
        entry.sharers.add(core)
        self.counters.add("mesi.loads_shared")

    def _handle_write_coherence(
        self, core: int, line: int, address: int, entry: DirectoryEntry | None
    ) -> None:
        if entry is None:
            self._directory[line] = DirectoryEntry(
                state=MesiState.MODIFIED, sharers={core}, owner=core
            )
            return
        if entry.state is MesiState.MODIFIED and entry.owner == core:
            return  # silent write hit in M
        # Invalidate every other sharer's private copies.
        invalidated = 0
        for sharer in list(entry.sharers):
            if sharer != core:
                self._drop_private(sharer, address)
                entry.sharers.discard(sharer)
                invalidated += 1
        if invalidated:
            self.counters.add("mesi.invalidations", invalidated)
            self.counters.add("mesi.upgrades")
        if entry.state is MesiState.MODIFIED and entry.owner != core:
            self.counters.add("mesi.ownership_writebacks")
        entry.state = MesiState.MODIFIED
        entry.sharers = {core}
        entry.owner = core

    # ------------------------------------------------------------------

    def state_of(self, address: int) -> MesiState:
        entry = self._directory.get(self._line(address))
        return entry.state if entry is not None else MesiState.INVALID

    def sharers_of(self, address: int) -> Set[int]:
        entry = self._directory.get(self._line(address))
        return set(entry.sharers) if entry is not None else set()

    def validate(self) -> None:
        """Directory-wide invariant check (used by property tests)."""
        for entry in self._directory.values():
            entry.validate()
