"""A single set-associative, write-back, write-allocate cache."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CacheLevelConfig
from repro.cachesim.replacement import LruPolicy, ReplacementPolicy
from repro.stats import CounterSet


class AccessOutcome(enum.Enum):
    HIT = "hit"
    MISS = "miss"


@dataclass
class _Line:
    tag: int
    dirty: bool = False


@dataclass(frozen=True)
class Eviction:
    """A victim line pushed out by a fill."""

    address: int
    dirty: bool


class Cache:
    """Functional set-associative cache.

    ``access`` returns the outcome plus any eviction the fill caused, so
    a hierarchy can propagate misses downward and writebacks outward.
    """

    def __init__(
        self,
        config: CacheLevelConfig,
        name: str = "cache",
        policy: ReplacementPolicy | None = None,
        counters: CounterSet | None = None,
    ) -> None:
        self.config = config
        self.name = name
        self.policy = policy if policy is not None else LruPolicy()
        self.counters = counters if counters is not None else CounterSet()
        self._num_sets = config.num_sets
        self._ways = config.associativity
        # set index -> way -> line
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(self._num_sets)]
        # per-set recency state (list of way ids)
        self._recency: List[List[int]] = [[] for _ in range(self._num_sets)]

    def _index_tag(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self._num_sets, line // self._num_sets

    def _line_address(self, set_index: int, tag: int) -> int:
        return (tag * self._num_sets + set_index) * self.config.line_bytes

    def lookup(self, address: int) -> bool:
        """Presence check without state update."""
        set_index, tag = self._index_tag(address)
        return any(
            line.tag == tag for line in self._sets[set_index].values()
        )

    def access(
        self, address: int, is_write: bool = False
    ) -> tuple[AccessOutcome, Optional[Eviction]]:
        """Access one line; fills on miss (write-allocate)."""
        set_index, tag = self._index_tag(address)
        ways = self._sets[set_index]
        for way, line in ways.items():
            if line.tag == tag:
                self.policy.on_access(self._recency[set_index], way)
                if is_write:
                    line.dirty = True
                self.counters.add(f"{self.name}.hits")
                return AccessOutcome.HIT, None

        self.counters.add(f"{self.name}.misses")
        eviction = self._fill(set_index, tag, is_write)
        return AccessOutcome.MISS, eviction

    def _fill(self, set_index: int, tag: int, dirty: bool) -> Optional[Eviction]:
        ways = self._sets[set_index]
        eviction: Optional[Eviction] = None
        if len(ways) >= self._ways:
            victim_way = self.policy.victim(self._recency[set_index])
            victim = ways.pop(victim_way)
            self._recency[set_index].remove(victim_way)
            eviction = Eviction(
                address=self._line_address(set_index, victim.tag),
                dirty=victim.dirty,
            )
            if victim.dirty:
                self.counters.add(f"{self.name}.writebacks")
            way = victim_way
        else:
            way = next(w for w in range(self._ways) if w not in ways)
        ways[way] = _Line(tag=tag, dirty=dirty)
        self.policy.on_access(self._recency[set_index], way)
        self.counters.add(f"{self.name}.fills")
        return eviction

    def invalidate(self, address: int) -> bool:
        """Drop a line if present (no writeback); returns whether it was."""
        set_index, tag = self._index_tag(address)
        ways = self._sets[set_index]
        for way, line in list(ways.items()):
            if line.tag == tag:
                del ways[way]
                self._recency[set_index].remove(way)
                self.counters.add(f"{self.name}.invalidations")
                return True
        return False

    @property
    def hit_rate(self) -> float:
        hits = self.counters[f"{self.name}.hits"]
        total = hits + self.counters[f"{self.name}.misses"]
        return hits / total if total else 0.0

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(ways) for ways in self._sets)
