"""SRAM cache-hierarchy substrate (L1 / L2 / shared L3).

The paper filters memory traffic through a conventional three-level
hierarchy (Table I) before it reaches the heterogeneous memory system;
Table II characterises each benchmark by its LLC misses per kilo
instruction (MPKI).  This package provides a functional set-associative
cache model used to (a) derive LLC-miss streams from raw address traces
and (b) regenerate Table II from the synthetic workloads.
"""

from repro.cachesim.cache import Cache, AccessOutcome
from repro.cachesim.replacement import LruPolicy, RandomPolicy, ReplacementPolicy
from repro.cachesim.hierarchy import CacheHierarchy, HierarchyResult
from repro.cachesim.coherence import CoherentHierarchy, MesiState

__all__ = [
    "Cache",
    "AccessOutcome",
    "CacheHierarchy",
    "CoherentHierarchy",
    "HierarchyResult",
    "LruPolicy",
    "MesiState",
    "RandomPolicy",
    "ReplacementPolicy",
]
