"""Multiprogram (rate-mode) performance aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

from repro.config import SystemConfig
from repro.cpu.core import CoreRunStats, CoreTimingModel
from repro.stats import geomean

#: Version of the :meth:`WorkloadPerformance.to_dict` wire format.
PERFORMANCE_SCHEMA_VERSION = 1


@dataclass
class WorkloadPerformance:
    """Per-workload performance summary (Section VI-A reporting)."""

    name: str
    per_core_ipc: List[float]
    average_latency_ns: float
    page_faults: int

    def to_dict(self) -> Dict[str, Any]:
        """Versioned plain-dict form (the disk-cache wire format)."""
        return {
            "schema": PERFORMANCE_SCHEMA_VERSION,
            "name": self.name,
            "per_core_ipc": list(self.per_core_ipc),
            "average_latency_ns": self.average_latency_ns,
            "page_faults": self.page_faults,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadPerformance":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        schema = data.get("schema")
        if schema != PERFORMANCE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported WorkloadPerformance schema {schema!r} "
                f"(expected {PERFORMANCE_SCHEMA_VERSION})"
            )
        return cls(
            name=data["name"],
            per_core_ipc=list(data["per_core_ipc"]),
            average_latency_ns=data["average_latency_ns"],
            page_faults=data["page_faults"],
        )

    @property
    def geomean_ipc(self) -> float:
        return geomean(self.per_core_ipc)

    @property
    def min_ipc(self) -> float:
        return min(self.per_core_ipc)

    @property
    def max_ipc(self) -> float:
        return max(self.per_core_ipc)


class MulticoreModel:
    """Aggregates per-core stats into the paper's workload metrics."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.core_model = CoreTimingModel(config.core)

    def summarize(
        self, name: str, per_core: Sequence[CoreRunStats]
    ) -> WorkloadPerformance:
        if not per_core:
            raise ValueError("workload has no cores")
        ipcs = [self.core_model.ipc(stats) for stats in per_core]
        accesses = sum(stats.memory_accesses for stats in per_core)
        latency = sum(stats.memory_latency_ns for stats in per_core)
        faults = sum(stats.page_faults for stats in per_core)
        return WorkloadPerformance(
            name=name,
            per_core_ipc=ipcs,
            average_latency_ns=latency / accesses if accesses else 0.0,
            page_faults=faults,
        )

    def normalized_ipc(
        self,
        runs: Dict[str, WorkloadPerformance],
        baseline: str,
    ) -> Dict[str, float]:
        """Geomean IPC of every run normalised to ``baseline``."""
        if baseline not in runs:
            raise KeyError(f"baseline {baseline!r} not among runs")
        base = runs[baseline].geomean_ipc
        return {name: perf.geomean_ipc / base for name, perf in runs.items()}

    def average_latency_cycles(self, perf: WorkloadPerformance) -> float:
        """Average memory access latency in CPU cycles (Figure 19)."""
        return self.config.core.ns_to_cycles(perf.average_latency_ns)
