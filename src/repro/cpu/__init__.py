"""Analytic out-of-order core timing and multiprogram aggregation.

The substitution for GEM5's OoO cores: a first-order timing model in
which a core's cycle count is its base pipeline time plus its memory
stall time divided by the core's memory-level parallelism.  This is the
standard interval/stall analytic model and preserves exactly the
relationships the paper's evaluation depends on — IPC falls with average
memory access latency and with page-fault stalls, and the geometric mean
of per-application IPCs (Section VI-A) summarises a workload.
"""

from repro.cpu.core import CoreTimingModel, CoreRunStats
from repro.cpu.multicore import MulticoreModel, WorkloadPerformance

__all__ = [
    "CoreTimingModel",
    "CoreRunStats",
    "MulticoreModel",
    "WorkloadPerformance",
]
