"""Per-core analytic timing model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CoreConfig


@dataclass
class CoreRunStats:
    """Accumulated execution of one core over a simulation."""

    instructions: int = 0
    memory_accesses: int = 0
    memory_latency_ns: float = 0.0
    page_faults: int = 0
    fault_cycles: float = 0.0

    def merge(self, other: "CoreRunStats") -> None:
        self.instructions += other.instructions
        self.memory_accesses += other.memory_accesses
        self.memory_latency_ns += other.memory_latency_ns
        self.page_faults += other.page_faults
        self.fault_cycles += other.fault_cycles

    @property
    def average_latency_ns(self) -> float:
        if not self.memory_accesses:
            return 0.0
        return self.memory_latency_ns / self.memory_accesses


class CoreTimingModel:
    """First-order OoO timing: base CPI plus MLP-overlapped stalls.

    ``cycles = I * base_cpi + (stall_ns * f) / MLP + fault_cycles``

    Memory-level parallelism overlaps demand-miss latencies; page-fault
    stalls are serialising (the task sits in the uninterruptible "D"
    state, Section III-C) and are charged in full.
    """

    def __init__(self, config: CoreConfig) -> None:
        self.config = config

    def cycles(self, stats: CoreRunStats) -> float:
        base = stats.instructions * self.config.base_cpi
        stall_cycles = (
            self.config.ns_to_cycles(stats.memory_latency_ns)
            / self.config.mlp
        )
        return base + stall_cycles + stats.fault_cycles

    def ipc(self, stats: CoreRunStats) -> float:
        cycles = self.cycles(stats)
        if cycles <= 0:
            return 0.0
        return stats.instructions / cycles

    def cpi(self, stats: CoreRunStats) -> float:
        ipc = self.ipc(stats)
        return 1.0 / ipc if ipc else float("inf")

    def seconds(self, stats: CoreRunStats) -> float:
        return self.cycles(stats) / self.config.frequency_hz

    def cpu_utilisation(self, stats: CoreRunStats) -> float:
        """Fraction of cycles not spent waiting on page faults.

        Reproduces the CPU-utilisation metric of Figure 5 — a task
        stalled on a page fault is in the "D" state and contributes no
        utilisation.
        """
        total = self.cycles(stats)
        if total <= 0:
            return 1.0
        return max(0.0, 1.0 - stats.fault_cycles / total)
