"""Bounded, seeded config fuzzing for the conformance oracles.

Samples valid ``(Scale, design, workload)`` configurations from the
documented parameter ranges and feeds each through the *cheap* half of
the oracle suite — forced-kernel parity, seed determinism, telemetry
transparency — so odd-but-legal parameter corners (zero warmup, one
core, tiny stacked capacity, skewed ratios) get differential coverage
the fixed golden grid cannot provide.

The generator is a pure function of its seed: the same ``--seed``
reproduces the same cases, so a CI failure is replayable locally with
one flag.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.check.canonical import events_digest, result_digest
from repro.check.oracle import (
    InvariantResult,
    check_seed_determinism,
    check_telemetry_transparency,
)
from repro.experiments.designs import REGISTRY, kernel_decision
from repro.experiments.runner import Scale
from repro.workloads import benchmark_names

#: Valid parameter ranges the fuzzer draws from.  Deliberately
#: conservative: every combination must be a *legal* configuration —
#: the fuzzer hunts for divergence between execution paths, not for
#: input validation bugs.
FAST_MB_CHOICES = (0.5, 1.0, 2.0)
RATIO_CHOICES = (3, 5, 7)
COPIES_CHOICES = (1, 2, 4)
ACCESSES_RANGE = (40, 240)


@dataclass(frozen=True)
class FuzzCase:
    """One sampled configuration."""

    case: int
    design: str
    workload: str
    scale: Scale

    def describe(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "design": self.design,
            "workload": self.workload,
            "fast_mb": self.scale.fast_mb,
            "ratio": self.scale.ratio,
            "accesses_per_core": self.scale.accesses_per_core,
            "warmup_per_core": self.scale.warmup_per_core,
            "num_copies": self.scale.num_copies,
            "seed": self.scale.seed,
        }


def generate_cases(seed: int, count: int) -> List[FuzzCase]:
    """``count`` deterministic samples from the valid ranges."""
    # A string seed hashes via SHA-512 (process-independent); a tuple
    # would fall back to PYTHONHASHSEED-randomised hash().
    rng = random.Random(f"repro.check.fuzz:{seed}")
    designs = REGISTRY.labels()
    workloads = benchmark_names()
    cases: List[FuzzCase] = []
    for index in range(count):
        accesses = rng.randrange(*ACCESSES_RANGE)
        workload = rng.choice(workloads)
        cases.append(
            FuzzCase(
                case=index,
                design=rng.choice(designs),
                workload=workload,
                scale=Scale(
                    fast_mb=rng.choice(FAST_MB_CHOICES),
                    ratio=rng.choice(RATIO_CHOICES),
                    accesses_per_core=accesses,
                    warmup_per_core=rng.randrange(0, accesses),
                    num_copies=rng.choice(COPIES_CHOICES),
                    benchmarks=(workload,),
                    seed=rng.randrange(0, 1 << 16),
                ),
            )
        )
    return cases


def check_kernel_parity(case: FuzzCase) -> InvariantResult:
    """Forced-scalar vs auto-selected kernel, byte-identical."""
    from repro.check.oracle import _captured

    decision = kernel_decision(case.design, case.scale.config())
    if decision.kernel == "scalar":
        return InvariantResult(
            "kernel-parity", True, f"skipped: {decision.reason}"
        )
    reference, ref_events = _captured(
        case.scale, case.design, case.workload, kernel="scalar"
    )
    fast, fast_events = _captured(
        case.scale, case.design, case.workload, kernel=decision.kernel
    )
    same = result_digest(reference) == result_digest(fast) and events_digest(
        ref_events
    ) == events_digest(fast_events)
    return InvariantResult(
        "kernel-parity",
        same,
        "" if same else f"{decision.kernel} diverges from scalar",
    )


@dataclass(frozen=True)
class FuzzOutcome:
    """One fuzz case's oracle verdicts."""

    case: FuzzCase
    invariants: List[InvariantResult]

    @property
    def passed(self) -> bool:
        return all(i.passed for i in self.invariants)

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self.case.describe(),
            "passed": self.passed,
            "invariants": [i.to_dict() for i in self.invariants],
        }


def run_fuzz(seed: int, count: int) -> List[FuzzOutcome]:
    """Run the cheap oracle set over ``count`` sampled configs."""
    outcomes: List[FuzzOutcome] = []
    for case in generate_cases(seed, count):
        outcomes.append(
            FuzzOutcome(
                case=case,
                invariants=[
                    check_kernel_parity(case),
                    check_seed_determinism(
                        case.scale, case.design, case.workload
                    ),
                    check_telemetry_transparency(
                        case.scale, case.design, case.workload
                    ),
                ],
            )
        )
    return outcomes


__all__ = [
    "ACCESSES_RANGE",
    "COPIES_CHOICES",
    "FAST_MB_CHOICES",
    "FuzzCase",
    "FuzzOutcome",
    "RATIO_CHOICES",
    "check_kernel_parity",
    "generate_cases",
    "run_fuzz",
]
