"""``repro.check`` — golden-run conformance and differential testing.

The correctness-tooling subsystem behind ``python -m repro.experiments
check``: a content-addressed :class:`GoldenStore` of blessed result and
event-stream digests (committed under ``tests/goldens/``), a
differential oracle that runs every execution path the codebase offers
for a cell — scalar vs batched vs batched-paged kernels, arena-on vs
arena-off workers, cold vs warm result cache, direct vs
:mod:`repro.serve` round trip — and asserts byte-identical canonical
results, a metamorphic invariant pack, and a bounded seeded config
fuzzer.  See ``docs/TESTING.md`` for the workflow.
"""

from repro.check.canonical import (
    INFRASTRUCTURE_EVENT_KINDS,
    canonical_json_bytes,
    events_digest,
    payload_digest,
    result_digest,
)
from repro.check.fuzz import FuzzCase, FuzzOutcome, generate_cases, run_fuzz
from repro.check.goldens import (
    GOLDEN_SCHEMA_VERSION,
    GoldenRecord,
    GoldenStore,
    cell_key,
    default_goldens_dir,
    scale_identity,
)
from repro.check.oracle import (
    CellVerdict,
    InvariantResult,
    PathResult,
    run_cell_oracles,
    run_execution_paths,
    run_invariants,
)
from repro.check.report import (
    GOLDEN_BLESSED,
    GOLDEN_MATCH,
    GOLDEN_MISMATCH,
    GOLDEN_MISSING,
    REPORT_SCHEMA_VERSION,
    CellReport,
    CheckReport,
)
from repro.check.runner import (
    DEFAULT_SAMPLE,
    conformance_grid,
    run_check,
    run_check_command,
    sample_cells,
)

__all__ = [
    "CellReport",
    "CellVerdict",
    "CheckReport",
    "DEFAULT_SAMPLE",
    "FuzzCase",
    "FuzzOutcome",
    "GOLDEN_BLESSED",
    "GOLDEN_MATCH",
    "GOLDEN_MISMATCH",
    "GOLDEN_MISSING",
    "GOLDEN_SCHEMA_VERSION",
    "GoldenRecord",
    "GoldenStore",
    "INFRASTRUCTURE_EVENT_KINDS",
    "InvariantResult",
    "PathResult",
    "REPORT_SCHEMA_VERSION",
    "canonical_json_bytes",
    "cell_key",
    "conformance_grid",
    "default_goldens_dir",
    "events_digest",
    "generate_cases",
    "payload_digest",
    "result_digest",
    "run_cell_oracles",
    "run_check",
    "run_check_command",
    "run_execution_paths",
    "run_fuzz",
    "run_invariants",
    "sample_cells",
    "scale_identity",
]
