"""The conformance check runner: sample, simulate, compare, report.

Orchestrates the whole ``python -m repro.experiments check`` flow:

1. enumerate the conformance grid (the full design registry ×
   ``SMOKE_SCALE`` workloads — the grid the committed goldens cover);
2. simulate a seeded sample of cells through the sweep runtime
   (:class:`~repro.runtime.SweepExecutor` with telemetry capture, so
   the same runtime every figure uses is itself under test) and
   compare each cell's digests against the
   :class:`~repro.check.GoldenStore`;
3. run the differential execution-path oracle and the metamorphic
   invariant pack on the sampled cells;
4. fuzz a bounded set of sampled configurations;
5. write the schema-versioned ``CHECK_report.json``.

``--bless`` re-records the **full** grid (never a sample — a partial
store is a false safety net) and requires a changelog note.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple

import repro
from repro.check.canonical import events_digest, result_digest
from repro.check.fuzz import run_fuzz
from repro.check.goldens import GoldenStore, default_goldens_dir
from repro.check.goldens import scale_identity
from repro.check.oracle import run_execution_paths, run_invariants
from repro.check.report import (
    GOLDEN_BLESSED,
    GOLDEN_MATCH,
    GOLDEN_MISMATCH,
    GOLDEN_MISSING,
    CellReport,
    CheckReport,
)
from repro.runtime import SweepExecutor
from repro.telemetry import EventBus

#: Defaults of the CLI subcommand.
DEFAULT_SAMPLE = 6
DEFAULT_FUZZ = 4
DEFAULT_REPORT_OUT = "CHECK_report.json"

#: Cap on the (expensive) per-cell metamorphic pack: the differential
#: oracle runs on every sampled cell, the invariant pack on this many.
MAX_INVARIANT_CELLS = 3

Cell = Tuple[str, str]
Printer = Callable[[str], None]


def conformance_grid(scale: Any) -> List[Cell]:
    """The full grid the goldens cover: every registered design ×
    every workload of ``scale``, design-major (registry order)."""
    from repro.experiments.designs import REGISTRY

    return [
        (design, workload)
        for design in REGISTRY.labels()
        for workload in scale.benchmarks
    ]


def sample_cells(scale: Any, sample: int, seed: int) -> List[Cell]:
    """A seeded sample of the grid (``sample <= 0`` → the whole grid,
    grid order; otherwise a stable random subset, grid order)."""
    grid = conformance_grid(scale)
    if sample <= 0 or sample >= len(grid):
        return grid
    rng = random.Random(f"repro.check.sample:{seed}")
    chosen = set(rng.sample(range(len(grid)), sample))
    return [cell for index, cell in enumerate(grid) if index in chosen]


def _simulate_sampled(
    scale: Any, cells: Sequence[Cell], jobs: int
) -> Tuple[dict, dict]:
    """Run the sampled cells through the sweep runtime with telemetry
    capture → ``(results, events)`` keyed by cell.

    No result cache: conformance must re-simulate (a warm cache would
    compare the store against itself).  No fault plan: an injected
    ``$REPRO_FAULTS`` must not fail — or excuse — a conformance run.
    """
    executor = SweepExecutor(
        jobs=jobs,
        cache=None,
        faults=None,
        telemetry=EventBus(),
        arena=True,
    )
    results = executor.run_cells(scale, list(cells))
    return results, executor.events


def run_check(
    scale: Any = None,
    *,
    sample: int = DEFAULT_SAMPLE,
    seed: int = 0,
    bless: bool = False,
    note: Optional[str] = None,
    goldens_dir: Optional[Path | str] = None,
    jobs: int = 1,
    fuzz: int = DEFAULT_FUZZ,
    pool: bool = True,
    serve: bool = True,
    deep: bool = True,
    echo: Optional[Printer] = None,
) -> CheckReport:
    """Run the conformance check; returns the full report.

    ``deep=False`` skips the differential/metamorphic/fuzz phases and
    only verifies golden digests (the fast path tests use).  ``pool``
    and ``serve`` gate the process-pool and HTTP paths inside the deep
    phase.  ``echo`` receives progress lines (default: stderr).
    """
    if scale is None:
        from repro.experiments.runner import SMOKE_SCALE

        scale = SMOKE_SCALE
    if echo is None:
        def echo(line: str) -> None:
            print(line, file=sys.stderr)

    store = GoldenStore(
        Path(goldens_dir) if goldens_dir is not None else default_goldens_dir()
    )
    report = CheckReport(
        version=repro.__version__,
        scale=scale_identity(scale),
        seed=seed,
        sample=sample,
        bless=bless,
        goldens_dir=str(store.root),
    )

    if bless and (note is None or not note.strip()):
        report.error = (
            "--bless requires --note with a changelog entry explaining "
            "the intentional semantic change"
        )
        return report

    cells = (
        conformance_grid(scale) if bless else sample_cells(scale, sample, seed)
    )
    echo(
        f"[check] {'blessing' if bless else 'verifying'} "
        f"{len(cells)} cell(s) via the sweep runtime (jobs={jobs})"
    )
    results, events = _simulate_sampled(scale, cells, jobs)

    golden_count = len(store)
    if not bless and golden_count == 0:
        report.error = (
            f"no goldens found under {store.root} — record them first "
            "with: python -m repro.experiments check --bless "
            '--note "initial goldens"'
        )
        return report

    for design, workload in cells:
        digest = result_digest(results[(design, workload)])
        stream = events_digest(events.get((design, workload), []))
        cell = CellReport(
            design=design,
            workload=workload,
            result_digest=digest,
            events_digest=stream,
            golden_status=GOLDEN_MISSING,
        )
        if bless:
            assert note is not None  # validated above
            store.put(scale, design, workload, digest, stream, note)
            cell.golden_status = GOLDEN_BLESSED
            cell.golden_detail = note.strip()
        else:
            golden = store.get(scale, design, workload)
            if golden is None:
                cell.golden_detail = (
                    "cell was never blessed; run check --bless"
                )
            elif (
                golden.result_digest == digest
                and golden.events_digest == stream
            ):
                cell.golden_status = GOLDEN_MATCH
            else:
                cell.golden_status = GOLDEN_MISMATCH
                mismatches = []
                if golden.result_digest != digest:
                    mismatches.append(
                        f"result {digest[:12]} != "
                        f"golden {golden.result_digest[:12]}"
                    )
                if golden.events_digest != stream:
                    mismatches.append(
                        f"events {stream[:12]} != "
                        f"golden {golden.events_digest[:12]}"
                    )
                cell.golden_detail = (
                    "; ".join(mismatches)
                    + f" (blessed at {golden.recorded_version}: "
                    + f"{golden.note!r}) — an intentional semantic "
                    + "change must be re-blessed with --bless --note"
                )
        report.cells.append(cell)

    if deep and not bless:
        for index, cell in enumerate(report.cells):
            echo(
                f"[check] differential oracle "
                f"{cell.design}/{cell.workload} "
                f"({index + 1}/{len(report.cells)})"
            )
            cell.paths = run_execution_paths(
                scale, cell.design, cell.workload, pool=pool, serve=serve
            )
        for cell in report.cells[:MAX_INVARIANT_CELLS]:
            echo(
                f"[check] metamorphic pack {cell.design}/{cell.workload}"
            )
            cell.invariants = run_invariants(
                scale, cell.design, cell.workload, serve=serve
            )
        if fuzz > 0:
            echo(f"[check] fuzzing {fuzz} sampled config(s)")
            report.fuzz = run_fuzz(seed, fuzz)

    return report


def run_check_command(
    *,
    sample: int = DEFAULT_SAMPLE,
    seed: int = 0,
    bless: bool = False,
    note: Optional[str] = None,
    goldens: Optional[str] = None,
    out: Optional[str] = None,
    jobs: int = 1,
    fuzz: int = DEFAULT_FUZZ,
) -> int:
    """CLI entry point: run, print a human summary, write the report.

    Exit codes: ``0`` all green, ``1`` any digest mismatch / failed
    invariant, ``2`` usage error (``--bless`` without ``--note``).
    """
    usage_error = bless and (note is None or not note.strip())
    report = run_check(
        sample=sample,
        seed=seed,
        bless=bless,
        note=note,
        goldens_dir=goldens,
        jobs=jobs,
        fuzz=fuzz,
    )
    if report.error is not None:
        print(f"check: {report.error}", file=sys.stderr)
        return 2 if usage_error else 1

    report_path = report.write(out or DEFAULT_REPORT_OUT)
    summary = report.summary()
    for cell in report.cells:
        marks = []
        marks.append(f"golden={cell.golden_status}")
        if cell.paths:
            marks.append(
                f"paths={len(cell.paths)}"
                f"{'' if cell.paths_agree else ' DIVERGED'}"
            )
        if cell.invariants:
            failed = [i.name for i in cell.invariants if not i.passed]
            marks.append(
                f"invariants={len(cell.invariants)}"
                + (f" FAILED:{','.join(failed)}" if failed else "")
            )
        state = "ok" if cell.passed else "FAIL"
        print(f"  {cell.design:20s} {cell.workload:10s} "
              f"{state:4s} {' '.join(marks)}")
        if not cell.passed and cell.golden_detail:
            print(f"    {cell.golden_detail}")
    for outcome in report.fuzz:
        if not outcome.passed:
            failed = [i.name for i in outcome.invariants if not i.passed]
            print(
                f"  fuzz case {outcome.case.case} "
                f"({outcome.case.design}/{outcome.case.workload}) "
                f"FAILED: {', '.join(failed)}"
            )
    print(
        f"[check] {summary['cells']} cell(s), "
        f"{summary['paths']} path run(s), "
        f"{summary['invariants']} invariant(s), "
        f"{summary['fuzz_cases']} fuzz case(s): "
        f"{'PASS' if report.passed else 'FAIL'} -> {report_path}"
    )
    return 0 if report.passed else 1


__all__ = [
    "DEFAULT_FUZZ",
    "DEFAULT_REPORT_OUT",
    "DEFAULT_SAMPLE",
    "MAX_INVARIANT_CELLS",
    "conformance_grid",
    "run_check",
    "run_check_command",
    "sample_cells",
]
