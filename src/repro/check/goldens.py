"""The golden-run conformance store.

A *golden* pins one simulation cell's exact semantics: the canonical
digest of its :class:`~repro.sim.SimulationResult` and of its telemetry
event stream, recorded once and committed under ``tests/goldens/`` so
every later run — on any branch, any kernel, any execution path — can
be byte-compared against it.

Keys are **content-addressed and version-independent**: a golden's
identity is the SHA-256 of the cell description ``(scale fields minus
``benchmarks``, design label, workload name)`` — deliberately *not*
``repro.__version__``.  The result cache keys on the package version
so an upgrade re-simulates; the golden store must do the opposite, so
a version bump that silently changes simulation semantics shows up as
a digest mismatch instead of a fresh, vacuously-green store.  An
*intentional* semantic change is recorded by re-blessing
(``python -m repro.experiments check --bless --note "..."``), which
requires a changelog note explaining the change; the note and the
recording version are stored as metadata alongside each digest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.check.canonical import payload_digest

#: Bumped when the golden file layout changes (not when simulation
#: semantics change — that is what the digests themselves detect).
GOLDEN_SCHEMA_VERSION = 1

#: Where goldens live unless ``--goldens``/``$REPRO_GOLDENS`` says
#: otherwise — the committed store at the repository root.
DEFAULT_GOLDENS_DIR = Path("tests") / "goldens"


def default_goldens_dir() -> Path:
    """``$REPRO_GOLDENS`` or the committed ``tests/goldens/``."""
    env = os.environ.get("REPRO_GOLDENS")
    return Path(env) if env else DEFAULT_GOLDENS_DIR


def scale_identity(scale: Any) -> Dict[str, Any]:
    """The scale's identity fields, ``benchmarks`` excluded.

    Mirrors :meth:`repro.runtime.ResultCache.describe`: a cell's sweep
    siblings never influence its own result, so keying on them would
    give one simulation many addresses.
    """
    fields = dataclasses.asdict(scale)
    fields.pop("benchmarks", None)
    return fields


def cell_key(scale: Any, design: str, workload: str) -> str:
    """Version-independent content address of one cell."""
    return payload_digest(
        {
            "golden_schema": GOLDEN_SCHEMA_VERSION,
            "scale": scale_identity(scale),
            "design": design,
            "workload": workload,
        }
    )


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9.]+", "_", text)


@dataclass(frozen=True)
class GoldenRecord:
    """One blessed cell: digests plus provenance metadata."""

    design: str
    workload: str
    scale: Dict[str, Any]
    result_digest: str
    events_digest: str
    #: Required changelog note from the blessing run — *why* these
    #: digests are correct (initial recording, or what semantic change
    #: made re-blessing legitimate).
    note: str
    #: ``repro.__version__`` at blessing time.  Metadata only — never
    #: part of the key, so version bumps cannot silently retire a
    #: golden.
    recorded_version: str
    schema: int = GOLDEN_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "design": self.design,
            "workload": self.workload,
            "scale": self.scale,
            "result_digest": self.result_digest,
            "events_digest": self.events_digest,
            "note": self.note,
            "recorded_version": self.recorded_version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GoldenRecord":
        schema = data.get("schema")
        if schema != GOLDEN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported golden schema {schema!r} "
                f"(expected {GOLDEN_SCHEMA_VERSION})"
            )
        return cls(
            design=data["design"],
            workload=data["workload"],
            scale=dict(data["scale"]),
            result_digest=data["result_digest"],
            events_digest=data["events_digest"],
            note=data["note"],
            recorded_version=data["recorded_version"],
        )


class GoldenStore:
    """Directory of per-cell golden records.

    One JSON file per cell, named ``<design>__<workload>__<key12>.json``
    — the digest prefix makes the name collision-free, the label prefix
    keeps ``git diff`` and code review readable.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    # -- addressing ----------------------------------------------------

    def path_for(self, scale: Any, design: str, workload: str) -> Path:
        key = cell_key(scale, design, workload)
        return self.root / (
            f"{_slug(design)}__{_slug(workload)}__{key[:12]}.json"
        )

    # -- traffic -------------------------------------------------------

    def get(
        self, scale: Any, design: str, workload: str
    ) -> Optional[GoldenRecord]:
        """The blessed record, or ``None`` when the cell was never
        blessed.  A damaged file raises — goldens are committed
        artefacts, silently ignoring corruption would defeat the
        store's whole purpose."""
        path = self.path_for(scale, design, workload)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        return GoldenRecord.from_dict(payload)

    def put(
        self,
        scale: Any,
        design: str,
        workload: str,
        result_digest: str,
        events_digest: str,
        note: str,
    ) -> GoldenRecord:
        """Bless one cell.  ``note`` is mandatory and non-empty."""
        if not note or not note.strip():
            raise ValueError(
                "blessing a golden requires a changelog note "
                "(--note) explaining why the new digests are correct"
            )
        import repro

        record = GoldenRecord(
            design=design,
            workload=workload,
            scale=scale_identity(scale),
            result_digest=result_digest,
            events_digest=events_digest,
            note=note.strip(),
            recorded_version=repro.__version__,
        )
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(scale, design, workload)
        path.write_text(
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return record

    # -- inventory -----------------------------------------------------

    def records(self) -> Iterator[Tuple[Path, GoldenRecord]]:
        """Every committed record, in sorted path order."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            yield path, GoldenRecord.from_dict(json.loads(path.read_text()))

    def __len__(self) -> int:
        return sum(1 for _ in self.records())


__all__ = [
    "DEFAULT_GOLDENS_DIR",
    "GOLDEN_SCHEMA_VERSION",
    "GoldenRecord",
    "GoldenStore",
    "cell_key",
    "default_goldens_dir",
    "scale_identity",
]
