"""Canonical byte forms and digests for conformance checking.

Every oracle in :mod:`repro.check` compares *digests*, never Python
objects: a :class:`~repro.sim.SimulationResult` is reduced to the
SHA-256 of the canonical JSON encoding of its versioned
``to_dict()`` form, and a telemetry event stream to a running SHA-256
over each event's canonical wire dict, in emission order.  Two
execution paths agree exactly when their digests agree — the same
"byte-identical" bar the serving layer holds coalesced responses to.

Canonical JSON here means ``sort_keys=True`` with compact separators —
the key ordering of the producing code can never leak into a digest.
Floats round-trip ``json.dumps``/``loads`` exactly (``repr``-based
encoding), so digesting the dict form is as strict as comparing the
in-memory objects field by field.

Infrastructure events — arena attach/detach, serve lifecycle, job
retries — describe *how* a cell was executed, not what it computed,
and legitimately differ between execution paths (an arena-attached
worker emits :class:`~repro.telemetry.ArenaEvent`, an inline run does
not).  :func:`events_digest` excludes them so the digest covers
exactly the simulation semantics.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Mapping

#: Event kinds that describe execution machinery rather than simulation
#: semantics; excluded from :func:`events_digest`.
INFRASTRUCTURE_EVENT_KINDS = frozenset({"arena", "job_retry", "serve"})


def canonical_json_bytes(payload: Any) -> bytes:
    """The canonical JSON encoding: sorted keys, compact separators."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def payload_digest(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON bytes."""
    return hashlib.sha256(canonical_json_bytes(payload)).hexdigest()


def result_digest(result: Any) -> str:
    """Digest of a :class:`~repro.sim.SimulationResult` (or its
    already-serialised ``to_dict()`` mapping)."""
    data = result.to_dict() if hasattr(result, "to_dict") else result
    return payload_digest(data)


def events_digest(events: Iterable[Any]) -> str:
    """Order-sensitive digest of a telemetry event stream.

    Accepts events or their wire-format dicts;
    :data:`INFRASTRUCTURE_EVENT_KINDS` are skipped (see module
    docstring).  An empty stream digests to the SHA-256 of nothing —
    a stable, comparable value.
    """
    hasher = hashlib.sha256()
    for event in events:
        data: Mapping[str, Any] = (
            event.to_dict() if hasattr(event, "to_dict") else event
        )
        if data.get("kind") in INFRASTRUCTURE_EVENT_KINDS:
            continue
        hasher.update(canonical_json_bytes(data))
        hasher.update(b"\n")
    return hasher.hexdigest()


__all__ = [
    "INFRASTRUCTURE_EVENT_KINDS",
    "canonical_json_bytes",
    "events_digest",
    "payload_digest",
    "result_digest",
]
