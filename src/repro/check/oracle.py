"""Differential and metamorphic oracles over the execution paths.

The codebase has many ways to produce one
:class:`~repro.sim.SimulationResult`: the scalar reference loop, the
batched and batched-paged fast kernels, arena-attached worker
processes, inline serial execution, warm :class:`ResultCache` replays,
and the :mod:`repro.serve` round trip.  The paper's claims rest on all
of them being *the same simulation*; :func:`run_execution_paths` runs
every applicable one for a cell and reduces each to canonical digests,
and :func:`run_invariants` adds metamorphic properties no single path
can check against itself (seed determinism, telemetry transparency,
epoch additivity, warmup-boundary kernel parity, coalesced-response
byte equality).

Everything here is pure measurement: callers (the check runner, the
CLI, tests) compare the returned digests and decide pass/fail.
"""

from __future__ import annotations

import dataclasses
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.canonical import events_digest, payload_digest, result_digest
from repro.experiments.designs import REGISTRY, kernel_decision
from repro.runtime import ResultCache, SweepExecutor
from repro.runtime.cells import simulate_cell
from repro.telemetry import EventBus
from repro.telemetry.events import EpochSample, PageFaultEvent, SegmentSwap
from repro.telemetry.recorder import EventLog, TimelineRecorder

#: Path names of the differential oracle, in execution order.  Which
#: ones apply to a cell depends on its kernel decision and on the
#: ``pool``/``serve`` switches.
PATH_SCALAR = "kernel:scalar"
PATH_SERIAL = "executor:serial-no-arena"
PATH_POOL_ARENA = "executor:pool-arena"
PATH_CACHE_COLD = "cache:cold"
PATH_CACHE_WARM = "cache:warm"
PATH_SERVE = "serve:roundtrip"


@dataclass(frozen=True)
class PathResult:
    """One execution path's canonical digests for one cell.

    ``events_digest`` is ``None`` for paths that legitimately produce
    no event stream (a warm-cache replay, the serve round trip) — they
    participate only in the result comparison.
    """

    path: str
    result_digest: str
    events_digest: Optional[str] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "result_digest": self.result_digest,
            "events_digest": self.events_digest,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class InvariantResult:
    """One metamorphic invariant's verdict for one cell."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class CellVerdict:
    """Everything the oracles measured for one cell."""

    design: str
    workload: str
    paths: List[PathResult] = field(default_factory=list)
    invariants: List[InvariantResult] = field(default_factory=list)

    @property
    def paths_agree(self) -> bool:
        results = {p.result_digest for p in self.paths}
        events = {
            p.events_digest for p in self.paths if p.events_digest is not None
        }
        return len(results) <= 1 and len(events) <= 1

    @property
    def passed(self) -> bool:
        return self.paths_agree and all(i.passed for i in self.invariants)


def _cell_scale(scale: Any, workload: str) -> Any:
    """The cell's single-workload scale (what ``run_cells`` sees)."""
    return dataclasses.replace(scale, benchmarks=(workload,))


def _captured(
    scale: Any, design: str, workload: str, kernel: str = "auto"
) -> Tuple[Any, List[Any]]:
    """Simulate once with event capture → ``(result, events)``."""
    bus = EventBus()
    log = bus.subscribe(EventLog())
    result = simulate_cell(
        scale, design, workload, telemetry=bus, kernel=kernel
    )
    return result, list(log.events)


def _executor_path(
    scale: Any,
    design: str,
    workload: str,
    *,
    jobs: int,
    arena: bool,
    cache: Optional[ResultCache] = None,
) -> Tuple[Any, List[Any], SweepExecutor]:
    """One cell through the sweep runtime → result, events, executor."""
    executor = SweepExecutor(
        jobs=jobs,
        cache=cache,
        faults=None,
        telemetry=EventBus(),
        arena=arena,
    )
    results = executor.run_cells(
        _cell_scale(scale, workload), [(design, workload)]
    )
    events = executor.events.get((design, workload), [])
    return results[(design, workload)], list(events), executor


def run_execution_paths(
    scale: Any,
    design: str,
    workload: str,
    *,
    pool: bool = True,
    serve: bool = True,
    scratch_dir: Optional[Path] = None,
) -> List[PathResult]:
    """Run every applicable execution path for one cell.

    Always: the forced-scalar reference, the auto-selected kernel (when
    it differs), and the inline serial executor without an arena.  With
    ``pool``: a 2-worker process pool with the shared-memory arena.
    A cold-then-warm :class:`ResultCache` pair runs in ``scratch_dir``
    (or a temporary directory).  With ``serve``: a full
    :mod:`repro.serve` HTTP round trip on an ephemeral port.

    The caller asserts that every returned digest agrees; this function
    only measures.
    """
    paths: List[PathResult] = []

    # 1. The scalar reference loop.
    result, events = _captured(scale, design, workload, kernel="scalar")
    paths.append(
        PathResult(PATH_SCALAR, result_digest(result), events_digest(events))
    )

    # 2. The auto-selected kernel, when it is not already the scalar one.
    decision = kernel_decision(design, scale.config())
    if decision.kernel != "scalar":
        result, events = _captured(
            scale, design, workload, kernel=decision.kernel
        )
        paths.append(
            PathResult(
                f"kernel:{decision.kernel}",
                result_digest(result),
                events_digest(events),
                detail=decision.reason,
            )
        )

    # 3. The sweep runtime, inline serial, arena off.
    result, events, _ = _executor_path(
        scale, design, workload, jobs=1, arena=False
    )
    paths.append(
        PathResult(PATH_SERIAL, result_digest(result), events_digest(events))
    )

    # 4. Worker processes attaching the shared-memory trace arena.
    if pool:
        result, events, _ = _executor_path(
            scale, design, workload, jobs=2, arena=True
        )
        paths.append(
            PathResult(
                PATH_POOL_ARENA,
                result_digest(result),
                events_digest(events),
            )
        )

    # 5. Cold-then-warm result cache: the warm run must replay the cold
    # run's bytes without simulating.
    with tempfile.TemporaryDirectory(dir=scratch_dir) as tmp:
        result, events, _ = _executor_path(
            scale, design, workload, jobs=1, arena=False,
            cache=ResultCache(Path(tmp)),
        )
        paths.append(
            PathResult(
                PATH_CACHE_COLD,
                result_digest(result),
                events_digest(events),
            )
        )
        result, _, warm = _executor_path(
            scale, design, workload, jobs=1, arena=False,
            cache=ResultCache(Path(tmp)),
        )
        simulated = warm.metrics.simulated
        paths.append(
            PathResult(
                PATH_CACHE_WARM,
                result_digest(result),
                None,
                detail=(
                    "served from disk"
                    if simulated == 0
                    else f"unexpected: {simulated} cell(s) re-simulated"
                ),
            )
        )
        if simulated != 0:
            # Force disagreement so the caller flags the cell: a warm
            # cache that re-simulates is itself a conformance failure.
            paths[-1] = dataclasses.replace(
                paths[-1], result_digest="cache-warm-resimulated"
            )

    # 6. The serving layer, end to end over HTTP.
    if serve:
        paths.append(_serve_path(scale, design, workload))

    return paths


def _serve_request(scale: Any, design: str, workload: str) -> Dict[str, Any]:
    return {
        "design": design,
        "workload": workload,
        "fast_mb": scale.fast_mb,
        "ratio": scale.ratio,
        "accesses_per_core": scale.accesses_per_core,
        "warmup_per_core": scale.warmup_per_core,
        "num_copies": scale.num_copies,
        "seed": scale.seed,
    }


def _serve_path(scale: Any, design: str, workload: str) -> PathResult:
    from repro.serve import Client, ServerThread

    with tempfile.TemporaryDirectory() as tmp:
        with ServerThread(
            port=0, jobs=1, cache=None, checkpoint_dir=Path(tmp)
        ) as server:
            client = Client("127.0.0.1", server.port)
            body = client.simulate(_serve_request(scale, design, workload))
    return PathResult(
        PATH_SERVE, payload_digest(body["result"]), None
    )


# ----------------------------------------------------------------------
# Metamorphic invariants
# ----------------------------------------------------------------------

def check_seed_determinism(
    scale: Any, design: str, workload: str
) -> InvariantResult:
    """Two fresh runs of the same seeded cell are byte-identical."""
    first, first_events = _captured(scale, design, workload)
    second, second_events = _captured(scale, design, workload)
    same = result_digest(first) == result_digest(second) and events_digest(
        first_events
    ) == events_digest(second_events)
    return InvariantResult(
        "seed-determinism",
        same,
        "" if same else "repeat run diverged from itself",
    )


def check_telemetry_transparency(
    scale: Any, design: str, workload: str
) -> InvariantResult:
    """Attaching a telemetry bus never changes the result."""
    observed, _ = _captured(scale, design, workload)
    silent = simulate_cell(scale, design, workload)
    same = result_digest(observed) == result_digest(silent)
    return InvariantResult(
        "telemetry-transparency",
        same,
        "" if same else "telemetry-on result differs from telemetry-off",
    )


def check_epoch_consistency(
    scale: Any, design: str, workload: str
) -> InvariantResult:
    """Epoch samples are additive and consistent with the result.

    Cumulative counters must be non-decreasing, per-epoch differences
    must telescope exactly back to the final cumulative values (every
    sampled quantity is an integral count, so float equality is
    exact), the final sample must reproduce the result's totals
    (accesses, hit rate, swaps), the page-fault event count must match
    the final sample's fault tally, and the
    :class:`~repro.telemetry.TimelineRecorder` must fold the stream
    into exactly one timeline row per epoch.
    """
    result, events = _captured(scale, design, workload)
    samples = [e for e in events if isinstance(e, EpochSample)]
    faults = [e for e in events if isinstance(e, PageFaultEvent)]
    problems: List[str] = []
    if not samples:
        return InvariantResult(
            "epoch-consistency", False, "no epoch samples emitted"
        )
    last = samples[-1]

    prev = EpochSample(0.0, epoch=-1, accesses=0.0, fast_hits=0.0,
                       swaps=0.0, faults=0)
    sums = {"accesses": 0.0, "fast_hits": 0.0, "swaps": 0.0, "faults": 0}
    for sample in samples:
        for name in sums:
            delta = getattr(sample, name) - getattr(prev, name)
            if delta < 0:
                problems.append(f"{name} decreased at epoch {sample.epoch}")
            sums[name] += delta
        prev = sample
    for name, total in sums.items():
        if total != getattr(last, name):
            problems.append(
                f"per-epoch {name} deltas sum to {total}, "
                f"final cumulative is {getattr(last, name)}"
            )

    measured = scale.accesses_per_core * scale.num_copies
    if last.accesses != measured:
        problems.append(
            f"final accesses {last.accesses} != measured window {measured}"
        )
    rate = last.fast_hits / last.accesses if last.accesses else 0.0
    if rate != result.fast_hit_rate:
        problems.append(
            f"sampled hit rate {rate} != result {result.fast_hit_rate}"
        )
    if last.swaps != result.swaps:
        problems.append(f"sampled swaps {last.swaps} != result {result.swaps}")
    if len(faults) != last.faults:
        problems.append(
            f"{len(faults)} page-fault events vs sampled tally {last.faults}"
        )

    recorder = TimelineRecorder()
    for event in events:
        recorder(event)
    if recorder.epochs != len(samples):
        problems.append(
            f"timeline folded {recorder.epochs} epochs from "
            f"{len(samples)} samples"
        )
    swap_events = sum(1 for e in events if isinstance(e, SegmentSwap))
    timeline_swaps = sum(recorder.timeline.series("swaps"))
    if timeline_swaps != swap_events:
        problems.append(
            f"timeline swap total {timeline_swaps} != "
            f"{swap_events} swap events"
        )
    return InvariantResult(
        "epoch-consistency", not problems, "; ".join(problems)
    )


def check_warmup_boundary(
    scale: Any, design: str, workload: str
) -> InvariantResult:
    """Kernel parity holds at awkward warmup boundaries.

    The batched kernels must cut the measured window at exactly the
    scalar loop's record — including a zero-length warmup and a
    one-access warmup that ends mid-chunk.
    """
    decision = kernel_decision(design, scale.config())
    if decision.kernel == "scalar":
        return InvariantResult(
            "warmup-boundary", True, f"skipped: {decision.reason}"
        )
    problems: List[str] = []
    for warmup in (0, 1):
        probe = dataclasses.replace(scale, warmup_per_core=warmup)
        reference, ref_events = _captured(
            probe, design, workload, kernel="scalar"
        )
        fast, fast_events = _captured(
            probe, design, workload, kernel=decision.kernel
        )
        if result_digest(reference) != result_digest(fast) or events_digest(
            ref_events
        ) != events_digest(fast_events):
            problems.append(
                f"{decision.kernel} diverges from scalar at warmup={warmup}"
            )
    return InvariantResult(
        "warmup-boundary", not problems, "; ".join(problems)
    )


def check_coalesced_bytes(
    scale: Any, design: str, workload: str, *, clients: int = 3
) -> InvariantResult:
    """Identical concurrent serve requests share one byte-identical
    response body."""
    from repro.serve import Client, ServerThread

    payload = dict(_serve_request(scale, design, workload), wait=True)
    bodies: List[bytes] = [b""] * clients
    errors: List[str] = []

    with tempfile.TemporaryDirectory() as tmp:
        with ServerThread(
            port=0, jobs=1, cache=None, checkpoint_dir=Path(tmp)
        ) as server:
            def fetch(slot: int) -> None:
                try:
                    client = Client("127.0.0.1", server.port)
                    _, _, raw = client.request(
                        "POST", "/v1/simulate", payload
                    )
                    bodies[slot] = raw
                except Exception as exc:  # pragma: no cover — network
                    errors.append(f"client {slot}: {exc!r}")

            threads = [
                threading.Thread(target=fetch, args=(slot,))
                for slot in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

    if errors:
        return InvariantResult("coalesced-bytes", False, "; ".join(errors))
    identical = len(set(bodies)) == 1 and bodies[0] != b""
    return InvariantResult(
        "coalesced-bytes",
        identical,
        "" if identical else
        f"{len(set(bodies))} distinct response bodies across "
        f"{clients} identical requests",
    )


def run_invariants(
    scale: Any,
    design: str,
    workload: str,
    *,
    serve: bool = True,
) -> List[InvariantResult]:
    """The metamorphic pack for one cell."""
    invariants = [
        check_seed_determinism(scale, design, workload),
        check_telemetry_transparency(scale, design, workload),
        check_epoch_consistency(scale, design, workload),
        check_warmup_boundary(scale, design, workload),
    ]
    if serve:
        invariants.append(check_coalesced_bytes(scale, design, workload))
    return invariants


def run_cell_oracles(
    scale: Any,
    design: str,
    workload: str,
    *,
    pool: bool = True,
    serve: bool = True,
    invariants: bool = True,
) -> CellVerdict:
    """Differential paths plus (optionally) the metamorphic pack."""
    if design not in REGISTRY:
        raise KeyError(f"unknown design {design!r}")
    verdict = CellVerdict(design=design, workload=workload)
    verdict.paths = run_execution_paths(
        scale, design, workload, pool=pool, serve=serve
    )
    if invariants:
        verdict.invariants = run_invariants(
            scale, design, workload, serve=serve
        )
    return verdict


__all__ = [
    "CellVerdict",
    "InvariantResult",
    "PATH_CACHE_COLD",
    "PATH_CACHE_WARM",
    "PATH_POOL_ARENA",
    "PATH_SCALAR",
    "PATH_SERIAL",
    "PATH_SERVE",
    "PathResult",
    "check_coalesced_bytes",
    "check_epoch_consistency",
    "check_seed_determinism",
    "check_telemetry_transparency",
    "check_warmup_boundary",
    "run_cell_oracles",
    "run_execution_paths",
    "run_invariants",
]
