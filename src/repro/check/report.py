"""The schema-versioned ``CHECK_report.json`` record.

One check run produces one report: per-cell golden verdicts, per-path
digests, metamorphic invariant outcomes, and fuzz results, plus enough
provenance (seed, sample, scale identity, package version) to replay
the run exactly.  CI uploads the file as an artifact; the schema
version gates consumers the same way the result and bench schemas do.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.check.fuzz import FuzzOutcome
from repro.check.oracle import InvariantResult, PathResult

REPORT_SCHEMA_VERSION = 1

#: Golden comparison statuses.
GOLDEN_MATCH = "match"
GOLDEN_MISMATCH = "mismatch"
GOLDEN_MISSING = "missing"
GOLDEN_BLESSED = "blessed"


@dataclass
class CellReport:
    """One cell's full verdict."""

    design: str
    workload: str
    result_digest: str
    events_digest: str
    golden_status: str
    golden_detail: str = ""
    paths: List[PathResult] = field(default_factory=list)
    invariants: List[InvariantResult] = field(default_factory=list)

    @property
    def paths_agree(self) -> bool:
        results = {p.result_digest for p in self.paths}
        events = {
            p.events_digest for p in self.paths if p.events_digest is not None
        }
        return len(results) <= 1 and len(events) <= 1

    @property
    def passed(self) -> bool:
        return (
            self.golden_status in (GOLDEN_MATCH, GOLDEN_BLESSED)
            and self.paths_agree
            and all(i.passed for i in self.invariants)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "workload": self.workload,
            "result_digest": self.result_digest,
            "events_digest": self.events_digest,
            "golden": {
                "status": self.golden_status,
                "detail": self.golden_detail,
            },
            "paths": [p.to_dict() for p in self.paths],
            "paths_agree": self.paths_agree,
            "invariants": [i.to_dict() for i in self.invariants],
            "passed": self.passed,
        }


@dataclass
class CheckReport:
    """The whole run."""

    version: str
    scale: Dict[str, Any]
    seed: int
    sample: int
    bless: bool
    goldens_dir: str
    cells: List[CellReport] = field(default_factory=list)
    fuzz: List[FuzzOutcome] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        return (
            self.error is None
            and all(cell.passed for cell in self.cells)
            and all(outcome.passed for outcome in self.fuzz)
        )

    def summary(self) -> Dict[str, Any]:
        failed = [c for c in self.cells if not c.passed]
        return {
            "cells": len(self.cells),
            "cells_failed": len(failed),
            "paths": sum(len(c.paths) for c in self.cells),
            "invariants": sum(len(c.invariants) for c in self.cells),
            "fuzz_cases": len(self.fuzz),
            "fuzz_failed": sum(1 for f in self.fuzz if not f.passed),
            "passed": self.passed,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "version": self.version,
            "scale": self.scale,
            "seed": self.seed,
            "sample": self.sample,
            "bless": self.bless,
            "goldens_dir": self.goldens_dir,
            "summary": self.summary(),
            "cells": [cell.to_dict() for cell in self.cells],
            "fuzz": [outcome.to_dict() for outcome in self.fuzz],
            "error": self.error,
        }

    def write(self, path: Path | str) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path


__all__ = [
    "GOLDEN_BLESSED",
    "GOLDEN_MATCH",
    "GOLDEN_MISMATCH",
    "GOLDEN_MISSING",
    "REPORT_SCHEMA_VERSION",
    "CellReport",
    "CheckReport",
]
