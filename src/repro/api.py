"""Stable public facade for the CHAMELEON reproduction (API v3).

Everything a downstream script or notebook needs lives here, with one
spelling per concept and keyword-only configuration arguments:

* :func:`scaled_config` — a paper-ratio :class:`SystemConfig` at
  laptop scale;
* :func:`designs` / :func:`workloads` / :func:`benchmark` — enumerate
  the Table I design registry and the Table II benchmark suite;
* :func:`build_design` / :func:`build_workload` — construct a
  :class:`MemoryArchitecture` or :class:`MultiprogramWorkload`;
* :func:`simulate` — one (design, workload) cell, accepting either
  registry labels / benchmark names or pre-built objects;
* :func:`sweep` — a full design × workload grid through the
  fault-tolerant parallel runtime (shared-memory trace arena, result
  cache, checkpoint journal), returning a :class:`SweepOutcome`;
* :class:`ServeClient` / :class:`SimRequest` / :class:`SweepRequest` —
  talk to a running ``repro.serve`` simulation service (see
  docs/SERVING.md).

Compatibility policy: names exported here — and their call
signatures, frozen by ``tests/test_public_api.py`` — only change with
a deprecation cycle of at least one minor release (warn in ``1.x``,
remove in ``1.x+1`` at the earliest); see docs/API.md.  Modules
outside this facade (``repro.sim``, ``repro.runtime``, ...) are
importable and stable in practice, but only :mod:`repro.api` carries
the guarantee.

Quickstart::

    from repro import api

    result = api.simulate(design="Chameleon-Opt", workload="mcf")
    print(result.fast_hit_rate, result.geomean_ipc)

    outcome = api.sweep(designs=("PoM", "Chameleon-Opt"), jobs=4)
    print(outcome.metrics.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro._version import __version__ as __version__
from repro.config import (
    GB as GB,
    KB as KB,
    MB as MB,
    DEFAULT_SEGMENT_BYTES,
    SystemConfig as SystemConfig,
)
from repro.config import scaled_config as _scaled_config
from repro.arch.base import MemoryArchitecture as MemoryArchitecture
from repro.sim import SimulationResult as SimulationResult
from repro.sim import simulate as _simulate
from repro.workloads import (
    TABLE2_BENCHMARKS,
    BenchmarkSpec as BenchmarkSpec,
    MultiprogramWorkload as MultiprogramWorkload,
)
from repro.workloads import benchmark as _benchmark
from repro.workloads import build_workload as _build_workload
from repro.experiments.designs import (
    CATEGORIES as CATEGORIES,
    REGISTRY,
    DesignSpec as DesignSpec,
)
from repro.experiments.runner import Scale as Scale
from repro.runtime import (
    ResultCache,
    SweepExecutor,
    SweepMetrics as SweepMetrics,
)
from repro.serve.client import Client as ServeClient
from repro.serve.protocol import (
    SimRequest as SimRequest,
    SweepRequest as SweepRequest,
)
from repro.telemetry import (
    EventBus as EventBus,
    EventLog as EventLog,
    TelemetryEvent,
    TimelineRecorder as TimelineRecorder,
)
from repro.cachesim import (
    CacheHierarchy as CacheHierarchy,
    CoherentHierarchy as CoherentHierarchy,
)
from repro.trace.io import read_trace as read_trace
from repro.trace.io import write_trace as write_trace
from repro.trace.stats import characterize as characterize
from repro.osmodel.longrun import (
    LongRunSimulator as LongRunSimulator,
    WorkloadSpec as WorkloadSpec,
    improvement_percent as improvement_percent,
)

#: Version of this facade.  Bumped only on a breaking surface change
#: (which itself requires a deprecation cycle first).  v3 adds the
#: serving surface (``ServeClient``/``SimRequest``/``SweepRequest``)
#: and ``sweep(timeout=, retries=)`` — strictly additive; every v2
#: call keeps working unchanged.
API_VERSION = 3


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

def scaled_config(
    *,
    fast_mb: float = 4.0,
    ratio: int = 5,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
) -> SystemConfig:
    """Paper-ratio system at reduced scale (Table I shrunk uniformly).

    ``fast_mb`` is the stacked-DRAM capacity; off-chip capacity is
    ``fast_mb * ratio`` (the paper's 4GB:20GB split is ``ratio=5``).
    """
    return _scaled_config(
        fast_mb=fast_mb, ratio=ratio, segment_bytes=segment_bytes
    )


# ----------------------------------------------------------------------
# Registry views
# ----------------------------------------------------------------------

def designs(
    *,
    figure: Optional[str] = None,
    category: Optional[str] = None,
) -> Tuple[DesignSpec, ...]:
    """Registered design specs — all of them, one figure's line-up in
    plot order, or one category (``hardware``/``baseline``/``os``)."""
    if figure is not None and category is not None:
        raise ValueError("pass at most one of figure= and category=")
    if figure is not None:
        return REGISTRY.by_figure(figure)
    if category is not None:
        return REGISTRY.by_category(category)
    return tuple(REGISTRY)


def workloads() -> Tuple[BenchmarkSpec, ...]:
    """The Table II benchmark suite, in table order."""
    return tuple(TABLE2_BENCHMARKS)


def benchmark(name: str) -> BenchmarkSpec:
    """Look a benchmark up by its Table II name (KeyError if unknown)."""
    return _benchmark(name)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

def build_design(
    label: str,
    config: Optional[SystemConfig] = None,
) -> MemoryArchitecture:
    """Instantiate a registered design on ``config`` (default:
    :func:`scaled_config`)."""
    if config is None:
        config = scaled_config()
    return REGISTRY.get(label).factory(config)


def build_workload(
    name: Union[str, BenchmarkSpec],
    *,
    config: Optional[SystemConfig] = None,
    num_copies: int = 12,
    scattered: bool = True,
    seed: int = 0,
    footprint_override_fraction: Optional[float] = None,
    exclude_segments: Optional[set] = None,
) -> MultiprogramWorkload:
    """Place a benchmark's footprint on ``config`` and split it into
    ``num_copies`` rate-mode copies (the paper runs 12).

    ``footprint_override_fraction`` replaces the Table II footprint
    with a fraction of total capacity (sensitivity/co-tenancy
    scenarios); ``exclude_segments`` keeps the placement off another
    workload's segments.
    """
    if config is None:
        config = scaled_config()
    spec = _benchmark(name) if isinstance(name, str) else name
    return _build_workload(
        config,
        spec,
        num_copies=num_copies,
        scattered=scattered,
        seed=seed,
        footprint_override_fraction=footprint_override_fraction,
        exclude_segments=exclude_segments,
    )


# ----------------------------------------------------------------------
# Simulation
# ----------------------------------------------------------------------

def simulate(
    *,
    design: Union[str, MemoryArchitecture],
    workload: Union[str, MultiprogramWorkload],
    config: Optional[SystemConfig] = None,
    accesses_per_core: int = 2000,
    warmup_per_core: Optional[int] = None,
    num_copies: int = 12,
    seed: int = 0,
    kernel: str = "auto",
    apply_isa: bool = True,
    telemetry: Optional[EventBus] = None,
) -> SimulationResult:
    """Run one (design, workload) cell and summarise.

    ``design`` is a registry label or a pre-built architecture;
    ``workload`` is a Table II name or a pre-built workload.  String
    forms are resolved against ``config`` (default
    :func:`scaled_config`); pre-built objects are used as-is and
    ``config``/``num_copies``/``seed`` do not apply to them.
    """
    if config is None:
        config = scaled_config()
    architecture = (
        build_design(design, config) if isinstance(design, str) else design
    )
    built = (
        build_workload(
            workload, config=config, num_copies=num_copies, seed=seed
        )
        if isinstance(workload, str)
        else workload
    )
    return _simulate(
        architecture,
        built,
        accesses_per_core=accesses_per_core,
        apply_isa=apply_isa,
        warmup_per_core=warmup_per_core,
        telemetry=telemetry,
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepOutcome:
    """Everything one :func:`sweep` produced.

    ``results`` maps ``(design label, workload name)`` to the cell's
    :class:`SimulationResult`; ``metrics`` is the runtime's counter
    block (``metrics.summary()`` is the CLI's ``[runtime]`` line);
    ``events`` holds per-cell telemetry streams when the sweep ran
    with ``audit=True``.
    """

    results: Mapping[Tuple[str, str], SimulationResult]
    metrics: SweepMetrics
    events: Mapping[Tuple[str, str], List[TelemetryEvent]] = field(
        default_factory=dict
    )

    def result(self, design: str, workload: str) -> SimulationResult:
        """One cell, with a helpful error for unknown keys."""
        try:
            return self.results[(design, workload)]
        except KeyError:
            known = ", ".join(sorted({d for d, _ in self.results}))
            raise KeyError(
                f"no cell ({design!r}, {workload!r}); designs swept: {known}"
            ) from None

    def designs(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(d for d, _ in self.results))

    def workloads(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(w for _, w in self.results))


def sweep(
    *,
    designs: Optional[Sequence[str]] = None,
    scale: Optional[Scale] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    audit: bool = False,
    arena: bool = True,
    arena_budget: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> SweepOutcome:
    """Simulate a design × workload grid through the sweep runtime.

    Defaults: every registered design, the default :class:`Scale`,
    serial execution, no persistent cache.  ``jobs>1`` fans out over
    supervised worker processes (results are bit-identical at any
    worker count); ``cache_dir`` enables the content-addressed disk
    cache; ``arena`` shares precompiled traces with workers over
    shared memory (automatic fallback when unavailable); ``timeout``
    (seconds per cell) and ``retries`` (re-dispatches before a cell is
    abandoned) tune the runtime's fault tolerance — ``None`` keeps the
    runtime defaults.
    """
    if designs is None:
        designs = REGISTRY.labels()
    if scale is None:
        scale = Scale()
    cache = ResultCache(Path(cache_dir)) if cache_dir is not None else None
    executor = SweepExecutor(
        jobs=jobs,
        cache=cache,
        audit=audit,
        arena=arena,
        arena_budget=arena_budget,
        timeout=timeout,
        retries=retries,
    )
    results: Dict[Tuple[str, str], SimulationResult] = dict(
        executor.run(scale, designs)
    )
    return SweepOutcome(
        results=results,
        metrics=executor.metrics,
        events=dict(executor.events),
    )


__all__ = [
    "API_VERSION",
    "BenchmarkSpec",
    "CATEGORIES",
    "CacheHierarchy",
    "CoherentHierarchy",
    "DesignSpec",
    "EventBus",
    "EventLog",
    "GB",
    "KB",
    "LongRunSimulator",
    "MB",
    "MemoryArchitecture",
    "MultiprogramWorkload",
    "Scale",
    "ServeClient",
    "SimRequest",
    "SimulationResult",
    "SweepMetrics",
    "SweepOutcome",
    "SweepRequest",
    "SystemConfig",
    "TimelineRecorder",
    "WorkloadSpec",
    "__version__",
    "benchmark",
    "build_design",
    "build_workload",
    "characterize",
    "designs",
    "improvement_percent",
    "read_trace",
    "scaled_config",
    "simulate",
    "sweep",
    "workloads",
    "write_trace",
]
