"""Chameleon and Chameleon-Opt: the paper's contribution.

Both designs extend the hardware-managed PoM baseline
(:class:`repro.arch.pom.PoMArchitecture`) with the augmented SRRT of
Figure 7 — per-group Alloc Bit Vector, mode bit and dirty bit — driven
by the ISA-Alloc / ISA-Free instructions the OS issues from its
allocator (Algorithms 1-2):

* :class:`repro.core.chameleon.ChameleonArchitecture` — the basic
  co-design: a segment group whose *stacked* segment is OS-free flips
  into cache mode and uses the stacked slot as a hardware-managed,
  threshold-free cache for the group's off-chip segments (Figures 8-11);
* :class:`repro.core.chameleon_opt.ChameleonOptArchitecture` — the
  optimised co-design: free *off-chip* segments are harvested too, by
  proactively remapping the allocated stacked resident into a free
  off-chip slot so the group stays in cache mode while *any* segment of
  the group is free (Figures 12-14);
* :class:`repro.core.shared_pool.ChameleonSharedPool` — the Section VI-G
  future-work extension: OS-exposed ABV state lets groups with no free
  segment borrow cache slots from groups with more than one.
"""

from repro.core.chameleon import ChameleonArchitecture
from repro.core.chameleon_opt import ChameleonOptArchitecture
from repro.core.shared_pool import ChameleonSharedPool

__all__ = [
    "ChameleonArchitecture",
    "ChameleonOptArchitecture",
    "ChameleonSharedPool",
]
