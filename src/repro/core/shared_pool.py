"""Cross-group free-segment sharing (the Section VI-G future work).

Segment-restricted remapping caps Chameleon's cache capacity: a fully
allocated group cannot cache even when a neighbouring group has several
free segments.  The paper sketches exposing the per-group ABV state to
the OS so free segments can be shared across groups; this module
implements that extension in hardware-model form:

* a *donor* group is a cache-mode group with at least two free segments
  that is not currently caching anything — its stacked slot is idle;
* a fully allocated (PoM-mode) *donee* group may borrow a donor's
  stacked slot; its competing-counter winner is then *filled* into the
  borrowed slot instead of swapped, saving the swap bandwidth entirely;
* a borrow is revoked (with writeback when dirty) as soon as the donor
  leaves cache mode or starts caching for itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.remap import GroupState, Mode
from repro.core.chameleon_opt import ChameleonOptArchitecture


@dataclass
class _Borrow:
    donor_group: int
    cached_local: Optional[int] = None
    dirty: bool = False
    #: Per-local miss counts feeding the borrowed slot, independent of
    #: the group's main counter (which captures the hottest segment in
    #: the group's own stacked slot).
    miss_counts: Dict[int, int] = None  # type: ignore[assignment]
    #: Misses to wait after a fill before the next fill (thrash pacing,
    #: mirroring the cache-mode fill cooldown).
    cooldown: int = 0

    def __post_init__(self) -> None:
        if self.miss_counts is None:
            self.miss_counts = {}


class ChameleonSharedPool(ChameleonOptArchitecture):
    """Chameleon-Opt plus cross-group stacked-slot borrowing."""

    name = "chameleon_shared"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._borrows: Dict[int, _Borrow] = {}      # donee -> borrow
        self._lent: Dict[int, int] = {}             # donor -> donee
        # Groups never touched by ISA or demand traffic still sit in
        # their boot state (cache mode, fully free): they are donors.
        self._next_virgin_group = 0

    # ------------------------------------------------------------------
    # Donor management
    # ------------------------------------------------------------------

    def _is_donor_candidate(self, group: int, state: GroupState) -> bool:
        return (
            state.mode is Mode.CACHE
            and state.cached is None
            and group not in self._lent
            and state.size - state.allocated_count >= 2
        )

    def _find_donor(self, exclude: int) -> Optional[int]:
        for group, state in self._groups.items():
            if group != exclude and self._is_donor_candidate(group, state):
                return group
        # Fall back to a never-touched group, which is free by
        # construction (boot state).
        while self._next_virgin_group < self.geometry.num_groups:
            group = self._next_virgin_group
            self._next_virgin_group += 1
            if group == exclude or group in self._lent:
                continue
            if group in self._groups:
                continue  # already materialised and judged above
            state = self.group_state(group)
            if self._is_donor_candidate(group, state):
                return group
        return None

    def _revoke_if_invalid(self, donee: int, now_ns: float) -> None:
        borrow = self._borrows.get(donee)
        if borrow is None:
            return
        donor_state = self._groups.get(borrow.donor_group)
        donor_ok = (
            donor_state is not None
            and donor_state.mode is Mode.CACHE
            and donor_state.cached is None
        )
        if donor_ok:
            return
        self._revoke(donee, now_ns)

    def _revoke(self, donee: int, now_ns: float) -> None:
        borrow = self._borrows.pop(donee)
        self._lent.pop(borrow.donor_group, None)
        if borrow.cached_local is not None and borrow.dirty:
            state = self.group_state(donee)
            _, fast_address = self.geometry.slot_device_address(
                borrow.donor_group, 0, 0
            )
            _, slow_address = self.geometry.slot_device_address(
                donee, state.slot_of[borrow.cached_local], 0
            )
            seg = self.geometry.segment_bytes
            self.memory.fast.transfer(fast_address, seg, now_ns)
            self.memory.slow.transfer(slow_address, seg, now_ns)
            self.counters.add("swap.swaps")
        self.counters.add("shared_pool.revocations")

    # ------------------------------------------------------------------
    # Demand path: overlay borrowed-slot hits over the PoM path
    # ------------------------------------------------------------------

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        segment, group, local, offset = self._translate(address)
        state = self._groups.get(group)
        if state is None:
            state = self.group_state(group)
        if state.mode is not Mode.POM:
            return self._cache_mode_access(
                group, state, segment, local, offset, now_ns, is_write
            )

        self._revoke_if_invalid(group, now_ns)
        borrow = self._borrows.get(group)
        if borrow is not None and borrow.cached_local == local:
            _, cache_address = self.geometry.slot_device_address(
                borrow.donor_group, 0, offset
            )
            latency = self.memory.access(
                True, cache_address, now_ns, is_write, segment_id=segment
            )
            if is_write:
                borrow.dirty = True
            self.counters.add("shared_pool.borrow_hits")
            return latency, True

        latency, fast_hit = self._pom_timing(
            segment, group, local, offset, state, now_ns, is_write
        )
        if not fast_hit:
            self._maybe_borrow_fill(group, state, local, now_ns)
        return latency, fast_hit

    # ------------------------------------------------------------------

    def _maybe_borrow_fill(
        self, group: int, state: GroupState, local: int, now_ns: float
    ) -> None:
        """After a slow miss in PoM mode, track the segment in the
        borrowed slot's own competing tracker and fill when it wins.

        The group's main counter feeds the group's own stacked slot
        (the hottest segment); the borrowed slot independently captures
        the runner-up."""
        if state.slot_of[local] == 0:
            return  # the access was remapped to fast meanwhile
        borrow = self._borrows.get(group)
        if borrow is None:
            donor = self._find_donor(exclude=group)
            if donor is None:
                return
            borrow = _Borrow(donor_group=donor)
            self._borrows[group] = borrow
            self._lent[donor] = group
            self.counters.add("shared_pool.borrows")
        if borrow.cached_local == local:
            return
        if borrow.cooldown > 0:
            borrow.cooldown -= 1
            return
        misses = borrow.miss_counts.get(local, 0) + 1
        borrow.miss_counts[local] = misses
        if misses < max(2, self.swap_threshold):
            return
        borrow.miss_counts.clear()
        borrow.cooldown = max(1, self.swap_cooldown)
        _, fast_address = self.geometry.slot_device_address(
            borrow.donor_group, 0, 0
        )
        _, slow_address = self.geometry.slot_device_address(
            group, state.slot_of[local], 0
        )
        writeback = borrow.cached_local is not None and borrow.dirty
        if writeback:
            self.counters.add("swap.swaps")
        self.memory.start_fill(
            fast_address=fast_address,
            slow_address=slow_address,
            now_ns=now_ns,
            slow_segment_id=self.geometry.segment_at(group, local),
            writeback=writeback,
        )
        borrow.cached_local = local
        borrow.dirty = False
        self.counters.add("shared_pool.fills")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def active_borrows(self) -> int:
        return len(self._borrows)
