"""Chameleon-Opt: harvest free space anywhere in the system
(Section V-C, Figures 12-14).

The basic design wastes free *off-chip* segments: a group whose stacked
segment is allocated cannot cache even when off-chip segments of the
same group are free.  Chameleon-Opt proactively remaps segments so that
whenever *any* segment of a group is free, a free segment occupies the
stacked slot — leaving it available as cache — and the group operates
in cache mode until every segment is allocated.

Invariant maintained by every transition: **a group is in cache mode
iff at least one of its segments is OS-free, and in cache mode the
nominal resident of the stacked slot is a free segment** (so it can
never produce a stacked hit of its own, Figure 13's discussion).
"""

from __future__ import annotations

from repro.arch.remap import GroupState, Mode
from repro.core.chameleon import ChameleonArchitecture
from repro.telemetry.events import SegmentSwap


class ChameleonOptArchitecture(ChameleonArchitecture):
    """Chameleon with proactive remapping into free off-chip segments."""

    name = "chameleon_opt"

    # ------------------------------------------------------------------
    # ISA-Alloc (Figure 12)
    # ------------------------------------------------------------------

    def isa_alloc(self, segment_id: int) -> None:
        group, local = self.geometry.group_and_local(segment_id)
        state = self.group_state(group)
        self.counters.add("isa.alloc_seen")

        if state.slot_of[local] == 0:
            # P currently resides in the stacked slot (in cache mode the
            # slot's resident is by invariant a free segment — P itself,
            # until this allocation).  If any *other* segment is free,
            # proactively remap P into that free off-chip slot so the
            # stacked slot stays cacheable (flow 1-2-3-4-7-8, Figure 13).
            free_local = self._free_offchip_local(state, exclude=local)
            if free_local is not None:
                state.swap_slots(0, state.slot_of[free_local])
                self.counters.add("chameleon_opt.proactive_remaps")
                # P is freshly allocated: no valid data to move, only the
                # security clear of its new location.
                self._clear_segment(group, slot=state.slot_of[local])
                bus = self.telemetry
                if bus.enabled:
                    bus.emit(
                        SegmentSwap(
                            time_ns=0.0,
                            group=group,
                            moved_local=free_local,
                            displaced_local=local,
                            reason="proactive",
                        )
                    )

        state.abv[local] = True
        if all(state.abv):
            # Flow ...-10-6: no free segment left anywhere in the group.
            if state.cached is not None and state.dirty:
                self._evict_writeback(group, state)
            self._clear_segment(group, slot=0)
            self._enter_pom(group, state)
        # Otherwise flow ...-10-11: continue in cache mode.
        self._emit_isa(segment_id, group, local, alloc=True)

    # ------------------------------------------------------------------
    # ISA-Free (Figure 14)
    # ------------------------------------------------------------------

    def isa_free(self, segment_id: int) -> None:
        group, local = self.geometry.group_and_local(segment_id)
        state = self.group_state(group)
        self.counters.add("isa.free_seen")
        state.abv[local] = False

        if state.mode is Mode.CACHE:
            # Flows ...-6 / ...-14: already caching; if the freed segment
            # was the one cached, its contents are dead — drop them.
            if state.cached == local:
                state.cached = None
                state.dirty = False
            self._emit_isa(segment_id, group, local, alloc=False)
            return

        # Group was in PoM mode; the free segment re-enables cache mode.
        freed_slot = state.slot_of[local]
        if freed_slot != 0:
            # Flow 1-2-3-4-5-7 / 12-13: the freed segment lives off-chip;
            # proactively move the allocated stacked resident into the
            # freed slot so the *stacked* slot becomes the free one.
            _, fast_address = self.geometry.slot_device_address(group, 0, 0)
            _, slow_address = self.geometry.slot_device_address(
                group, freed_slot, 0
            )
            self.memory.start_swap(
                fast_address=fast_address,
                slow_address=slow_address,
                now_ns=0.0,
                fast_segment_id=self.geometry.segment_at(
                    group, state.resident_of_fast()
                ),
                slow_segment_id=segment_id,
            )
            state.swap_slots(0, freed_slot)
            self.counters.add("chameleon_opt.proactive_remaps")
            self.counters.add("chameleon.restore_swaps")
            bus = self.telemetry
            if bus.enabled:
                bus.emit(
                    SegmentSwap(
                        time_ns=0.0,
                        group=group,
                        moved_local=local,
                        displaced_local=state.seg_at[freed_slot],
                        reason="proactive",
                    )
                )
        self._clear_segment(group, slot=0)
        self._enter_cache(group, state)
        self._emit_isa(segment_id, group, local, alloc=False)

    # ------------------------------------------------------------------

    @staticmethod
    def _free_offchip_local(
        state: GroupState, exclude: int
    ) -> int | None:
        """Lowest-numbered free segment other than ``exclude`` whose slot
        is off-chip (slot != 0)."""
        for candidate in range(state.size):
            if candidate == exclude or state.abv[candidate]:
                continue
            if state.slot_of[candidate] != 0:
                return candidate
        return None
