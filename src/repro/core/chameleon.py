"""Basic Chameleon co-design (Section V-B, Figures 8-11).

Chameleon inherits the whole PoM machinery — segment-restricted
remapping, shared competing counters, fast swaps — and adds the SRRT
extensions of Figure 7.  The basic design only harvests free space in
the *stacked* DRAM: a group whose stacked segment has been ISA-Freed
operates in cache mode, where the stacked slot caches the group's
off-chip segments with no swap threshold (fill on first access, dirty
bit deciding writebacks).  ISA-Alloc of the stacked segment hands the
slot back to the OS and returns the group to PoM mode.

Accounting follows the paper: a *clean* cache-mode fill moves one
segment and is counted as a fill; evicting a *dirty* cached segment
costs a writeback plus the fill — bandwidth on both memories — and is
"effectively still a swap" (Section VI-B), so it increments the swap
counters exactly like a PoM swap.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.arch.pom import DEFAULT_SWAP_THRESHOLD, PoMArchitecture
from repro.arch.remap import GroupState, Mode
from repro.stats import CounterSet
from repro.telemetry.events import (
    IsaAllocEvent,
    ModeTransition,
    WritebackEvent,
)


#: Cache-mode fill policies.  ``"protect"`` evicts the cached incumbent
#: only after it has gone ``PROTECT_MISS_STREAK`` consecutive group
#: misses without a hit (thrash protection for low-spatial-locality
#: patterns: a still-hot incumbent is never ping-ponged out, a cold one
#: is replaced within a couple of misses — far quicker than the PoM
#: competing-counter threshold).  ``"always"`` fills on every miss.
FILL_POLICIES = ("protect", "always")

#: Consecutive incumbent-missing group misses before a fill replaces a
#: recently hit incumbent under the "protect" policy.
PROTECT_MISS_STREAK = 3

#: Group accesses after a cache-mode fill before the next fill — half
#: the PoM swap cooldown, so cache mode adapts twice as fast as the
#: competing counter while still resisting thrash.
FILL_COOLDOWN_DIVISOR = 2


class ChameleonArchitecture(PoMArchitecture):
    """PoM + stacked-DRAM free-space caching, driven by ISA-Alloc/Free."""

    name = "chameleon"

    def __init__(
        self,
        config: SystemConfig,
        swap_threshold: int = DEFAULT_SWAP_THRESHOLD,
        swap_cooldown: int | None = None,
        fill_policy: str = "protect",
        counters: CounterSet | None = None,
    ) -> None:
        if fill_policy not in FILL_POLICIES:
            raise ValueError(
                f"fill_policy must be one of {FILL_POLICIES}, "
                f"got {fill_policy!r}"
            )
        kwargs = {} if swap_cooldown is None else {"swap_cooldown": swap_cooldown}
        super().__init__(config, swap_threshold, counters=counters, **kwargs)
        self.fill_policy = fill_policy

    # ------------------------------------------------------------------
    # Group state: Chameleon groups boot in cache mode (ABV all zero)
    # ------------------------------------------------------------------

    def group_state(self, group: int) -> GroupState:
        state = self._groups.get(group)
        if state is None:
            state = GroupState(
                size=self.geometry.segments_per_group, mode=Mode.CACHE
            )
            self._groups[group] = state
        return state

    # ------------------------------------------------------------------
    # ISA-Alloc (Figure 8)
    # ------------------------------------------------------------------

    def isa_alloc(self, segment_id: int) -> None:
        group, local = self.geometry.group_and_local(segment_id)
        state = self.group_state(group)
        self.counters.add("isa.alloc_seen")
        if local != 0:
            # Flow 1-2-4-5: off-chip alloc, continue in the previous mode.
            state.abv[local] = True
            self._emit_isa(segment_id, group, local, alloc=True)
            return

        # Stacked-DRAM address: the group is in cache mode (the stacked
        # segment was free) and may or may not be caching something.
        if state.cached is None:
            # Flow 1-2-3-7-8: caching nothing; just claim the slot.
            self._clear_segment(group, slot=0)
        else:
            # Flow 1-2-3-6-8: caching off-chip segment Q; write it back
            # if dirty, then claim the slot.
            if state.dirty:
                self._evict_writeback(group, state)
            state.cached = None
            state.dirty = False
            self._clear_segment(group, slot=0)
        state.abv[0] = True
        self._enter_pom(group, state)
        self._emit_isa(segment_id, group, local, alloc=True)

    # ------------------------------------------------------------------
    # ISA-Free (Figure 10)
    # ------------------------------------------------------------------

    def isa_free(self, segment_id: int) -> None:
        group, local = self.geometry.group_and_local(segment_id)
        state = self.group_state(group)
        self.counters.add("isa.free_seen")
        if local != 0:
            # Flow 1-2-4-5: off-chip free, continue in the previous mode.
            state.abv[local] = False
            self._emit_isa(segment_id, group, local, alloc=False)
            return

        # Stacked address: the group was operating in PoM mode.
        if state.slot_of[0] != 0:
            # Flow 1-2-3-6-8: the stacked segment is currently remapped
            # off-chip; proactively swap it back so the stacked slot is
            # the one being freed (Figure 11's example).
            self._swap_with_fast(
                group, state, local=0, now_ns=0.0, reason="restore"
            )
            self.counters.add("chameleon.restore_swaps")
        state.abv[0] = False
        self._clear_segment(group, slot=0)
        self._enter_cache(group, state)
        self._emit_isa(segment_id, group, local, alloc=False)

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        segment, group, local, offset = self._translate(address)
        state = self._groups.get(group)
        if state is None:
            state = self.group_state(group)
        if state.mode is Mode.POM:
            return self._pom_timing(
                segment, group, local, offset, state, now_ns, is_write
            )
        return self._cache_mode_access(
            group, state, segment, local, offset, now_ns, is_write
        )

    def _cache_mode_access(
        self,
        group: int,
        state: GroupState,
        segment: int,
        local: int,
        offset: int,
        now_ns: float,
        is_write: bool,
    ) -> tuple[float, bool]:
        if local == state.resident_of_fast() or local == state.cached:
            # Either the (free) stacked resident itself — tolerated for
            # robustness — or a cache hit on the cached segment.
            _, cache_address = self.geometry.slot_device_address(
                group, 0, offset
            )
            latency = self.memory.access(
                True, cache_address, now_ns, is_write, segment_id=segment
            )
            if local == state.cached:
                if is_write:
                    state.dirty = True
                state.miss_streak = 0
                self.counters.add("chameleon.cache_hits")
            return latency, True

        # Miss: access the segment at its current (off-chip) slot, then
        # fill it into the stacked slot — no competing-counter threshold
        # in cache mode; under the "protect" policy a referenced
        # incumbent survives one challenger before being evicted.
        slot = state.slot_of[local]
        in_fast, device_address = self.geometry.slot_device_address(
            group, slot, offset
        )
        latency = self.memory.access(
            in_fast, device_address, now_ns, is_write, segment_id=segment
        )
        self.counters.add("chameleon.cache_misses")
        if self.fill_policy != "always" and state.cooldown > 0:
            state.cooldown -= 1
        elif self._should_fill(state):
            self._fill_cache(group, state, local, now_ns, is_write)
        else:
            state.miss_streak += 1
            self.counters.add("chameleon.fills_skipped")
        return latency, in_fast

    def _should_fill(self, state: GroupState) -> bool:
        if state.cached is None or self.fill_policy == "always":
            return True
        return state.miss_streak >= PROTECT_MISS_STREAK

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------

    def _fill_cache(
        self,
        group: int,
        state: GroupState,
        local: int,
        now_ns: float,
        first_access_was_write: bool,
    ) -> None:
        writeback = state.cached is not None and state.dirty
        evicted = state.cached
        _, fast_address = self.geometry.slot_device_address(group, 0, 0)
        _, slow_address = self.geometry.slot_device_address(
            group, state.slot_of[local], 0
        )
        self.memory.start_fill(
            fast_address=fast_address,
            slow_address=slow_address,
            now_ns=now_ns,
            slow_segment_id=self.geometry.segment_at(group, local),
            writeback=writeback,
        )
        if writeback:
            # A dirty eviction consumes bandwidth on both memories and
            # is accounted as a swap (Section VI-B).
            self.counters.add("swap.swaps")
            self.counters.add("chameleon.dirty_evictions")
            bus = self.telemetry
            if bus.enabled:
                bus.emit(
                    WritebackEvent(time_ns=now_ns, group=group, local=evicted)
                )
        state.cached = local
        state.dirty = first_access_was_write
        state.miss_streak = 0
        state.cooldown = max(1, self.swap_cooldown // FILL_COOLDOWN_DIVISOR)
        self.counters.add("chameleon.fills")

    def _evict_writeback(self, group: int, state: GroupState) -> None:
        """Write the dirty cached segment back to its home slot."""
        assert state.cached is not None
        _, fast_address = self.geometry.slot_device_address(group, 0, 0)
        _, slow_address = self.geometry.slot_device_address(
            group, state.slot_of[state.cached], 0
        )
        seg = self.geometry.segment_bytes
        self.memory.fast.transfer(fast_address, seg, 0.0)
        self.memory.slow.transfer(slow_address, seg, 0.0)
        self.counters.add("swap.swaps")
        self.counters.add("chameleon.dirty_evictions")
        bus = self.telemetry
        if bus.enabled:
            bus.emit(
                WritebackEvent(time_ns=0.0, group=group, local=state.cached)
            )

    def _clear_segment(self, group: int, slot: int) -> None:
        """Security clearing on cache<->PoM transitions (Section V-D2)."""
        self.counters.add("chameleon.segments_cleared")

    # ------------------------------------------------------------------
    # Mode transitions
    # ------------------------------------------------------------------

    def _enter_pom(self, group: int, state: GroupState) -> None:
        if state.mode is not Mode.POM:
            state.mode = Mode.POM
            state.cached = None
            state.dirty = False
            state.miss_streak = 0
            self.counters.add("chameleon.to_pom")
            bus = self.telemetry
            if bus.enabled:
                bus.emit(
                    ModeTransition(time_ns=0.0, group=group, mode="pom")
                )

    def _enter_cache(self, group: int, state: GroupState) -> None:
        if state.mode is not Mode.CACHE:
            state.mode = Mode.CACHE
            state.cached = None
            state.dirty = False
            state.miss_streak = 0
            state.candidate = None
            state.count = 0
            self.counters.add("chameleon.to_cache")
            bus = self.telemetry
            if bus.enabled:
                bus.emit(
                    ModeTransition(time_ns=0.0, group=group, mode="cache")
                )

    def _emit_isa(
        self, segment_id: int, group: int, local: int, alloc: bool
    ) -> None:
        """Emit the ISA stream event once the handler's state settled
        (the auditor validates the group against the *post* state)."""
        bus = self.telemetry
        if bus.enabled:
            bus.emit(
                IsaAllocEvent(
                    time_ns=0.0,
                    segment=segment_id,
                    alloc=alloc,
                    group=group,
                    local=local,
                )
            )

    # ------------------------------------------------------------------
    # Reporting (Figures 16 and 21)
    # ------------------------------------------------------------------

    def mode_distribution(self) -> tuple[float, float]:
        """(cache-mode fraction, PoM-mode fraction) over touched groups."""
        if not self._groups:
            return 1.0, 0.0
        cache = sum(
            1 for state in self._groups.values() if state.mode is Mode.CACHE
        )
        total = len(self._groups)
        return cache / total, (total - cache) / total

    @property
    def touched_groups(self) -> int:
        return len(self._groups)
