"""Batches queued cells into sweep-executor runs.

The dispatcher is the bridge between the asyncio front half (scheduler,
HTTP handlers) and the synchronous, process-pool back half
(:class:`~repro.runtime.SweepExecutor`).  Its loop:

1. wait until the scheduler has pending work;
2. pull one compatible batch (:meth:`Scheduler.next_batch` — same
   scale, fair-share order);
3. run it as **one** sweep via
   :meth:`~repro.runtime.SweepExecutor.run_cells` on a worker thread
   (``run_in_executor``), so the event loop keeps serving reads,
   health checks, and coalescing duplicates onto the in-flight batch;
4. resolve each job's future with its canonical response bytes.

Failure semantics surface the PR-4 fault tolerance as structured
responses: the executor already retries crashes/timeouts/transient
errors internally; a :class:`~repro.runtime.SweepJobError` escaping it
means one cell exhausted its retry budget — that job fails with the
error's design/workload/attempt detail, while the batch's *other*
cells are re-queued (anything that finished before the abort was
already committed to the result cache, so the re-dispatch answers them
from disk rather than re-simulating).  A job whose batches die
:data:`MAX_JOB_ATTEMPTS` times fails outright rather than looping.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.runtime.executor import SweepExecutor
from repro.runtime.faults import SweepJobError
from repro.serve.metrics import ServerMetrics
from repro.serve.scheduler import Job, Scheduler
from repro.telemetry.auditor import InvariantViolation
from repro.telemetry.bus import EventBus, NullBus
from repro.telemetry.events import ServeEvent

#: Dispatch batches a single job may ride before it is failed outright
#: (guards against a cell that keeps killing its batch).
MAX_JOB_ATTEMPTS = 3

#: Default cap on cells per executor sweep.
DEFAULT_MAX_BATCH = 8


def error_payload(exc: BaseException) -> Dict[str, object]:
    """Structured error block for a failed job's response."""
    block: Dict[str, object] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, SweepJobError):
        block.update(
            design=exc.design,
            workload=exc.workload,
            attempts=exc.attempts,
            cause=type(exc.__cause__).__name__ if exc.__cause__ else None,
        )
    return block


class Dispatcher:
    """Pulls batches from the scheduler and runs them to completion."""

    def __init__(
        self,
        scheduler: Scheduler,
        executor: SweepExecutor,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        metrics: Optional[ServerMetrics] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.scheduler = scheduler
        self.executor = executor
        self.max_batch = max_batch
        self.metrics = metrics if metrics is not None else scheduler.metrics
        self.bus: EventBus | NullBus = bus if bus is not None else NullBus()
        self._wake = asyncio.Event()
        self._stop = False
        self._task: Optional[asyncio.Task] = None
        #: (config-relevant scale fields, design) -> KernelDecision.
        self._kernel_cache: Dict[tuple, tuple] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    def wake(self) -> None:
        """New work arrived (called after every successful admit)."""
        self._wake.set()

    async def stop(self) -> None:
        """Finish the in-flight batch (if any), then stop pulling.

        Queued jobs are left on the scheduler for the server's drain
        step to checkpoint.
        """
        self._stop = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None

    # -- the loop ------------------------------------------------------

    async def _run(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while not self._stop:
                batch = self.scheduler.next_batch(self.max_batch)
                if not batch:
                    break
                await self._dispatch(batch)
            if self._stop:
                return

    async def _dispatch(self, batch: List[Job]) -> None:
        scale = self._batch_scale(batch)
        cells = [job.cell for job in batch]
        by_cell = {job.cell: job for job in batch}
        for job in batch:
            job.attempts += 1
        self.metrics.batches += 1
        self.metrics.worker_cells += len(cells)
        self._record_kernels(scale, cells)
        if self.bus.enabled:
            self.bus.emit(
                ServeEvent(
                    0.0,
                    action="dispatch",
                    job=",".join(sorted(j.id for j in batch)),
                    queue_depth=self.scheduler.queue_depth,
                )
            )
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                None, self.executor.run_cells, scale, cells
            )
        except SweepJobError as exc:
            self._fail_cell(by_cell, (exc.design, exc.workload), exc)
            self._retry_survivors(by_cell)
        except (InvariantViolation, Exception) as exc:  # noqa: BLE001
            # Batch-level failure (bad scale, auditor violation, ...):
            # deterministic, so every cell in the batch gets the error.
            for job in batch:
                job.fail(error_payload(exc))
                self.scheduler.finish(job)
        else:
            for cell, result in results.items():
                job = by_cell.get(cell)
                if job is not None:
                    job.complete(result)
                    self.scheduler.finish(job)

    def _record_kernels(self, scale, cells: List[Tuple[str, str]]) -> None:
        """Tag each dispatched cell with the replay kernel its design
        resolves to (``/metrics`` ``dispatch.kernels``); decisions are
        memoised per (scale, design) since they never change."""
        from repro.experiments.designs import kernel_decision

        config = None
        for design, _ in cells:
            # Only fast_mb/ratio shape the SystemConfig the decision
            # depends on (benchmarks vary per batch, irrelevantly).
            key = (scale.fast_mb, scale.ratio, design)
            decision = self._kernel_cache.get(key)
            if decision is None:
                if config is None:
                    config = scale.config()
                decision = kernel_decision(design, config)
                self._kernel_cache[key] = decision
            self.metrics.record_kernel(decision)

    def _fail_cell(
        self,
        by_cell: Dict[Tuple[str, str], Job],
        cell: Tuple[str, str],
        exc: SweepJobError,
    ) -> None:
        job = by_cell.pop(cell, None)
        if job is not None:
            job.fail(error_payload(exc))
            self.scheduler.finish(job)

    def _retry_survivors(self, by_cell: Dict[Tuple[str, str], Job]) -> None:
        """Re-queue the batch's other cells (completed ones are in the
        result cache and will be served from it on re-dispatch)."""
        for job in by_cell.values():
            if job.attempts >= MAX_JOB_ATTEMPTS:
                job.fail(
                    {
                        "type": "DispatchExhausted",
                        "message": (
                            f"cell {job.request.design}/"
                            f"{job.request.workload} lost "
                            f"{job.attempts} dispatch batches"
                        ),
                    }
                )
                self.scheduler.finish(job)
            else:
                self.scheduler.requeue(job)
        if by_cell:
            self._wake.set()

    @staticmethod
    def _batch_scale(batch: List[Job]):
        """One Scale for the whole batch: the shared base fields (the
        batch is scale-compatible by construction) with ``benchmarks``
        listing the batch's distinct workloads — informational only,
        since :meth:`run_cells` executes exactly the cell list and the
        cache keys exclude the sibling tuple."""
        base = batch[0].request.scale()
        workloads = tuple(
            dict.fromkeys(job.request.workload for job in batch)
        )
        return dataclasses.replace(base, benchmarks=workloads)


__all__ = [
    "DEFAULT_MAX_BATCH",
    "Dispatcher",
    "MAX_JOB_ATTEMPTS",
    "error_payload",
]
