"""Drain checkpoint: the unserved queue, persisted across restarts.

On SIGTERM the server finishes its in-flight batch, then writes every
still-queued request to a :mod:`repro.runtime.journal`-style JSONL
file — a ``{"kind": "serve-queue", ...}`` header restating the wire
format, then one ``{"kind": "job", ...}`` line per queued request.  A
restarted server pointed at the same directory loads the file, deletes
it, and re-queues the requests; job digests are recomputed from the
request identity, so a client that was told "checkpointed, poll
``/v1/jobs/<id>``" finds its job under the same id.

The same torn-tail tolerance as the sweep journal applies on load:
parsing stops at the first line that is incomplete or malformed (a
kill mid-write costs the tail, never the file), and a header from a
different wire version discards the whole checkpoint rather than
guessing at its meaning.  Unlike the sweep journal the file is written
in one shot at drain time (staged + ``os.replace``), not appended
per-event — the queue is only ever persisted whole.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import List, Sequence

from repro._version import __version__
from repro.serve.protocol import (
    BadRequest,
    SimRequest,
    WIRE_VERSION,
)

#: Checkpoint file name inside the server's checkpoint directory.
CHECKPOINT_NAME = "serve-queue.jsonl"


class QueueCheckpoint:
    """Whole-queue snapshot in ``<root>/serve-queue.jsonl``."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / CHECKPOINT_NAME

    @property
    def exists(self) -> bool:
        return self.path.exists()

    # -- writing -------------------------------------------------------

    def write(self, requests: Sequence[SimRequest]) -> Path:
        """Persist the queue (fsynced, atomically published)."""
        self.root.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "serve-queue",
            "wire": WIRE_VERSION,
            "version": __version__,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for request in requests:
            lines.append(
                json.dumps(
                    {
                        "kind": "job",
                        "id": request.digest,
                        "request": request.to_dict(),
                    },
                    sort_keys=True,
                )
            )
        tmp = self.path.with_name(f".{CHECKPOINT_NAME}.{uuid.uuid4().hex}.tmp")
        try:
            with tmp.open("wb") as handle:
                handle.write(("\n".join(lines) + "\n").encode())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
        return self.path

    # -- loading -------------------------------------------------------

    def load(self) -> List[SimRequest]:
        """Queued requests from a previous drain (tolerates a torn
        tail; a missing or foreign-wire checkpoint recovers nothing)."""
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return []
        requests: List[SimRequest] = []
        header_seen = False
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn tail: trust nothing past it
            try:
                entry = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                break
            if not isinstance(entry, dict):
                break
            if not header_seen:
                if (
                    entry.get("kind") != "serve-queue"
                    or entry.get("wire") != WIRE_VERSION
                ):
                    return []  # foreign or incompatible checkpoint
                header_seen = True
                continue
            if entry.get("kind") != "job":
                break
            try:
                requests.append(SimRequest.from_dict(entry["request"]))
            except (BadRequest, KeyError, TypeError):
                break
        return requests

    def discard(self) -> None:
        """The queue was re-admitted (or served): drop the file."""
        self.path.unlink(missing_ok=True)


__all__ = ["CHECKPOINT_NAME", "QueueCheckpoint"]
