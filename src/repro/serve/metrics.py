"""Server-side accounting: request counters, latency percentiles, and
the ``GET /metrics`` snapshot.

One :class:`ServerMetrics` lives on each
:class:`~repro.serve.server.SimServer`.  The scheduler and dispatcher
record into it as requests move through the lifecycle (the same steps
they emit as :class:`~repro.telemetry.ServeEvent`\\ s), and
:meth:`ServerMetrics.snapshot` renders the whole thing as the JSON the
``/metrics`` endpoint returns — schema pinned by
:data:`METRICS_SCHEMA_VERSION` and the serve test suite.

Latency is tracked as a bounded reservoir of the most recent request
latencies (admit → complete wall seconds), split by how the request
was served: ``served`` (no worker — result cache, completed-job table,
or coalesced onto an existing job) vs ``simulated`` (a dispatch batch
ran it).  The simulated mean also prices admission control's
``Retry-After`` estimate.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Optional

#: Version of the ``GET /metrics`` payload shape.
#: 2: ``dispatch.kernels`` — dispatched cells by resolved replay
#:    kernel, keyed ``"kernel[reason]"``.
METRICS_SCHEMA_VERSION = 2

#: How a completed request was served (latency reservoir tags).
SERVED_FAST = "served"        # cache / job-table / coalesced — no worker
SERVED_SIMULATED = "simulated"  # a dispatch batch simulated it

#: Reservoir size: enough for stable p95 at smoke scale without
#: unbounded growth under sustained traffic.
LATENCY_WINDOW = 1024


def percentile(samples: list, fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 for an empty list):
    the smallest sample such that ``fraction`` of the set is <= it."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered)) - 1
    return float(ordered[min(len(ordered) - 1, max(0, rank))])


class ServerMetrics:
    """Counters + latency reservoir for one server instance."""

    def __init__(self, window: int = LATENCY_WINDOW) -> None:
        # Request admission path.
        self.received = 0       # POSTs that parsed into a request
        self.admitted = 0       # new jobs entering the pending queue
        self.coalesced = 0      # duplicates folded onto in-flight jobs
        self.cache_hits = 0     # answered from the ResultCache
        self.job_hits = 0       # answered from the completed-job table
        self.rejected = 0       # admission control said 429
        # Job completion path.
        self.completed = 0
        self.failed = 0
        self.checkpointed = 0   # drained to the queue checkpoint
        self.resumed = 0        # re-queued from a checkpoint on boot
        # Dispatch path.
        self.batches = 0
        self.worker_cells = 0   # cells handed to the sweep executor
        #: Dispatched cells by resolved replay kernel:
        #: ``"kernel[reason]"`` -> count.
        self.kernels: Dict[str, int] = {}
        self._latencies: Deque[tuple] = deque(maxlen=window)

    # -- recording -----------------------------------------------------

    def record_latency(self, seconds: float, source: str) -> None:
        self._latencies.append((seconds, source))

    def record_kernel(self, decision) -> None:
        """Count one dispatched cell's replay kernel (a
        :class:`~repro.sim.KernelDecision` or ``(kernel, reason)``)."""
        key = f"{decision[0]}[{decision[1]}]"
        self.kernels[key] = self.kernels.get(key, 0) + 1

    # -- derived -------------------------------------------------------

    @property
    def answered(self) -> int:
        """Requests that got (or will get) a real answer."""
        return self.received - self.rejected

    @property
    def no_worker_hits(self) -> int:
        """Requests served without costing a new executor cell."""
        return self.cache_hits + self.job_hits + self.coalesced

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of answered requests that never needed a worker."""
        if self.answered <= 0:
            return 0.0
        return min(1.0, self.no_worker_hits / self.answered)

    def mean_simulated_seconds(self, default: float = 1.0) -> float:
        """Observed mean simulated-cell latency (``Retry-After``'s
        price basis); ``default`` until anything simulated completes."""
        samples = [
            s for s, source in self._latencies if source == SERVED_SIMULATED
        ]
        return sum(samples) / len(samples) if samples else default

    def latency_block(self) -> Dict[str, Any]:
        all_samples = [s for s, _ in self._latencies]
        sim_samples = [
            s for s, source in self._latencies if source == SERVED_SIMULATED
        ]
        return {
            "count": len(all_samples),
            "p50_ms": round(percentile(all_samples, 0.50) * 1e3, 3),
            "p95_ms": round(percentile(all_samples, 0.95) * 1e3, 3),
            "simulated_p50_ms": round(percentile(sim_samples, 0.50) * 1e3, 3),
            "simulated_p95_ms": round(percentile(sim_samples, 0.95) * 1e3, 3),
        }

    def snapshot(
        self,
        *,
        queue_depth: int,
        in_flight: int,
        executor_summary: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The ``GET /metrics`` payload (see docs/SERVING.md)."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "requests": {
                "received": self.received,
                "admitted": self.admitted,
                "coalesced": self.coalesced,
                "cache_hits": self.cache_hits,
                "job_hits": self.job_hits,
                "rejected": self.rejected,
            },
            "jobs": {
                "completed": self.completed,
                "failed": self.failed,
                "checkpointed": self.checkpointed,
                "resumed": self.resumed,
            },
            "dispatch": {
                "batches": self.batches,
                "worker_cells": self.worker_cells,
                "kernels": dict(sorted(self.kernels.items())),
            },
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "latency": self.latency_block(),
        }


__all__ = [
    "LATENCY_WINDOW",
    "METRICS_SCHEMA_VERSION",
    "SERVED_FAST",
    "SERVED_SIMULATED",
    "ServerMetrics",
    "percentile",
]
