"""Admission control, fair-share priority queues, and coalescing.

Every request entering the server passes through one
:class:`Scheduler`, which decides — in this order, cheapest first —
how it will be answered:

1. **completed-job table** — a recently finished job with the same
   digest answers instantly with its stored canonical bytes;
2. **result cache** — the PR-1 :class:`~repro.runtime.ResultCache` is
   consulted synchronously; a warm cell becomes a ``done`` job without
   ever touching a worker;
3. **coalescing** — an identical *in-flight* job (queued or running)
   absorbs the request: N concurrent duplicates cost one executor cell
   and every waiter receives the same response bytes;
4. **admission control** — a new job only enters the pending queue if
   there is room; otherwise :class:`QueueFull` carries a
   ``Retry-After`` priced from the observed simulated-cell latency;
5. **fair-share queues** — pending jobs sit in per-client queues.
   :meth:`Scheduler.next_batch` drains them round-robin across
   clients (no tenant starves another) and by descending ``priority``
   (FIFO within a priority) within each client, gathering only cells
   that share a scale so the dispatcher can run them as one sweep.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.runtime.cache import ResultCache
from repro.serve.metrics import SERVED_FAST, SERVED_SIMULATED, ServerMetrics
from repro.serve.protocol import BadRequest, SimRequest, canonical_payload
from repro.sim import SimulationResult
from repro.telemetry.bus import EventBus, NullBus
from repro.telemetry.events import ServeEvent

#: Default bound on the pending queue (jobs admitted but not yet
#: dispatched); beyond it new work is rejected with 429 + Retry-After.
DEFAULT_MAX_QUEUE = 64

#: Job lifecycle states (the ``status`` field of every job payload).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CHECKPOINTED = "checkpointed"

#: How many completed/failed jobs stay answerable at ``/v1/jobs/<id>``.
DONE_TABLE_LIMIT = 1024


class QueueFull(Exception):
    """Admission control rejection; ``retry_after`` is in seconds."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(
            f"pending queue full ({depth} jobs); retry in {retry_after:.1f}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class Job:
    """One unit of scheduled work: a cell request plus its lifecycle.

    ``future`` resolves with the job's canonical response bytes; every
    HTTP waiter (original submitter and all coalesced duplicates)
    awaits the same future and therefore writes the same bytes.
    """

    def __init__(self, request: SimRequest, source: str = "request") -> None:
        self.request = request
        self.id = request.digest
        self.status = QUEUED
        self.source = source            # "request" | "checkpoint"
        self.attempts = 0               # dispatch batches that tried it
        self.created = time.monotonic()
        self.payload: Optional[bytes] = None
        self.http_status = 200
        # Jobs are only ever created inside the server's event loop
        # (HTTP handlers, checkpoint resume at start()).
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()

    @property
    def cell(self) -> Tuple[str, str]:
        return self.request.cell

    def _resolve(self, payload: bytes) -> None:
        self.payload = payload
        if not self.future.done():
            self.future.set_result(payload)

    def complete(self, result: SimulationResult) -> None:
        self.status = DONE
        self.http_status = 200
        self._resolve(
            canonical_payload(
                {
                    "job": self.id,
                    "status": DONE,
                    "request": self.request.identity(),
                    "result": result.to_dict(),
                }
            )
        )

    def fail(self, error: Dict[str, Any]) -> None:
        self.status = FAILED
        self.http_status = 500
        self._resolve(
            canonical_payload(
                {
                    "job": self.id,
                    "status": FAILED,
                    "request": self.request.identity(),
                    "error": error,
                }
            )
        )

    def checkpoint(self, retry_after: float) -> None:
        """The server drained with this job still queued: waiters get
        a 503 telling them the job survives and where to poll it."""
        self.status = CHECKPOINTED
        self.http_status = 503
        self._resolve(
            canonical_payload(
                {
                    "job": self.id,
                    "status": CHECKPOINTED,
                    "request": self.request.identity(),
                    "retry_after": retry_after,
                }
            )
        )


class Scheduler:
    """Fair-share priority queues with coalescing and admission."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        max_queue: int = DEFAULT_MAX_QUEUE,
        workers: int = 1,
        metrics: Optional[ServerMetrics] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.cache = cache
        self.max_queue = max_queue
        self.workers = max(1, workers)
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.bus: EventBus | NullBus = bus if bus is not None else NullBus()
        #: In-flight jobs (queued or running), by digest.
        self.jobs: Dict[str, Job] = {}
        #: Finished jobs (done/failed), bounded FIFO, by digest.
        self.done: Dict[str, Job] = {}
        #: Pending queue: per-client FIFO of queued jobs.
        self._queues: Dict[str, List[Job]] = {}
        #: Round-robin order over clients with pending work.
        self._rr: Deque[str] = deque()
        self._seq = 0
        self._counter: Dict[str, int] = {}  # job -> arrival sequence

    # -- introspection -------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def in_flight(self) -> int:
        return sum(1 for job in self.jobs.values() if job.status == RUNNING)

    def job(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id) or self.done.get(job_id)

    def retry_after(self) -> float:
        """Admission control's backpressure hint: the queue's expected
        drain time at the observed per-cell latency, floored at 1s."""
        per_cell = self.metrics.mean_simulated_seconds()
        backlog = self.queue_depth + self.in_flight
        return max(1.0, math.ceil(per_cell * max(1, backlog) / self.workers))

    # -- submission ----------------------------------------------------

    def submit(self, request: SimRequest) -> Job:
        """Route one request: job-table hit, cache hit, coalesce, or
        admit; raises :class:`QueueFull` when admission fails and
        :class:`BadRequest` for unknown designs/workloads."""
        self._validate(request)
        self.metrics.received += 1
        digest = request.digest

        finished = self.done.get(digest)
        if finished is not None and finished.status == DONE:
            self.metrics.job_hits += 1
            self.metrics.record_latency(0.0, SERVED_FAST)
            self._emit("cache_hit", finished, request.client)
            return finished

        active = self.jobs.get(digest)
        if active is not None:
            self.metrics.coalesced += 1
            self._emit("coalesce", active, request.client)
            return active

        if self.cache is not None:
            cached = self.cache.get(
                request.scale(), request.design, request.workload
            )
            if cached is not None:
                job = Job(request)
                job.complete(cached)
                self._remember(job)
                self.metrics.cache_hits += 1
                self.metrics.record_latency(0.0, SERVED_FAST)
                self._emit("cache_hit", job, request.client)
                return job

        if self.queue_depth >= self.max_queue:
            self.metrics.rejected += 1
            retry_after = self.retry_after()
            self._emit("reject", None, request.client)
            raise QueueFull(self.queue_depth, retry_after)

        job = Job(request)
        self._enqueue(job)
        self.metrics.admitted += 1
        self._emit("admit", job, request.client)
        return job

    def resume(self, job: Job) -> Job:
        """Re-queue one checkpointed job on boot (digest collisions —
        the same cell checkpointed twice can't happen, the table
        dedups — would coalesce silently)."""
        existing = self.jobs.get(job.id)
        if existing is not None:
            return existing
        self._enqueue(job)
        self.metrics.resumed += 1
        self._emit("resume", job, job.request.client)
        return job

    def _enqueue(self, job: Job) -> None:
        job.status = QUEUED
        self.jobs[job.id] = job
        client = job.request.client
        if client not in self._queues:
            self._queues[client] = []
            self._rr.append(client)
        self._queues[client].append(job)
        self._counter[job.id] = self._seq
        self._seq += 1

    def _validate(self, request: SimRequest) -> None:
        from repro.experiments.designs import REGISTRY
        from repro.workloads import benchmark

        try:
            REGISTRY.get(request.design)
        except KeyError:
            raise BadRequest(f"unknown design {request.design!r}") from None
        try:
            benchmark(request.workload)
        except KeyError:
            raise BadRequest(
                f"unknown workload {request.workload!r}"
            ) from None

    # -- dispatch ------------------------------------------------------

    def next_batch(self, max_batch: int = 8) -> List[Job]:
        """Pop up to ``max_batch`` compatible queued jobs.

        The first job is chosen fairly (round-robin over clients,
        highest ``priority`` then FIFO within the client); the rest of
        the batch is filled with jobs sharing its
        :meth:`~repro.serve.protocol.SimRequest.scale_key`, same
        fairness order, leaving incompatible jobs queued for a later
        batch.  Popped jobs are marked ``running``.
        """
        first = self._pop_best(None)
        if first is None:
            return []
        batch = [first]
        key = first.request.scale_key()
        while len(batch) < max_batch:
            job = self._pop_best(key)
            if job is None:
                break
            batch.append(job)
        for job in batch:
            job.status = RUNNING
        return batch

    def _pop_best(self, scale_key: Optional[Tuple]) -> Optional[Job]:
        """Fairest eligible job: scan clients in round-robin order,
        taking the first client that has an eligible job and, within
        it, the highest-priority earliest-arrival one."""
        for _ in range(len(self._rr)):
            client = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(client, [])
            best_index = -1
            for index, job in enumerate(queue):
                if scale_key is not None and (
                    job.request.scale_key() != scale_key
                ):
                    continue
                if best_index < 0 or (
                    job.request.priority,
                    -self._counter[job.id],
                ) > (
                    queue[best_index].request.priority,
                    -self._counter[queue[best_index].id],
                ):
                    best_index = index
            if best_index >= 0:
                job = queue.pop(best_index)
                if not queue:
                    self._forget_client(client)
                return job
        return None

    def _forget_client(self, client: str) -> None:
        self._queues.pop(client, None)
        try:
            self._rr.remove(client)
        except ValueError:
            pass

    def requeue(self, job: Job) -> None:
        """Put a dispatched-but-unfinished job back in the queue (its
        batch died around it; see the dispatcher's failure handling)."""
        if job.id in self.jobs and job.status == RUNNING:
            self._enqueue(job)

    # -- completion ----------------------------------------------------

    def finish(self, job: Job) -> None:
        """Move a resolved job from in-flight to the done table."""
        self.jobs.pop(job.id, None)
        self._counter.pop(job.id, None)
        self._remember(job)
        elapsed = time.monotonic() - job.created
        if job.status == DONE:
            self.metrics.completed += 1
        elif job.status == FAILED:
            self.metrics.failed += 1
        self.metrics.record_latency(elapsed, SERVED_SIMULATED)
        self._emit("complete", job, job.request.client, seconds=elapsed)

    def _remember(self, job: Job) -> None:
        self.done[job.id] = job
        while len(self.done) > DONE_TABLE_LIMIT:
            self.done.pop(next(iter(self.done)))

    # -- drain ---------------------------------------------------------

    def drain(self) -> List[Job]:
        """Remove and return every still-queued job (fairness order),
        for checkpointing at shutdown.  Running jobs are not touched —
        the dispatcher finishes them before the server exits."""
        drained: List[Job] = []
        while True:
            job = self._pop_best(None)
            if job is None:
                break
            self.jobs.pop(job.id, None)
            self._counter.pop(job.id, None)
            drained.append(job)
            self.metrics.checkpointed += 1
        if drained:
            self._emit("drain", None, "", queue_depth=len(drained))
        return drained

    # -- telemetry -----------------------------------------------------

    def _emit(
        self,
        action: str,
        job: Optional[Job],
        client: str,
        *,
        seconds: float = 0.0,
        queue_depth: Optional[int] = None,
    ) -> None:
        if not self.bus.enabled:
            return
        self.bus.emit(
            ServeEvent(
                0.0,
                action=action,
                job=job.id if job is not None else "",
                client=client,
                queue_depth=(
                    queue_depth if queue_depth is not None else self.queue_depth
                ),
                seconds=seconds,
            )
        )


__all__ = [
    "CHECKPOINTED",
    "DEFAULT_MAX_QUEUE",
    "DONE",
    "DONE_TABLE_LIMIT",
    "FAILED",
    "Job",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "Scheduler",
]
