"""The long-running simulation service: HTTP front end + lifecycle.

:class:`SimServer` ties the pieces together — the
:class:`~repro.serve.scheduler.Scheduler` (admission, fair share,
coalescing), the :class:`~repro.serve.dispatcher.Dispatcher` (executor
batches), the :mod:`~repro.serve.http` stream plumbing, and the
:class:`~repro.serve.checkpoint.QueueCheckpoint` drain file — behind
five endpoints:

====================  ================================================
``POST /v1/simulate``  one cell; waits for the result by default
                       (``"wait": false`` returns 202 + job id)
``POST /v1/sweep``     a designs × workloads grid, expanded into cells
                       that coalesce with everything else in flight
``GET /v1/jobs/<id>``  poll any job by digest
``GET /healthz``       liveness + drain state
``GET /metrics``       queue depth, in-flight, hit ratio, p50/p95
====================  ================================================

Lifecycle: ``SIGTERM`` (or :meth:`SimServer.shutdown`) stops
accepting, lets the in-flight dispatch batch finish, checkpoints the
unserved queue, answers queued waiters with a 503 naming their job id,
and exits; a restarted server pointed at the same
``checkpoint_dir`` re-queues the checkpointed requests under the same
ids and serves them to completion.  See docs/SERVING.md.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro._version import __version__
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor
from repro.serve.checkpoint import QueueCheckpoint
from repro.serve.dispatcher import DEFAULT_MAX_BATCH, Dispatcher
from repro.serve.http import (
    HttpError,
    Request,
    json_body,
    read_request,
    render_response,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    BadRequest,
    SimRequest,
    SweepRequest,
    WIRE_VERSION,
    canonical_payload,
)
from repro.serve.scheduler import (
    DEFAULT_MAX_QUEUE,
    DONE,
    FAILED,
    Job,
    QueueFull,
    Scheduler,
)
from repro.telemetry.bus import EventBus, NullBus

#: Default bind address (loopback: the service is a lab tool, not an
#: internet-facing daemon; put a real proxy in front for anything else).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


class SimServer:
    """One serving process: scheduler + dispatcher + HTTP listener."""

    def __init__(
        self,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        checkpoint_dir: Optional[Path | str] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        hold: bool = False,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        arena: bool = True,
        arena_budget: Optional[int] = None,
        telemetry: Optional[EventBus] = None,
    ) -> None:
        self.host = host
        self.port = port  # rebound to the real port after start()
        self.cache = cache
        self.checkpoint = (
            QueueCheckpoint(checkpoint_dir)
            if checkpoint_dir is not None
            else None
        )
        #: ``hold=True`` accepts and queues work but never dispatches —
        #: maintenance mode, and the deterministic half of drain tests.
        self.hold = hold
        self.telemetry: EventBus | NullBus = (
            telemetry if telemetry is not None else NullBus()
        )
        self.metrics = ServerMetrics()
        #: The sweep runtime underneath: fault injection stays off (a
        #: serving process must not inherit ``$REPRO_FAULTS`` chaos),
        #: but timeout/retry tolerance is the caller's to tune.
        self.executor = SweepExecutor(
            jobs=jobs,
            cache=cache,
            faults=None,
            timeout=timeout,
            retries=retries,
            arena=arena,
            arena_budget=arena_budget,
        )
        self.scheduler = Scheduler(
            cache,
            max_queue=max_queue,
            workers=jobs,
            metrics=self.metrics,
            bus=self.telemetry,
        )
        self.dispatcher = Dispatcher(
            self.scheduler,
            self.executor,
            max_batch=max_batch,
            metrics=self.metrics,
            bus=self.telemetry,
        )
        self.draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown_done: Optional[asyncio.Event] = None
        self._resumed_jobs: List[Job] = []

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind, resume any checkpointed queue, start dispatching."""
        self._shutdown_done = asyncio.Event()
        if self.checkpoint is not None:
            for request in self.checkpoint.load():
                job = Job(request, source="checkpoint")
                self._resumed_jobs.append(self.scheduler.resume(job))
            self.checkpoint.discard()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if not self.hold:
            self.dispatcher.start()
            if self._resumed_jobs:
                self.dispatcher.wake()

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` has completed."""
        assert self._shutdown_done is not None, "start() first"
        await self._shutdown_done.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work,
        checkpoint the rest, release :meth:`serve_until_shutdown`."""
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.dispatcher.stop()
        drained = self.scheduler.drain()
        if drained:
            retry_after = self.scheduler.retry_after()
            if self.checkpoint is not None:
                self.checkpoint.write([job.request for job in drained])
            for job in drained:
                job.checkpoint(retry_after)
        if self._shutdown_done is not None:
            self._shutdown_done.set()

    def run(self) -> None:  # pragma: no cover — signal-driven CLI path
        """Synchronous entry point with SIGTERM/SIGINT drain wired up
        (the ``python -m repro.experiments serve`` main loop)."""

        async def main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    signum,
                    lambda: loop.create_task(self.shutdown()),
                )
            print(
                f"[serve] listening on http://{self.host}:{self.port}",
                flush=True,
            )
            await self.serve_until_shutdown()
            print(
                f"[serve] drained; {self.metrics.checkpointed} job(s) "
                "checkpointed",
                flush=True,
            )

        asyncio.run(main())

    # -- connection handling -------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await self._write(
                    writer,
                    render_response(
                        exc.status, json_body({"error": str(exc)})
                    ),
                )
                return
            if request is None:
                return
            response = await self._route(request)
            await self._write(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer went away mid-response; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, response: bytes) -> None:
        writer.write(response)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, request: Request) -> bytes:
        path = request.path
        if path == "/healthz":
            return self._require_get(request) or self._healthz()
        if path == "/metrics":
            return self._require_get(request) or self._metrics()
        if path.startswith("/v1/jobs/"):
            return self._require_get(request) or self._job_status(
                path[len("/v1/jobs/"):]
            )
        if path == "/v1/simulate":
            return await self._post(request, self._simulate)
        if path == "/v1/sweep":
            return await self._post(request, self._sweep)
        return render_response(
            404, json_body({"error": f"no such endpoint {path!r}"})
        )

    @staticmethod
    def _require_get(request: Request) -> Optional[bytes]:
        if request.method != "GET":
            return render_response(
                405,
                json_body({"error": f"{request.method} not allowed here"}),
                extra_headers={"Allow": "GET"},
            )
        return None

    async def _post(self, request: Request, handler) -> bytes:
        if request.method != "POST":
            return render_response(
                405,
                json_body({"error": f"{request.method} not allowed here"}),
                extra_headers={"Allow": "POST"},
            )
        if self.draining:
            return render_response(
                503,
                json_body(
                    {"error": "server is draining", "status": "draining"}
                ),
                extra_headers={"Retry-After": "5"},
            )
        try:
            payload = request.json()
            wait = bool(payload.pop("wait", True))
            return await handler(payload, wait)
        except HttpError as exc:
            return render_response(
                exc.status, json_body({"error": str(exc)})
            )
        except BadRequest as exc:
            return render_response(400, json_body({"error": str(exc)}))
        except QueueFull as exc:
            return render_response(
                429,
                json_body(
                    {
                        "error": str(exc),
                        "status": "rejected",
                        "retry_after": exc.retry_after,
                    }
                ),
                extra_headers={
                    "Retry-After": str(int(exc.retry_after))
                },
            )

    # -- endpoints -----------------------------------------------------

    async def _simulate(self, payload: Dict[str, Any], wait: bool) -> bytes:
        sim = SimRequest.from_dict(payload)
        job = self.scheduler.submit(sim)
        self.dispatcher.wake()
        if not wait and job.payload is None:
            return render_response(
                202,
                json_body(
                    {"job": job.id, "status": job.status, "wire": WIRE_VERSION}
                ),
            )
        payload_bytes = await job.future
        return render_response(
            job.http_status,
            payload_bytes,
            extra_headers=self._retry_header(job),
        )

    async def _sweep(self, payload: Dict[str, Any], wait: bool) -> bytes:
        sweep = SweepRequest.from_dict(payload)
        jobs = [self.scheduler.submit(cell) for cell in sweep.cells()]
        self.dispatcher.wake()
        if not wait:
            return render_response(
                202,
                json_body(
                    {
                        "job": sweep.digest,
                        "status": "queued",
                        "cells": {
                            f"{j.request.design}/{j.request.workload}": j.id
                            for j in jobs
                        },
                        "wire": WIRE_VERSION,
                    }
                ),
            )
        import json as _json

        await asyncio.gather(*(job.future for job in jobs))
        results: Dict[str, Any] = {}
        errors: Dict[str, Any] = {}
        for job in jobs:
            cell_name = f"{job.request.design}/{job.request.workload}"
            body = _json.loads(job.payload or b"{}")
            if job.status == DONE:
                results[cell_name] = body.get("result")
            else:
                errors[cell_name] = body.get(
                    "error", {"type": job.status, "message": job.status}
                )
        status = DONE if not errors else FAILED
        block: Dict[str, Any] = {
            "job": sweep.digest,
            "status": status,
            "request": sweep.identity(),
            "results": results,
        }
        if errors:
            block["errors"] = errors
        return render_response(
            200 if not errors else 500, canonical_payload(block)
        )

    def _job_status(self, job_id: str) -> bytes:
        job = self.scheduler.job(job_id)
        if job is None:
            return render_response(
                404, json_body({"error": f"unknown job {job_id!r}"})
            )
        if job.payload is not None:
            return render_response(
                job.http_status,
                job.payload,
                extra_headers=self._retry_header(job),
            )
        return render_response(
            200,
            json_body(
                {
                    "job": job.id,
                    "status": job.status,
                    "queue_depth": self.scheduler.queue_depth,
                }
            ),
        )

    def _healthz(self) -> bytes:
        return render_response(
            200,
            json_body(
                {
                    "status": "draining" if self.draining else "ok",
                    "version": __version__,
                    "wire": WIRE_VERSION,
                    "hold": self.hold,
                }
            ),
        )

    def _metrics(self) -> bytes:
        return render_response(
            200,
            json_body(
                self.metrics.snapshot(
                    queue_depth=self.scheduler.queue_depth,
                    in_flight=self.scheduler.in_flight,
                )
            ),
        )

    def _retry_header(self, job: Job) -> Optional[Dict[str, str]]:
        if job.http_status == 503:
            return {"Retry-After": str(int(self.scheduler.retry_after()))}
        return None


class ServerThread:
    """A :class:`SimServer` on a background thread — the in-process
    harness tests, benchmarks, and notebooks use (``with
    ServerThread(port=0) as srv: srv.port ...``)."""

    def __init__(self, **server_kwargs: Any) -> None:
        self.server = SimServer(**server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._failure: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start")
        if self._failure is not None:
            raise RuntimeError("server thread died") from self._failure
        return self

    def _main(self) -> None:
        async def body() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # pragma: no cover — bind errors
                self._failure = exc
                self._started.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_until_shutdown()

        try:
            asyncio.run(body())
        except BaseException:  # pragma: no cover — surfaced via start()
            if not self._started.is_set():
                self._started.set()

    def shutdown(self) -> None:
        """Drain from any thread (the test suite's stand-in for
        SIGTERM — :meth:`SimServer.run` wires the real signal to the
        same :meth:`SimServer.shutdown`)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), loop
            ).result(timeout=60.0)
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ServerThread",
    "SimServer",
]
