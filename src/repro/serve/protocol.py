"""Typed request/response model and JSON wire format of the service.

A serving request is a *cell description*: which design, which Table II
workload, at what :class:`~repro.experiments.runner.Scale`.  The frozen
dataclasses below pin that description down, give it a canonical JSON
form (the ``to_dict``/``from_dict`` conventions of
:mod:`repro.runtime`'s result wire format), and derive from it the
**job digest** that the whole service keys on:

* two requests with the same digest are *the same work* — the
  scheduler coalesces them onto one job, whoever sent them;
* the digest is the job id a client polls at ``GET /v1/jobs/<id>``;
* digests are stable across processes, so a drained queue checkpoint
  resumes under the same ids after a restart.

``client`` and ``priority`` are *scheduling* attributes, not identity:
they steer fair-share and ordering but are excluded from
:meth:`SimRequest.identity`, so identical cells from different tenants
still share one simulation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Union

from repro.experiments.runner import Scale

#: Version of the serve wire format (requests, responses, checkpoint).
WIRE_VERSION = 1

#: Request ``kind`` tags.
KIND_SIMULATE = "simulate"
KIND_SWEEP = "sweep"


class BadRequest(ValueError):
    """A request that cannot be parsed or validated (HTTP 400)."""


def _require_str(data: Mapping[str, Any], key: str) -> str:
    try:
        value = data[key]
    except KeyError:
        raise BadRequest(f"missing required field {key!r}") from None
    if not isinstance(value, str) or not value:
        raise BadRequest(f"field {key!r} must be a non-empty string")
    return value


def _coerce(value: Any, kind: type, key: str) -> Any:
    try:
        coerced = kind(value)
    except (TypeError, ValueError):
        raise BadRequest(
            f"field {key!r} must be {kind.__name__}, got {value!r}"
        ) from None
    if kind is not bool and coerced < 0:
        raise BadRequest(f"field {key!r} must be >= 0, got {value!r}")
    return coerced


@dataclass(frozen=True)
class SimRequest:
    """One ``(design, workload)`` simulation cell, as requested.

    The scale fields mirror :class:`~repro.experiments.runner.Scale`
    (minus ``benchmarks``, which is the *sibling list* of a sweep and
    not part of a cell's identity); defaults match ``Scale``'s.
    """

    design: str
    workload: str
    fast_mb: float = 4.0
    ratio: int = 5
    accesses_per_core: int = 1500
    warmup_per_core: int = 1500
    num_copies: int = 12
    seed: int = 0
    client: str = "anon"
    priority: int = 0

    #: Scale-shaped fields, in ``Scale`` declaration order.
    SCALE_FIELDS = (
        "fast_mb",
        "ratio",
        "accesses_per_core",
        "warmup_per_core",
        "num_copies",
        "seed",
    )

    @property
    def cell(self) -> Tuple[str, str]:
        return (self.design, self.workload)

    def scale(self) -> Scale:
        """The cell's execution scale (``benchmarks`` is just the one
        workload — cache keys ignore it, see
        :meth:`repro.runtime.ResultCache.describe`)."""
        return Scale(
            fast_mb=self.fast_mb,
            ratio=self.ratio,
            accesses_per_core=self.accesses_per_core,
            warmup_per_core=self.warmup_per_core,
            num_copies=self.num_copies,
            benchmarks=(self.workload,),
            seed=self.seed,
        )

    def scale_key(self) -> Tuple[Any, ...]:
        """Batching compatibility key: cells with equal keys can run
        in one executor sweep (same config, same trace arena)."""
        return tuple(getattr(self, name) for name in self.SCALE_FIELDS)

    def identity(self) -> Dict[str, Any]:
        """What the job digest covers: the cell and its scale — not
        the requesting ``client`` or its ``priority``."""
        data = {name: getattr(self, name) for name in self.SCALE_FIELDS}
        data.update(
            kind=KIND_SIMULATE,
            wire=WIRE_VERSION,
            design=self.design,
            workload=self.workload,
        )
        return data

    @property
    def digest(self) -> str:
        return request_digest(self.identity())

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["kind"] = KIND_SIMULATE
        data["wire"] = WIRE_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimRequest":
        """Inverse of :meth:`to_dict`; raises :class:`BadRequest` on
        missing/mistyped fields or unknown keys (a typo'd field name
        must not be silently dropped)."""
        kind = data.get("kind", KIND_SIMULATE)
        if kind != KIND_SIMULATE:
            raise BadRequest(f"expected kind {KIND_SIMULATE!r}, got {kind!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        extras = set(data) - known - {"kind", "wire"}
        if extras:
            raise BadRequest(f"unknown field(s): {', '.join(sorted(extras))}")
        kwargs: Dict[str, Any] = {
            "design": _require_str(data, "design"),
            "workload": _require_str(data, "workload"),
        }
        for name, kind_ in (
            ("fast_mb", float),
            ("ratio", int),
            ("accesses_per_core", int),
            ("warmup_per_core", int),
            ("num_copies", int),
            ("seed", int),
        ):
            if name in data:
                kwargs[name] = _coerce(data[name], kind_, name)
        if "client" in data:
            kwargs["client"] = _require_str(data, "client")
        if "priority" in data:
            try:
                kwargs["priority"] = int(data["priority"])
            except (TypeError, ValueError):
                raise BadRequest("field 'priority' must be int") from None
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepRequest:
    """A ``designs × workloads`` grid request.

    The scheduler expands it into one :class:`SimRequest` per cell —
    each of which dedups/coalesces independently against everything
    else in flight — and the server folds the cell results back into
    one aggregate response.
    """

    designs: Tuple[str, ...]
    workloads: Tuple[str, ...]
    fast_mb: float = 4.0
    ratio: int = 5
    accesses_per_core: int = 1500
    warmup_per_core: int = 1500
    num_copies: int = 12
    seed: int = 0
    client: str = "anon"
    priority: int = 0

    def cells(self) -> Tuple[SimRequest, ...]:
        """The grid, expanded design-major (the same order
        :meth:`SweepExecutor.run` would build it)."""
        return tuple(
            SimRequest(
                design=design,
                workload=workload,
                fast_mb=self.fast_mb,
                ratio=self.ratio,
                accesses_per_core=self.accesses_per_core,
                warmup_per_core=self.warmup_per_core,
                num_copies=self.num_copies,
                seed=self.seed,
                client=self.client,
                priority=self.priority,
            )
            for design in self.designs
            for workload in self.workloads
        )

    def identity(self) -> Dict[str, Any]:
        return {
            "kind": KIND_SWEEP,
            "wire": WIRE_VERSION,
            "designs": list(self.designs),
            "workloads": list(self.workloads),
            "fast_mb": self.fast_mb,
            "ratio": self.ratio,
            "accesses_per_core": self.accesses_per_core,
            "warmup_per_core": self.warmup_per_core,
            "num_copies": self.num_copies,
            "seed": self.seed,
        }

    @property
    def digest(self) -> str:
        return request_digest(self.identity())

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["designs"] = list(self.designs)
        data["workloads"] = list(self.workloads)
        data["kind"] = KIND_SWEEP
        data["wire"] = WIRE_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepRequest":
        kind = data.get("kind", KIND_SWEEP)
        if kind != KIND_SWEEP:
            raise BadRequest(f"expected kind {KIND_SWEEP!r}, got {kind!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        extras = set(data) - known - {"kind", "wire"}
        if extras:
            raise BadRequest(f"unknown field(s): {', '.join(sorted(extras))}")
        for key in ("designs", "workloads"):
            value = data.get(key)
            if (
                not isinstance(value, (list, tuple))
                or not value
                or not all(isinstance(v, str) and v for v in value)
            ):
                raise BadRequest(
                    f"field {key!r} must be a non-empty list of strings"
                )
        kwargs: Dict[str, Any] = {
            "designs": tuple(data["designs"]),
            "workloads": tuple(data["workloads"]),
        }
        for name, kind_ in (
            ("fast_mb", float),
            ("ratio", int),
            ("accesses_per_core", int),
            ("warmup_per_core", int),
            ("num_copies", int),
            ("seed", int),
        ):
            if name in data:
                kwargs[name] = _coerce(data[name], kind_, name)
        if "client" in data:
            kwargs["client"] = _require_str(data, "client")
        if "priority" in data:
            try:
                kwargs["priority"] = int(data["priority"])
            except (TypeError, ValueError):
                raise BadRequest("field 'priority' must be int") from None
        return cls(**kwargs)


#: Either request shape.
ServeRequest = Union[SimRequest, SweepRequest]


def request_from_dict(data: Mapping[str, Any]) -> ServeRequest:
    """Parse either request kind (checkpoint loading, generic tools)."""
    kind = data.get("kind")
    if kind == KIND_SIMULATE:
        return SimRequest.from_dict(data)
    if kind == KIND_SWEEP:
        return SweepRequest.from_dict(data)
    raise BadRequest(f"unknown request kind {kind!r}")


def request_digest(identity: Mapping[str, Any]) -> str:
    """Job id: SHA-256 over the canonical JSON identity, truncated to
    16 hex chars (64 bits — plenty for an in-memory job table)."""
    canonical = json.dumps(dict(identity), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def canonical_payload(payload: Mapping[str, Any]) -> bytes:
    """The one serialisation every waiter of a job receives:
    sorted-key JSON, UTF-8, trailing newline.  Byte-identical for
    coalesced duplicates and across a drain/restart by construction —
    nothing time- or process-dependent may enter ``payload``."""
    return (json.dumps(dict(payload), sort_keys=True) + "\n").encode()


__all__ = [
    "BadRequest",
    "KIND_SIMULATE",
    "KIND_SWEEP",
    "ServeRequest",
    "SimRequest",
    "SweepRequest",
    "WIRE_VERSION",
    "canonical_payload",
    "request_digest",
    "request_from_dict",
]
