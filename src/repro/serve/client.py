"""Blocking client for the simulation service.

A thin :mod:`http.client` wrapper speaking the wire format in
:mod:`repro.serve.protocol` — one connection per call, matching the
server's ``Connection: close`` policy.  Non-2xx responses raise
:class:`ServeError`, which carries the decoded payload and, for 429/503
backpressure answers, the server's ``Retry-After`` hint.

>>> client = Client("127.0.0.1", 8642)
>>> body = client.simulate({"design": "Chameleon", "workload": "mcf"})
>>> body["result"]["workload"]
'mcf'
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.serve.protocol import WIRE_VERSION

#: Default per-request socket timeout (simulated cells are slow; give
#: a waited POST room to finish).
DEFAULT_TIMEOUT = 300.0


class ServeError(Exception):
    """A non-success response from the service."""

    def __init__(
        self,
        status: int,
        payload: Dict[str, Any],
        retry_after: Optional[float] = None,
    ) -> None:
        message = payload.get("error") or payload.get("status") or "error"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class Client:
    """Synchronous client for one :class:`~repro.serve.SimServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One raw round trip → ``(status, headers, body bytes)``.

        The returned body is exactly what the server wrote — tests use
        this to assert coalesced responses are byte-identical.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (
                json.dumps(dict(payload)).encode()
                if payload is not None
                else None
            )
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, header_map, raw
        finally:
            conn.close()

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
        *,
        accept: Tuple[int, ...] = (200, 202),
    ) -> Dict[str, Any]:
        status, headers, raw = self.request(method, path, payload)
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if status not in accept:
            retry_after = None
            if "retry-after" in headers:
                try:
                    retry_after = float(headers["retry-after"])
                except ValueError:
                    pass
            raise ServeError(status, decoded, retry_after)
        return decoded

    # -- endpoints -----------------------------------------------------

    def simulate(
        self, request: Mapping[str, Any], *, wait: bool = True
    ) -> Dict[str, Any]:
        """POST one cell; by default blocks until the result payload.
        An explicit ``"wait"`` key in ``request`` wins over the kwarg."""
        body = dict(request)
        body.setdefault("wait", wait)
        return self._json("POST", "/v1/simulate", body)

    def sweep(
        self, request: Mapping[str, Any], *, wait: bool = True
    ) -> Dict[str, Any]:
        """POST a designs × workloads grid.  An explicit ``"wait"``
        key in ``request`` wins over the kwarg."""
        body = dict(request)
        body.setdefault("wait", wait)
        return self._json("POST", "/v1/sweep", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        """Poll one job by digest (200 even for failed/checkpointed —
        the payload's ``status`` field tells the story; only an unknown
        id raises)."""
        return self._json(
            "GET", f"/v1/jobs/{job_id}", accept=(200, 500, 503)
        )

    def wait_job(
        self,
        job_id: str,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll ``/v1/jobs/<id>`` until it leaves the queued/running
        states (or ``timeout`` elapses)."""
        deadline = time.monotonic() + timeout
        while True:
            body = self.job(job_id)
            if body.get("status") not in ("queued", "running"):
                return body
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {body.get('status')!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(interval)

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._json("GET", "/metrics")


__all__ = ["Client", "DEFAULT_TIMEOUT", "ServeError", "WIRE_VERSION"]
