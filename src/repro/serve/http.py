"""Minimal HTTP/1.1 plumbing on asyncio streams — stdlib only.

Just enough protocol for the service's five endpoints: request-line +
headers + ``Content-Length`` body parsing with hard size limits, and
JSON responses with ``Connection: close`` (one request per connection
keeps the server trivially correct under drain; the
:class:`~repro.serve.client.Client` opens a connection per call).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import asyncio

#: Upper bounds keeping a misbehaving peer from ballooning memory.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Protocol-level failure that should produce an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict[str, Any]:
        """The body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise HttpError(400, "request body is not valid JSON") from None
        if not isinstance(data, dict):
            raise HttpError(400, "request body must be a JSON object")
        return data


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Request]:
    """Parse one request; ``None`` on a clean EOF before any bytes."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long") from None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers") from None
        if line in (b"\r\n", b"\n"):
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    return Request(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialise one complete response (``Connection: close``)."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(payload: Mapping[str, Any]) -> bytes:
    """Canonical JSON body (sorted keys, trailing newline) — the same
    convention as :func:`repro.serve.protocol.canonical_payload`."""
    return (json.dumps(dict(payload), sort_keys=True) + "\n").encode()


def parse_response(raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
    """Client-side inverse of :func:`render_response` (tests use it on
    raw sockets; the real client rides :mod:`http.client`)."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


__all__ = [
    "HttpError",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_REQUEST_LINE",
    "REASONS",
    "Request",
    "json_body",
    "parse_response",
    "read_request",
    "render_response",
]
