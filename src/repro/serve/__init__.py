"""repro.serve — the long-running simulation service.

A stdlib-only asyncio HTTP server in front of the sweep runtime:
typed requests (:class:`SimRequest` / :class:`SweepRequest`),
fair-share priority scheduling with admission control and request
coalescing (:class:`Scheduler`), executor batching
(:class:`Dispatcher`), and a graceful drain that checkpoints the
unserved queue for the next process (:class:`QueueCheckpoint`).

Start one from the CLI::

    python -m repro.experiments serve --port 8642 --jobs 4

or in-process (tests, notebooks)::

    from repro.serve import Client, ServerThread

    with ServerThread(port=0, cache=cache) as srv:
        body = Client(port=srv.port).simulate(
            {"design": "chameleon", "workload": "mcf"}
        )

See docs/SERVING.md for the wire format and scheduling semantics.
"""

from repro.serve.checkpoint import CHECKPOINT_NAME, QueueCheckpoint
from repro.serve.client import Client, ServeError
from repro.serve.dispatcher import (
    DEFAULT_MAX_BATCH,
    Dispatcher,
    MAX_JOB_ATTEMPTS,
)
from repro.serve.metrics import METRICS_SCHEMA_VERSION, ServerMetrics
from repro.serve.protocol import (
    BadRequest,
    SimRequest,
    SweepRequest,
    WIRE_VERSION,
    canonical_payload,
    request_digest,
    request_from_dict,
)
from repro.serve.scheduler import (
    DEFAULT_MAX_QUEUE,
    Job,
    QueueFull,
    Scheduler,
)
from repro.serve.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServerThread,
    SimServer,
)

__all__ = [
    "BadRequest",
    "CHECKPOINT_NAME",
    "Client",
    "DEFAULT_HOST",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_PORT",
    "Dispatcher",
    "Job",
    "MAX_JOB_ATTEMPTS",
    "METRICS_SCHEMA_VERSION",
    "QueueCheckpoint",
    "QueueFull",
    "Scheduler",
    "ServeError",
    "ServerMetrics",
    "ServerThread",
    "SimRequest",
    "SimServer",
    "SweepRequest",
    "WIRE_VERSION",
    "canonical_payload",
    "request_digest",
    "request_from_dict",
]
