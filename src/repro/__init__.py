"""repro — a reproduction of CHAMELEON (MICRO 2018).

Chameleon is a hardware-software co-designed heterogeneous memory
system that dynamically reconfigures segment groups between
Part-of-Memory mode (maximum OS-visible capacity) and cache mode
(opportunistic use of OS-free space as a hardware-managed stacked-DRAM
cache), driven by two new ISA instructions the OS issues from its page
allocator.

Quickstart::

    from repro import (
        build_workload, benchmark, simulate,
        ChameleonOptArchitecture, scaled_config,
    )

    config = scaled_config()              # paper ratios, laptop scale
    workload = build_workload(config, benchmark("mcf"))
    arch = ChameleonOptArchitecture(config)
    result = simulate(arch, workload, accesses_per_core=20_000)
    print(result.fast_hit_rate, result.geomean_ipc)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.config import (
    GB,
    KB,
    MB,
    CoreConfig,
    DramConfig,
    DramTiming,
    SystemConfig,
    offchip_dram,
    paper_config,
    ratio_config,
    scaled_config,
    stacked_dram,
)
from repro.arch import (
    AlloyCache,
    CameoArchitecture,
    FlatMemory,
    MemoryArchitecture,
    PoMArchitecture,
    PolymorphicMemory,
    StaticHybridMemory,
)
from repro.core import (
    ChameleonArchitecture,
    ChameleonOptArchitecture,
    ChameleonSharedPool,
)
from repro.sim import (
    KERNELS,
    AutoNumaMemory,
    FirstTouchMemory,
    SimulationResult,
    select_kernel,
    simulate,
)
from repro.workloads import (
    TABLE2_BENCHMARKS,
    BenchmarkSpec,
    MultiprogramWorkload,
    benchmark,
    benchmark_names,
    build_workload,
)
from repro.stats import geomean, normalize_to
from repro.cachesim import CacheHierarchy, CoherentHierarchy
from repro.dram import system_energy
from repro.osmodel import BufferCache, MemoryBoundScheduler
from repro.trace.stats import characterize

__version__ = "1.2.0"

__all__ = [
    "GB",
    "KB",
    "MB",
    "CoreConfig",
    "DramConfig",
    "DramTiming",
    "SystemConfig",
    "offchip_dram",
    "paper_config",
    "ratio_config",
    "scaled_config",
    "stacked_dram",
    "AlloyCache",
    "CameoArchitecture",
    "FlatMemory",
    "MemoryArchitecture",
    "PoMArchitecture",
    "PolymorphicMemory",
    "StaticHybridMemory",
    "ChameleonArchitecture",
    "ChameleonOptArchitecture",
    "ChameleonSharedPool",
    "KERNELS",
    "AutoNumaMemory",
    "FirstTouchMemory",
    "SimulationResult",
    "select_kernel",
    "simulate",
    "TABLE2_BENCHMARKS",
    "BenchmarkSpec",
    "MultiprogramWorkload",
    "benchmark",
    "benchmark_names",
    "build_workload",
    "geomean",
    "normalize_to",
    "CacheHierarchy",
    "CoherentHierarchy",
    "system_energy",
    "BufferCache",
    "MemoryBoundScheduler",
    "characterize",
    "__version__",
]
