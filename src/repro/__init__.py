"""repro — a reproduction of CHAMELEON (MICRO 2018).

Chameleon is a hardware-software co-designed heterogeneous memory
system that dynamically reconfigures segment groups between
Part-of-Memory mode (maximum OS-visible capacity) and cache mode
(opportunistic use of OS-free space as a hardware-managed stacked-DRAM
cache), driven by two new ISA instructions the OS issues from its page
allocator.

Quickstart — the stable facade is :mod:`repro.api` (see docs/API.md
for the full surface and the compatibility policy)::

    from repro import api

    result = api.simulate(
        design="Chameleon-Opt", workload="mcf",
        accesses_per_core=20_000,
    )
    print(result.fast_hit_rate, result.geomean_ipc)

    outcome = api.sweep(designs=("PoM", "Chameleon-Opt"), jobs=4)
    print(outcome.metrics.summary())

The flat re-exports below (``repro.simulate``, ``repro.build_workload``
...) remain for existing code; new code should prefer ``repro.api``.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.config import (
    GB,
    KB,
    MB,
    CoreConfig,
    DramConfig,
    DramTiming,
    SystemConfig,
    offchip_dram,
    paper_config,
    ratio_config,
    scaled_config,
    stacked_dram,
)
from repro.arch import (
    AlloyCache,
    CameoArchitecture,
    FlatMemory,
    MemoryArchitecture,
    PoMArchitecture,
    PolymorphicMemory,
    StaticHybridMemory,
)
from repro.core import (
    ChameleonArchitecture,
    ChameleonOptArchitecture,
    ChameleonSharedPool,
)
from repro.sim import (
    KERNELS,
    AutoNumaMemory,
    FirstTouchMemory,
    KernelDecision,
    SimulationResult,
    select_kernel,
    simulate,
)
from repro.workloads import (
    TABLE2_BENCHMARKS,
    BenchmarkSpec,
    MultiprogramWorkload,
    benchmark,
    benchmark_names,
    build_workload,
)
from repro.stats import geomean, normalize_to
from repro.cachesim import CacheHierarchy, CoherentHierarchy
from repro.dram import system_energy
from repro.osmodel import BufferCache, MemoryBoundScheduler
from repro.trace.stats import characterize

from repro._version import __version__
from repro import api

__all__ = [
    "api",
    "GB",
    "KB",
    "MB",
    "CoreConfig",
    "DramConfig",
    "DramTiming",
    "SystemConfig",
    "offchip_dram",
    "paper_config",
    "ratio_config",
    "scaled_config",
    "stacked_dram",
    "AlloyCache",
    "CameoArchitecture",
    "FlatMemory",
    "MemoryArchitecture",
    "PoMArchitecture",
    "PolymorphicMemory",
    "StaticHybridMemory",
    "ChameleonArchitecture",
    "ChameleonOptArchitecture",
    "ChameleonSharedPool",
    "KERNELS",
    "KernelDecision",
    "AutoNumaMemory",
    "FirstTouchMemory",
    "SimulationResult",
    "select_kernel",
    "simulate",
    "TABLE2_BENCHMARKS",
    "BenchmarkSpec",
    "MultiprogramWorkload",
    "benchmark",
    "benchmark_names",
    "build_workload",
    "geomean",
    "normalize_to",
    "CacheHierarchy",
    "CoherentHierarchy",
    "system_energy",
    "BufferCache",
    "MemoryBoundScheduler",
    "characterize",
    "__version__",
]
