"""Synthetic LLC-miss stream generation.

The generator reproduces the statistical properties the paper's results
depend on:

* **working-set phases** — at any moment the workload touches a bounded
  working set of segments (loop-based HPC codes touch their arrays over
  and over); every ``phase_accesses`` accesses a ``churn`` fraction of
  the working set is replaced with fresh zipf-drawn segments.  Phase
  rotation is what forces policies to re-adapt: PoM pays its competing
  counter threshold on every newly hot segment, caches adapt instantly
  (Section III-D), and AutoNUMA decays once the fast node fills.
* **temporal reuse skew** — working-set membership and intra-set
  popularity both follow a zipf law (``zipf_alpha``), so capturing the
  hot segments in stacked DRAM yields a high hit rate;
* **spatial locality** — accesses within a segment come in sequential
  64B-line runs of average ``run_length``, which is what makes
  2KB-segment designs (PoM, Chameleon) beat 64B designs (Alloy, CAMEO):
  one segment fill captures a whole run, a line cache misses on every
  new line.

Everything is seeded and deterministic; numpy draws access plans in
batches so pure-Python simulation stays fast.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.config import CACHELINE_BYTES
from repro.trace.batch import RecordBatch
from repro.trace.records import AccessRecord
from repro.workloads.suites import BenchmarkSpec


def zipf_weights(count: int, alpha: float) -> np.ndarray:
    """Normalised zipf(alpha) weights for ranks 1..count."""
    if count <= 0:
        raise ValueError("count must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


class SyntheticAccessGenerator:
    """Seeded access-record generator over an allocated segment set."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        segments: Sequence[int],
        segment_bytes: int,
        seed: int = 0,
        batch: int = 2048,
    ) -> None:
        if not segments:
            raise ValueError("workload owns no segments")
        if segment_bytes < CACHELINE_BYTES:
            raise ValueError("segment must hold at least one line")
        self.spec = spec
        self.segment_bytes = segment_bytes
        self.lines_per_segment = segment_bytes // CACHELINE_BYTES
        self._segments = np.asarray(sorted(segments), dtype=np.int64)
        self._rng = np.random.default_rng(seed)
        self._batch = batch
        count = len(self._segments)
        # Global popularity: zipf over a seeded permutation of the owned
        # segments (rank r -> segment _ranking[r]).
        self._ranking = self._rng.permutation(count)
        self._global_weights = zipf_weights(count, spec.zipf_alpha)
        # Current working set: indices into the rank space.
        ws_size = max(1, int(round(count * spec.working_set_fraction)))
        self._ws_size = min(ws_size, count)
        self._working_set = self._draw_members(self._ws_size)
        self._ws_weights = zipf_weights(self._ws_size, spec.zipf_alpha)
        self._accesses_in_phase = 0

    # ------------------------------------------------------------------

    def _draw_members(self, size: int) -> np.ndarray:
        """Draw ``size`` distinct rank indices, zipf-weighted."""
        count = len(self._segments)
        if size >= count:
            return np.arange(count)
        return self._rng.choice(
            count, size=size, replace=False, p=self._global_weights
        )

    def _rotate_phase(self) -> None:
        """Replace a ``churn`` fraction of the working set."""
        replace = int(round(self._ws_size * self.spec.churn))
        if replace <= 0:
            return
        keep_mask = np.ones(self._ws_size, dtype=bool)
        victims = self._rng.choice(self._ws_size, size=replace, replace=False)
        keep_mask[victims] = False
        kept = self._working_set[keep_mask]
        candidates = self._draw_members(min(len(self._segments), replace * 4))
        fresh: List[int] = []
        kept_set = set(int(v) for v in kept)
        for candidate in candidates:
            value = int(candidate)
            if value not in kept_set:
                fresh.append(value)
                kept_set.add(value)
            if len(fresh) >= replace:
                break
        while len(fresh) < replace:
            value = int(self._rng.integers(0, len(self._segments)))
            if value not in kept_set:
                fresh.append(value)
                kept_set.add(value)
        self._working_set = np.concatenate(
            [kept, np.asarray(fresh, dtype=self._working_set.dtype)]
        )

    # ------------------------------------------------------------------

    def stream_batches(self, num_accesses: int) -> Iterator[RecordBatch]:
        """Yield ``num_accesses`` LLC-miss records as column batches.

        One batch per drawn access plan.  The RNG call sequence is
        identical to the historical scalar emission loop: all plan
        draws happen before the plan's records exist, and the phase
        rotations a plan's records trigger are performed in order
        before the next plan is drawn (record emission itself never
        consumed entropy), so record streams are bit-identical to the
        pre-batch generator.
        """
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        remaining = num_accesses
        gap = self.spec.icount_gap
        run_length = self.spec.run_length
        lines_per_segment = self.lines_per_segment
        while remaining > 0:
            plan = min(self._batch, remaining)
            runs = max(1, plan // run_length)
            member_choices = self._rng.choice(
                self._ws_size, size=runs, p=self._ws_weights
            )
            rank_indices = self._working_set[member_choices]
            # A small cold tail touches the rest of the footprint
            # uniformly — the pages that page out first on a
            # capacity-limited system.
            if self.spec.tail_fraction > 0.0:
                tail_mask = (
                    self._rng.random(size=runs) < self.spec.tail_fraction
                )
                tail_count = int(tail_mask.sum())
                if tail_count:
                    rank_indices = rank_indices.copy()
                    rank_indices[tail_mask] = self._rng.integers(
                        0, len(self._segments), size=tail_count
                    )
            segment_ids = self._segments[self._ranking[rank_indices]]
            start_lines = self._rng.integers(
                0, lines_per_segment, size=runs
            )
            lengths = self._rng.geometric(
                1.0 / run_length, size=runs
            ).clip(1, lines_per_segment).astype(np.int64)
            writes = self._rng.random(size=runs) < self.spec.write_fraction

            # Flatten the runs into per-record columns, truncated to the
            # records the scalar loop would actually have emitted.
            run_starts = np.cumsum(lengths) - lengths
            run_index = np.repeat(
                np.arange(runs, dtype=np.int64), lengths
            )
            positions = (
                np.arange(run_index.size, dtype=np.int64)
                - np.repeat(run_starts, lengths)
            )
            emitted = min(run_index.size, remaining)
            if emitted < run_index.size:
                run_index = run_index[:emitted]
                positions = positions[:emitted]
            lines = (
                start_lines[run_index] + positions
            ) % lines_per_segment
            addresses = (
                segment_ids[run_index] * self.segment_bytes
                + lines * CACHELINE_BYTES
            )
            remaining -= emitted
            # Phase bookkeeping: each record increments the in-phase
            # count and rotates on reaching ``phase_accesses``, so a
            # batch of ``emitted`` records triggers a deterministic
            # number of rotations (performed in order, before the next
            # plan draws from the rotated working set).
            progressed = self._accesses_in_phase + emitted
            rotations = progressed // self.spec.phase_accesses
            self._accesses_in_phase = progressed % self.spec.phase_accesses
            for _ in range(rotations):
                self._rotate_phase()
            yield RecordBatch(
                addresses=addresses,
                icount_gaps=np.full(emitted, gap, dtype=np.int64),
                is_writes=writes[run_index],
            )

    def stream(self, num_accesses: int) -> Iterator[AccessRecord]:
        """Yield ``num_accesses`` LLC-miss records (scalar adapter)."""
        for batch in self.stream_batches(num_accesses):
            yield from batch.records()

    # ------------------------------------------------------------------

    def working_set_segments(self) -> List[int]:
        """Segment ids of the current working set (hot first)."""
        return [
            int(self._segments[self._ranking[rank]])
            for rank in self._working_set
        ]

    def hot_segments(self, top: int) -> List[int]:
        """The ``top`` globally most popular segments."""
        top = min(top, len(self._segments))
        return [int(self._segments[self._ranking[r]]) for r in range(top)]
