"""Table II: the benchmark catalogue and synthesis personalities.

``llc_mpki`` and ``footprint_gb`` are taken verbatim from Table II
(12-copy rate-mode workloads).  The remaining fields are the synthesis
personality — the knobs of :class:`repro.workloads.synthetic.
SyntheticAccessGenerator` chosen per benchmark class:

* ``zipf_alpha`` — temporal reuse skew over segments (streaming codes
  get low skew, pointer-chasing codes like mcf get moderate skew over a
  large set, stencil codes get high skew);
* ``run_length`` — average sequential 64B-line run inside a segment
  (spatial locality; streaming codes run long, mcf short);
* ``write_fraction`` — store share of LLC misses;
* ``phase_accesses`` / ``churn`` — how often and how strongly the hot
  ranking rotates, driving swap churn and the AutoNUMA decay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BenchmarkSpec:
    """One rate-mode workload (12 copies of one application)."""

    name: str
    suite: str
    llc_mpki: float
    footprint_gb: float
    zipf_alpha: float
    run_length: int
    write_fraction: float
    working_set_fraction: float = 0.15
    #: Fraction of access runs that touch a uniformly random segment of
    #: the whole footprint instead of the working set — the cold tail
    #: that drives steady-state paging on capacity-limited systems.
    tail_fraction: float = 0.05
    phase_accesses: int = 8000
    churn: float = 0.1

    def __post_init__(self) -> None:
        if self.llc_mpki <= 0:
            raise ValueError("MPKI must be positive")
        if self.footprint_gb <= 0:
            raise ValueError("footprint must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write fraction must be in [0, 1]")
        if self.run_length < 1:
            raise ValueError("run length must be >= 1")
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn must be in [0, 1]")
        if not 0.0 < self.working_set_fraction <= 1.0:
            raise ValueError("working_set_fraction must be in (0, 1]")
        if not 0.0 <= self.tail_fraction < 1.0:
            raise ValueError("tail_fraction must be in [0, 1)")

    @property
    def icount_gap(self) -> int:
        """Instructions between LLC misses implied by the MPKI."""
        return max(1, round(1000.0 / self.llc_mpki))


def _spec(
    name: str,
    suite: str,
    mpki: float,
    footprint: float,
    alpha: float,
    run: int,
    writes: float,
    ws: float = 0.15,
    churn: float = 0.1,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        suite=suite,
        llc_mpki=mpki,
        footprint_gb=footprint,
        zipf_alpha=alpha,
        run_length=run,
        write_fraction=writes,
        working_set_fraction=ws,
        churn=churn,
    )


#: Table II, in the paper's row order.
TABLE2_BENCHMARKS: List[BenchmarkSpec] = [
    _spec("bwaves", "SPEC2006", 12.91, 21.86, 1.10, 16, 0.30, ws=0.15),
    _spec("lbm", "SPEC2006", 29.55, 19.17, 0.95, 24, 0.45, ws=0.18),
    _spec("cactusADM", "SPEC2006", 2.03, 20.12, 1.10, 12, 0.35, ws=0.12),
    _spec("leslie3d", "SPEC2006", 12.18, 21.65, 1.05, 16, 0.30, ws=0.15),
    _spec("mcf", "SPEC2006", 59.804, 19.65, 0.90, 2, 0.25, ws=0.30, churn=0.15),
    _spec("GemsFDTD", "SPEC2006", 20.783, 22.56, 1.00, 16, 0.35, ws=0.16),
    _spec("SP", "NAS", 0.87, 21.72, 1.10, 12, 0.30, ws=0.12),
    _spec("stream", "Stream", 35.77, 21.66, 0.40, 32, 0.40, ws=0.60, churn=0.30),
    _spec("cloverleaf", "Mantevo", 30.33, 23.01, 0.95, 24, 0.40, ws=0.20, churn=0.20),
    _spec("comd", "Mantevo", 0.71, 23.18, 1.10, 8, 0.25, ws=0.12),
    _spec("miniAMR", "Mantevo", 1.44, 22.40, 1.05, 12, 0.30, ws=0.13),
    _spec("hpccg", "Mantevo", 7.81, 22.15, 1.00, 20, 0.30, ws=0.15),
    _spec("miniFE", "Mantevo", 0.48, 22.55, 1.05, 16, 0.30, ws=0.13),
    _spec("miniGhost", "Mantevo", 0.19, 20.68, 1.10, 12, 0.30, ws=0.12),
]

_BY_NAME: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in TABLE2_BENCHMARKS
}


def benchmark(name: str) -> BenchmarkSpec:
    """Look a benchmark up by its Table II name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def benchmark_names() -> List[str]:
    return [spec.name for spec in TABLE2_BENCHMARKS]


def high_footprint_benchmarks(threshold_gb: float = 20.0) -> List[BenchmarkSpec]:
    """Benchmarks whose rate-mode footprint exceeds ``threshold_gb`` —
    the ones that page-fault on capacity-limited systems."""
    return [
        spec for spec in TABLE2_BENCHMARKS if spec.footprint_gb > threshold_gb
    ]


def memory_intensive_benchmarks(mpki_threshold: float = 5.0) -> List[BenchmarkSpec]:
    """Benchmarks the paper calls memory intensive (Section VI-C)."""
    return [
        spec for spec in TABLE2_BENCHMARKS if spec.llc_mpki >= mpki_threshold
    ]
