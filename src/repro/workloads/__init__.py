"""Workload models.

The paper evaluates 14 multiprogrammed workloads — 12 rate-mode copies
of one benchmark each — drawn from SPEC CPU2006, NAS, Mantevo and
STREAM, characterised in Table II by LLC-MPKI and memory footprint.
This package synthesises statistically equivalent memory behaviour:

* :mod:`repro.workloads.suites` — the Table II catalogue plus each
  benchmark's locality personality (zipf skew, spatial run length,
  write fraction, phase churn);
* :mod:`repro.workloads.synthetic` — seeded generators for zipf-ranked
  segment popularity with phase re-ranking and sequential intra-segment
  runs;
* :mod:`repro.workloads.placement` — footprint placement over the OS
  physical space (contiguous or scattered, the latter modelling a
  long-running fragmented system);
* :mod:`repro.workloads.multiprog` — the 12-copy rate-mode workload
  builder used by every experiment.
"""

from repro.workloads.suites import (
    BenchmarkSpec,
    TABLE2_BENCHMARKS,
    benchmark,
    benchmark_names,
    high_footprint_benchmarks,
)
from repro.workloads.synthetic import SyntheticAccessGenerator, zipf_weights
from repro.workloads.placement import (
    contiguous_placement,
    scattered_placement,
)
from repro.workloads.compiled import CompiledTrace, CoreTrace, compile_trace
from repro.workloads.multiprog import MultiprogramWorkload, build_workload

__all__ = [
    "BenchmarkSpec",
    "TABLE2_BENCHMARKS",
    "benchmark",
    "benchmark_names",
    "high_footprint_benchmarks",
    "SyntheticAccessGenerator",
    "zipf_weights",
    "contiguous_placement",
    "scattered_placement",
    "CompiledTrace",
    "CoreTrace",
    "compile_trace",
    "MultiprogramWorkload",
    "build_workload",
]
