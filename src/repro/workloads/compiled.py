"""Precompiled workload traces.

:func:`compile_trace` drains a workload's seeded generators once and
freezes the result as struct-of-arrays columns — the single source of
truth behind both replay paths: the shared-memory trace arena exports
these columns for zero-copy reuse across sweep cells, and a cell that
cannot attach simply regenerates and gets byte-identical records
(generation is deterministic in ``(spec, placement, seed)``).

The one sharp edge is partial replay: generator RNG plans are sized by
the *remaining* record count, so the first ``n`` records of a longer
compiled trace are **not** the records a fresh ``stream_batches(n)``
would produce.  A :class:`CompiledTrace` therefore refuses to serve any
request that is not exactly the record count it was compiled for —
silently serving a prefix would break the bit-identical sweep
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.trace.batch import RecordBatch, align_offset
from repro.trace.records import AccessRecord
from repro.trace.streams import replay_batches


@dataclass(frozen=True)
class CoreTrace:
    """One core's full record run plus its original chunk boundaries."""

    batch: RecordBatch
    #: ``int64`` chunk sizes: the generator's plan boundaries, preserved
    #: so replay yields the exact batch sequence generation would.
    batch_lengths: np.ndarray

    def __len__(self) -> int:
        return len(self.batch)

    @property
    def nbytes(self) -> int:
        return self.batch.nbytes + int(self.batch_lengths.nbytes)

    def batches(self) -> Iterator[RecordBatch]:
        """Replay the original generator batch sequence (zero-copy)."""
        return replay_batches(self.batch, self.batch_lengths.tolist())

    def records(self) -> Iterator[AccessRecord]:
        """Scalar-compatibility replay."""
        for chunk in self.batches():
            yield from chunk.records()


@dataclass(frozen=True)
class CompiledTrace:
    """A workload's trace, compiled once, replayable any number of times.

    Duck-compatible with the generator side of
    :class:`~repro.workloads.multiprog.MultiprogramWorkload`: the
    ``streams``/``stream_batches`` pair produces the same per-core
    iterators generation would — provided ``accesses_per_core`` matches
    :attr:`accesses_per_core` exactly (see the module docstring for why
    prefixes are refused).
    """

    workload: str
    accesses_per_core: int
    cores: Tuple[CoreTrace, ...]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def nbytes(self) -> int:
        """Aligned payload size: what an arena export of this trace
        occupies (column blocks plus chunk-boundary arrays)."""
        total = 0
        for core in self.cores:
            total = RecordBatch.buffer_layout(len(core), total)["end"]
            total = align_offset(total + int(core.batch_lengths.nbytes))
        return total

    def _check(self, accesses_per_core: int) -> None:
        if accesses_per_core != self.accesses_per_core:
            raise ValueError(
                f"trace for workload {self.workload!r} was compiled for "
                f"exactly {self.accesses_per_core} accesses per core; "
                f"{accesses_per_core} requested (prefix replay would "
                f"diverge from generation — recompile instead)"
            )

    def stream_batches(
        self, accesses_per_core: int
    ) -> List[Iterator[RecordBatch]]:
        self._check(accesses_per_core)
        return [core.batches() for core in self.cores]

    def streams(self, accesses_per_core: int) -> List[Iterator[AccessRecord]]:
        self._check(accesses_per_core)
        return [core.records() for core in self.cores]


def compile_trace(workload, accesses_per_core: int) -> CompiledTrace:
    """Drain ``workload``'s generators into a :class:`CompiledTrace`.

    Always compiles from the seeded generators (never from a trace the
    workload may already carry), so the compiled columns are exactly
    what per-cell generation would produce.
    """
    if accesses_per_core < 0:
        raise ValueError("accesses_per_core must be non-negative")
    cores = []
    for generator in workload.generators():
        chunks = list(generator.stream_batches(accesses_per_core))
        cores.append(
            CoreTrace(
                batch=RecordBatch.concat(chunks),
                batch_lengths=np.asarray(
                    [len(chunk) for chunk in chunks], dtype=np.int64
                ),
            )
        )
    return CompiledTrace(
        workload=workload.name,
        accesses_per_core=accesses_per_core,
        cores=tuple(cores),
    )


__all__ = ["CompiledTrace", "CoreTrace", "compile_trace"]
