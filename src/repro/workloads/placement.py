"""Footprint placement over the OS physical address space.

How a workload's pages land in physical memory decides which segment
groups have free segments — the quantity Chameleon harvests.  Two
models are provided:

* :func:`contiguous_placement` — pages packed from address zero, the
  behaviour of a freshly booted machine with an empty buddy allocator;
* :func:`scattered_placement` — pages spread uniformly at random over
  the physical space, the steady state of a long-running machine whose
  free lists have been churned by allocation/free cycles (the regime
  the paper's Figure 3 system lives in, and the one that reproduces the
  paper's cache-mode fractions: with occupancy ``p`` a group of ``k``
  segments keeps at least one free segment with probability
  ``1 - p**k`` — 40.6% for the 4GB+20GB system at 91.7% occupancy,
  Figure 16's Chameleon-Opt average).
"""

from __future__ import annotations

from typing import List

import numpy as np


def contiguous_placement(
    total_segments: int, allocated_segments: int, start: int = 0
) -> List[int]:
    """Allocate ``allocated_segments`` consecutively from ``start``."""
    _check(total_segments, allocated_segments)
    if start < 0 or start + allocated_segments > total_segments:
        raise ValueError("contiguous run does not fit")
    return list(range(start, start + allocated_segments))


def scattered_placement(
    total_segments: int, allocated_segments: int, seed: int = 0
) -> List[int]:
    """Allocate ``allocated_segments`` uniformly at random (seeded)."""
    _check(total_segments, allocated_segments)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(total_segments, size=allocated_segments, replace=False)
    chosen.sort()
    return [int(value) for value in chosen]


def _check(total_segments: int, allocated_segments: int) -> None:
    if total_segments <= 0:
        raise ValueError("total_segments must be positive")
    if not 0 < allocated_segments <= total_segments:
        raise ValueError(
            f"cannot place {allocated_segments} segments in "
            f"{total_segments}"
        )
