"""Rate-mode multiprogrammed workload builder.

A paper workload is 12 copies of one benchmark (Section III-B).  The
builder scales the Table II footprint to the simulated system's size —
experiments run on proportionally scaled configurations, so footprints
are expressed as a fraction of the paper's 24GB machine — places the
footprint over the physical space, partitions it among the copies, and
hands each copy a seeded synthetic access generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.config import SystemConfig
from repro.trace.batch import RecordBatch
from repro.trace.records import AccessRecord
from repro.workloads.compiled import CompiledTrace
from repro.workloads.placement import contiguous_placement, scattered_placement
from repro.workloads.suites import BenchmarkSpec
from repro.workloads.synthetic import SyntheticAccessGenerator

#: The paper's machine: 24GB total OS-visible capacity.
PAPER_TOTAL_GB = 24.0


@dataclass
class MultiprogramWorkload:
    """A placed, ready-to-run multiprogrammed workload."""

    config: SystemConfig
    spec: BenchmarkSpec
    num_copies: int
    segments: List[int]
    per_core_segments: List[List[int]] = field(repr=False)
    seed: int = 0
    #: Optional precompiled trace (e.g. attached from a shared-memory
    #: arena); when set, ``streams``/``stream_batches`` replay it
    #: instead of regenerating — byte-identical either way, since the
    #: trace is compiled from the same seeded generators.
    trace: CompiledTrace | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def footprint_bytes(self) -> int:
        return len(self.segments) * self.config.segment_bytes

    @property
    def occupancy(self) -> float:
        """Fraction of OS-visible (PoM) capacity the workload occupies."""
        total = self.config.num_fast_segments + self.config.num_slow_segments
        return len(self.segments) / total

    def generators(self) -> List[SyntheticAccessGenerator]:
        """One seeded generator per copy (core)."""
        return [
            SyntheticAccessGenerator(
                spec=self.spec,
                segments=core_segments,
                segment_bytes=self.config.segment_bytes,
                seed=self.seed * 1000 + core,
            )
            for core, core_segments in enumerate(self.per_core_segments)
        ]

    def attach_trace(self, trace: CompiledTrace) -> "MultiprogramWorkload":
        """Serve future streams from ``trace`` instead of regenerating.

        The trace must have been compiled from an identically built
        workload (same name, same core count); the per-request record
        count is validated by :class:`CompiledTrace` itself.
        """
        if trace.workload != self.name:
            raise ValueError(
                f"trace is for workload {trace.workload!r}, "
                f"this workload is {self.name!r}"
            )
        if trace.num_cores != self.num_copies:
            raise ValueError(
                f"trace has {trace.num_cores} cores, "
                f"workload has {self.num_copies}"
            )
        self.trace = trace
        return self

    def detach_trace(self) -> None:
        """Drop an attached trace (streams regenerate again)."""
        self.trace = None

    def streams(self, accesses_per_core: int) -> List[Iterator[AccessRecord]]:
        if self.trace is not None:
            return self.trace.streams(accesses_per_core)
        return [
            generator.stream(accesses_per_core)
            for generator in self.generators()
        ]

    def stream_batches(
        self, accesses_per_core: int
    ) -> List[Iterator[RecordBatch]]:
        """Column-batch form of :meth:`streams` (same records, same
        seeds) for the batched replay kernel."""
        if self.trace is not None:
            return self.trace.stream_batches(accesses_per_core)
        return [
            generator.stream_batches(accesses_per_core)
            for generator in self.generators()
        ]

    def apply_allocations(self, architecture) -> None:
        """Issue ISA-Alloc for every allocated segment (Algorithm 1).

        The paper's simulated snippets observe workloads that allocated
        everything up front (Section VI-B); this reproduces that state.
        """
        for segment in self.segments:
            architecture.isa_alloc(segment)

    def release_allocations(self, architecture) -> None:
        """Issue ISA-Free for every segment (workload teardown)."""
        for segment in self.segments:
            architecture.isa_free(segment)


def build_workload(
    config: SystemConfig,
    spec: BenchmarkSpec,
    num_copies: int = 12,
    scattered: bool = True,
    seed: int = 0,
    footprint_override_fraction: float | None = None,
    exclude_segments: "set[int] | None" = None,
) -> MultiprogramWorkload:
    """Place ``spec``'s footprint on ``config`` and split it 12 ways.

    ``footprint_override_fraction`` overrides the Table II footprint
    (as a fraction of total capacity) for sensitivity experiments.
    ``exclude_segments`` keeps the placement disjoint from segments
    already owned by a co-resident workload (multi-tenant scenarios).
    """
    if num_copies < 1:
        raise ValueError("need at least one copy")
    total_segments = config.num_fast_segments + config.num_slow_segments
    fraction = (
        footprint_override_fraction
        if footprint_override_fraction is not None
        else spec.footprint_gb / PAPER_TOTAL_GB
    )
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"footprint fraction {fraction} out of (0, 1]")
    # The OS allocates whole pages, so placement works at page
    # granularity and expands to the segments each page covers; with
    # segments smaller than a page the covered segments land in
    # *adjacent* groups, so the per-group free statistics match a pure
    # per-segment scatter.
    segments_per_unit = max(1, config.page_bytes // config.segment_bytes)
    total_units = total_segments // segments_per_unit
    units_needed = max(
        -(-num_copies // segments_per_unit),
        int(round(total_units * fraction)),
    )
    units_needed = min(units_needed, total_units)
    excluded_units: set[int] = set()
    if exclude_segments:
        excluded_units = {
            segment // segments_per_unit for segment in exclude_segments
        }
    if excluded_units:
        allowed = [
            unit for unit in range(total_units) if unit not in excluded_units
        ]
        if units_needed > len(allowed):
            raise ValueError(
                "footprint does not fit alongside the excluded segments"
            )
        if scattered:
            picks = scattered_placement(len(allowed), units_needed, seed=seed)
            units = [allowed[index] for index in picks]
        else:
            units = allowed[:units_needed]
    elif scattered:
        units = scattered_placement(total_units, units_needed, seed=seed)
    else:
        units = contiguous_placement(total_units, units_needed)
    segments = [
        unit * segments_per_unit + index
        for unit in units
        for index in range(segments_per_unit)
    ]
    per_core = [segments[core::num_copies] for core in range(num_copies)]
    return MultiprogramWorkload(
        config=config,
        spec=spec,
        num_copies=num_copies,
        segments=segments,
        per_core_segments=per_core,
        seed=seed,
    )
