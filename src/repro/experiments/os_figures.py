"""Runners for the OS-solution motivation figures (2a, 2b, 2c)."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.experiments.designs import REGISTRY
from repro.experiments.figures import FigureResult, _mean
from repro.experiments.runner import Scale, run_design_sweep
from repro.osmodel.autonuma import AutoNumaConfig
from repro.runtime import SweepExecutor
from repro.sim import AutoNumaMemory, simulate
from repro.stats import Timeline
from repro.workloads import benchmark, build_workload


def run_fig2a(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """Stacked DRAM hit rate under the NUMA-aware first-touch allocator.

    Paper average: 18.5% for the high-footprint workloads.
    """
    results = run_design_sweep(
        scale, REGISTRY.figure_labels("fig2a"), executor=executor
    )
    headers = ["workload", "hit rate %"]
    rows = [
        [name, results[("numaAware", name)].fast_hit_rate * 100.0]
        for name in scale.benchmarks
    ]
    average = _mean(row[1] for row in rows)
    rows.append(["Average", average])
    return FigureResult(
        "Figure 2a: first-touch allocator stacked DRAM hit rate [%]",
        headers,
        rows,
        {"average": average},
    )


def run_fig2b(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """AutoNUMA hit rates for 70/80/90% thresholds (paper avg 64.4%,
    higher thresholds better).

    The paper reports *cumulative* hit rates over whole runs, which are
    dominated by how quickly each threshold migrates the misplaced
    pages — so this figure measures from a cold start (no warm-up), the
    adaptation phase included.
    """
    designs = REGISTRY.figure_labels("fig2b")
    cold_scale = dataclasses.replace(
        scale,
        warmup_per_core=0,
        accesses_per_core=scale.accesses_per_core + scale.warmup_per_core,
    )
    results = run_design_sweep(cold_scale, designs, executor=executor)
    headers = ["workload"] + [d for d in designs]
    rows = []
    for name in cold_scale.benchmarks:
        rows.append(
            [name]
            + [
                results[(design, name)].fast_hit_rate * 100.0
                for design in designs
            ]
        )
    summary = {
        design: _mean(
            results[(design, name)].fast_hit_rate * 100.0
            for name in scale.benchmarks
        )
        for design in designs
    }
    rows.append(["Average"] + [summary[d] for d in designs])
    return FigureResult(
        "Figure 2b: AutoNUMA stacked DRAM hit rate [%]",
        headers,
        rows,
        summary,
    )


def run_fig2c(
    scale: Scale,
    workload_name: str = "cloverleaf",
    threshold: float = 0.9,
    epoch_accesses: int = 1500,
) -> Tuple[Timeline, FigureResult]:
    """The Cloverleaf AutoNUMA timeline: migrations per epoch and hit
    rate over time (paper: peak ≈77.1% at epoch 81, decays to 30.7%
    once the stacked node fills and -ENOMEM blocks migration).

    Returns the raw timeline plus a table of (epoch, migrated, hit).
    """
    config = scale.config()
    # Faster churn than the steady-state sweeps so the rise-peak-decay
    # dynamics fit the simulated window, mirroring the paper's
    # hour-scale timeline.
    spec = dataclasses.replace(
        benchmark(workload_name), churn=0.3, phase_accesses=2000
    )
    workload = build_workload(
        config, spec, num_copies=scale.num_copies, seed=scale.seed
    )
    arch = AutoNumaMemory(
        config,
        autonuma=AutoNumaConfig(threshold=threshold),
        epoch_accesses=epoch_accesses,
    )
    simulate(
        arch,
        workload,
        accesses_per_core=scale.accesses_per_core * 4,
        warmup_per_core=0,
    )
    timeline = arch.balancer.timeline
    headers = ["epoch", "migrated", "hit rate %"]
    rows: List[List] = [
        [int(time), values["migrated"], values["hit_rate"] * 100.0]
        for time, values in timeline.rows()
    ]
    peak_epoch, peak = timeline.peak("hit_rate")
    summary: Dict[str, float] = {
        "peak_hit_percent": peak * 100.0,
        "peak_epoch": peak_epoch,
        "final_hit_percent": timeline.last("hit_rate") * 100.0,
        "total_migrated": sum(timeline.series("migrated")),
    }
    figure = FigureResult(
        f"Figure 2c: {workload_name} AutoNUMA timeline "
        f"(threshold {threshold:.0%})",
        headers,
        rows,
        summary,
    )
    return timeline, figure
