"""Plain-text rendering of experiment results.

The paper's figures are bar charts and timelines; the runners print the
same data as aligned ASCII tables and (time, value) series so a
benchmark run's stdout is directly comparable against the paper.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    times: Sequence[float],
    channels: Mapping[str, Sequence[float]],
    title: str | None = None,
    max_points: int = 40,
) -> str:
    """Render a multi-channel time series, downsampled for stdout."""
    count = len(times)
    for name, values in channels.items():
        if len(values) != count:
            raise ValueError(f"channel {name!r} length mismatch")
    if count > max_points:
        step = count / max_points
        indices = [int(i * step) for i in range(max_points)]
    else:
        indices = list(range(count))
    headers = ["t"] + list(channels)
    rows = [
        [times[i]] + [channels[name][i] for name in channels]
        for i in indices
    ]
    return format_table(headers, rows, title=title)


def format_comparison(
    label: str,
    measured: float,
    paper: float,
    unit: str = "%",
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md style reporting."""
    return (
        f"{label}: measured {measured:+.1f}{unit} "
        f"(paper {paper:+.1f}{unit})"
    )
