"""Tracked perf-bench harness for the replay kernels.

``python -m repro.experiments bench`` times both replay kernels on the
figure-15 design set, verifies batched/scalar parity while doing so,
times the figure-15/18 smoke sweeps end to end, and writes the whole
record to ``BENCH_kernel.json`` so kernel throughput is tracked in CI
alongside correctness.

The numbers answer three questions:

* how fast is each kernel (``accesses_per_sec`` per design, telemetry
  off, best of ``repeats``);
* is the batched kernel still exact (``parity`` per design — byte-equal
  :meth:`~repro.sim.SimulationResult.to_dict` plus an identical
  telemetry event stream against the scalar reference);
* what does a user-visible sweep cost (``figures`` wall seconds);
* what does the shared-memory trace arena save (``sweep_setup`` —
  per-cell workload prep with the arena off vs on at fig15 smoke
  scale, plus an arena-on/off whole-sweep parity bit);
* what does the serving layer add on top of a cell (``serve_latency``
  — cold vs warm request p50/p95 through a live ``repro.serve``
  server at smoke scale, plus the coalescing hit ratio).
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from typing import Any, Dict

from repro.experiments.designs import REGISTRY
from repro.experiments.runner import SMOKE_SCALE, Scale, clear_sweep_cache
from repro.sim import select_kernel, simulate
from repro.telemetry.bus import EventBus
from repro.telemetry.recorder import EventLog
from repro.workloads import benchmark, build_workload

#: Wire-format version of ``BENCH_kernel.json``.
#: 2: added the ``sweep_setup`` arena section.
#: 3: added the ``serve_latency`` service section.
#: 4: per-design ``reason`` (kernel-selection rationale) and the
#:    pager-backed ``baseline_20GB_DDR3`` row (batched-paged kernel).
BENCH_SCHEMA_VERSION = 4

#: Default output path of the ``bench`` subcommand.
DEFAULT_BENCH_OUT = "BENCH_kernel.json"

#: Designs timed by the kernel benchmark: the figure-15 comparison set
#: plus the under-provisioned flat baseline.  Alloy-Cache and
#: baseline_20GB_DDR3 are pager-backed and exercise the fault-segmented
#: ``batched-paged`` kernel; the other three run the plain batched
#: kernel under ``kernel="auto"``.
BENCH_DESIGNS = (
    "Alloy-Cache",
    "baseline_20GB_DDR3",
    "PoM",
    "Chameleon",
    "Chameleon-Opt",
)

#: Throughput-measurement scale: long enough that per-access cost
#: dominates fixed setup, small enough for CI (24k accesses per run).
BENCH_SCALE = Scale(
    fast_mb=1.0,
    accesses_per_core=3000,
    warmup_per_core=3000,
    num_copies=4,
    benchmarks=("mcf",),
)


def _simulate_once(
    label: str,
    scale: Scale,
    kernel: str,
    telemetry: EventBus | None = None,
):
    config = scale.config()
    architecture = REGISTRY.get(label).factory(config)
    workload = build_workload(
        config,
        benchmark(scale.benchmarks[0]),
        num_copies=scale.num_copies,
        seed=scale.seed,
    )
    start = time.perf_counter()
    result = simulate(
        architecture,
        workload,
        accesses_per_core=scale.accesses_per_core,
        warmup_per_core=scale.warmup_per_core,
        telemetry=telemetry,
        kernel=kernel,
    )
    return time.perf_counter() - start, result, architecture, workload


def _throughput(label: str, scale: Scale, kernel: str, repeats: int) -> float:
    """Best-of-``repeats`` accesses/sec (warmup + measured), telemetry off."""
    total = (scale.accesses_per_core + scale.warmup_per_core) * scale.num_copies
    best = float("inf")
    for _ in range(repeats):
        elapsed, _, _, _ = _simulate_once(label, scale, kernel)
        best = min(best, elapsed)
    return total / best


def _parity_check(label: str, scale: Scale):
    """(parity, auto-resolved :class:`~repro.sim.KernelDecision`) for
    ``label`` at ``scale``.

    Parity compares the full wire form *and* the telemetry event stream
    of a forced-scalar run against ``kernel="auto"``.
    """
    def capture(kernel: str):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        _, result, _, _ = _simulate_once(label, scale, kernel, telemetry=bus)
        return (
            json.dumps(result.to_dict(), sort_keys=True),
            [event.to_dict() for event in log.events],
        )

    scalar = capture("scalar")
    auto = capture("auto")
    _, _, architecture, workload = _simulate_once(label, scale, "scalar")
    pager_present = (
        architecture.os_visible_bytes < workload.config.total_capacity_bytes
    )
    resolved = select_kernel(architecture, workload, pager_present)
    return scalar == auto, resolved


def _figure_wall_seconds(scale: Scale) -> Dict[str, float]:
    """End-to-end wall time of the fig15/fig18 smoke sweeps (no cache)."""
    from repro.experiments.figures import run_fig15, run_fig18
    from repro.runtime import SweepExecutor

    seconds: Dict[str, float] = {}
    for name, runner in (("fig15", run_fig15), ("fig18", run_fig18)):
        clear_sweep_cache()
        executor = SweepExecutor(jobs=1, cache=None)
        start = time.perf_counter()
        runner(scale, executor=executor)
        seconds[name] = time.perf_counter() - start
    clear_sweep_cache()
    return seconds


def _sweep_setup_bench(scale: Scale, repeats: int) -> Dict[str, Any]:
    """Arena economics at ``scale``: what one sweep cell pays to get
    its workload trace with the arena off (synthesise from the spec)
    vs on (attach the parent's precompiled columns), plus the one-off
    publish cost and an arena-on/off whole-sweep parity check."""
    from repro.runtime import SweepExecutor
    from repro.runtime.arena import TraceArena, attach_arena
    from repro.workloads import build_workload as _build
    from repro.workloads.compiled import compile_trace

    names = list(scale.benchmarks)
    total = scale.warmup_per_core + scale.accesses_per_core
    config = scale.config()

    def generate_all() -> float:
        start = time.perf_counter()
        for name in names:
            workload = _build(
                config,
                benchmark(name),
                num_copies=scale.num_copies,
                seed=scale.seed,
            )
            compile_trace(workload, total)
        return time.perf_counter() - start

    generate_seconds = min(generate_all() for _ in range(repeats))

    publish_start = time.perf_counter()
    arena = TraceArena.publish(scale, names)
    publish_seconds = time.perf_counter() - publish_start
    if arena is None:  # no /dev/shm — report generation cost only
        return {
            "available": False,
            "per_cell_prep_off_ms": round(
                generate_seconds / len(names) * 1e3, 3
            ),
        }
    try:
        def attach_all() -> float:
            start = time.perf_counter()
            view = attach_arena(arena.manifest)
            try:
                for name in names:
                    view.trace(name)
            finally:
                view.close()
            return time.perf_counter() - start

        attach_seconds = min(attach_all() for _ in range(repeats))
    finally:
        arena_bytes = arena.nbytes
        arena.dispose()

    def fig15_sweep(use_arena: bool) -> str:
        executor = SweepExecutor(jobs=1, cache=None, arena=use_arena)
        results = executor.run(scale, BENCH_DESIGNS)
        return json.dumps(
            {
                f"{d}/{w}": r.to_dict()
                for (d, w), r in sorted(results.items())
            },
            sort_keys=True,
        )

    per_cell_off = generate_seconds / len(names)
    per_cell_on = attach_seconds / len(names)
    return {
        "available": True,
        "arena_bytes": arena_bytes,
        "publish_seconds": round(publish_seconds, 4),
        "per_cell_prep_off_ms": round(per_cell_off * 1e3, 3),
        "per_cell_prep_on_ms": round(per_cell_on * 1e3, 3),
        "prep_speedup": round(per_cell_off / max(per_cell_on, 1e-9), 1),
        "parity": fig15_sweep(True) == fig15_sweep(False),
    }


def _serve_latency_bench(scale: Scale) -> Dict[str, Any]:
    """Request latency through a live server at ``scale``.

    Cold requests simulate their cell; warm requests repeat the same
    cells and must be answered from the completed-job table / result
    cache without a worker.  A burst of identical concurrent requests
    measures the coalescing hit ratio.
    """
    import tempfile
    import threading
    from pathlib import Path

    from repro.runtime import ResultCache
    from repro.serve import Client, ServerThread

    cells = [
        {"design": "Chameleon", "workload": name} for name in scale.benchmarks
    ]
    scale_fields = {
        "fast_mb": scale.fast_mb,
        "ratio": scale.ratio,
        "accesses_per_core": scale.accesses_per_core,
        "warmup_per_core": scale.warmup_per_core,
        "num_copies": scale.num_copies,
        "seed": scale.seed,
    }

    def timed_request(client: Client, payload: Dict[str, Any]) -> float:
        start = time.perf_counter()
        client.simulate({**scale_fields, **payload})
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        with ServerThread(port=0, cache=cache) as srv:
            client = Client(port=srv.port)
            cold = sorted(timed_request(client, cell) for cell in cells)
            warm = sorted(timed_request(client, cell) for cell in cells)
            # Snapshot before the burst: the warm pass must not have
            # cost any worker cells beyond the cold pass's.
            after_warm = client.metrics()

            # A cold cell (fresh seed) so the burst actually coalesces
            # instead of hitting the completed-job table.
            burst = {
                **scale_fields,
                **cells[0],
                "seed": scale.seed + 1,
                "wait": True,
            }
            workers = 4
            latencies = [0.0] * workers

            def fire(index: int) -> None:
                start = time.perf_counter()
                client.request("POST", "/v1/simulate", burst)
                latencies[index] = time.perf_counter() - start

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = client.metrics()

    def block(samples: list) -> Dict[str, float]:
        from repro.serve.metrics import percentile

        return {
            "p50_ms": round(percentile(samples, 0.50) * 1e3, 3),
            "p95_ms": round(percentile(samples, 0.95) * 1e3, 3),
        }

    return {
        "cells": len(cells),
        "cold": block(cold),
        "warm": block(warm),
        "warm_no_worker": (
            after_warm["dispatch"]["worker_cells"] == len(cells)
        ),
        "coalesce_hit_ratio": round(
            snapshot["requests"]["coalesced"]
            / max(1, snapshot["requests"]["received"]),
            4,
        ),
        "cache_hit_ratio": snapshot["cache_hit_ratio"],
    }


def run_kernel_bench(
    scale: Scale = BENCH_SCALE,
    figure_scale: Scale = SMOKE_SCALE,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Run the whole benchmark; returns the ``BENCH_kernel.json`` payload."""
    designs: Dict[str, Any] = {}
    for label in BENCH_DESIGNS:
        parity, decision = _parity_check(label, SMOKE_SCALE)
        scalar_rate = _throughput(label, scale, "scalar", repeats)
        auto_rate = _throughput(label, scale, "auto", repeats)
        designs[label] = {
            "kernel": decision.kernel,
            "reason": decision.reason,
            "parity": parity,
            "scalar_accesses_per_sec": round(scalar_rate, 1),
            "auto_accesses_per_sec": round(auto_rate, 1),
            "speedup_vs_scalar": round(auto_rate / scalar_rate, 3),
        }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "scale": dataclasses.asdict(scale),
        "repeats": repeats,
        "designs": designs,
        "figures": {
            name: round(seconds, 3)
            for name, seconds in _figure_wall_seconds(figure_scale).items()
        },
        "sweep_setup": _sweep_setup_bench(figure_scale, repeats),
        "serve_latency": _serve_latency_bench(figure_scale),
    }


def run_bench_command(
    out_path: str = DEFAULT_BENCH_OUT, repeats: int = 3
) -> int:
    """CLI entry point: print a summary, write the JSON, gate on parity."""
    payload = run_kernel_bench(repeats=repeats)
    print(f"kernel benchmark ({payload['repeats']} repeats, best-of)")
    for label, row in payload["designs"].items():
        print(
            f"  {label:18s} kernel={row['kernel']:13s} "
            f"[{row['reason']}] "
            f"scalar={row['scalar_accesses_per_sec']:>10,.0f}/s "
            f"auto={row['auto_accesses_per_sec']:>10,.0f}/s "
            f"({row['speedup_vs_scalar']:.2f}x) "
            f"parity={'OK' if row['parity'] else 'FAIL'}"
        )
    for name, seconds in payload["figures"].items():
        print(f"  {name} smoke sweep: {seconds:.2f}s")
    setup = payload["sweep_setup"]
    if setup["available"]:
        print(
            f"  sweep setup: per-cell prep "
            f"{setup['per_cell_prep_off_ms']:.1f}ms -> "
            f"{setup['per_cell_prep_on_ms']:.2f}ms with arena "
            f"({setup['prep_speedup']:.0f}x, "
            f"{setup['arena_bytes']:,} bytes shared, publish "
            f"{setup['publish_seconds'] * 1e3:.0f}ms) "
            f"parity={'OK' if setup['parity'] else 'FAIL'}"
        )
    else:
        print("  sweep setup: shared memory unavailable, arena skipped")
    serve = payload["serve_latency"]
    print(
        f"  serve latency: cold p50 {serve['cold']['p50_ms']:.0f}ms / "
        f"p95 {serve['cold']['p95_ms']:.0f}ms, warm p50 "
        f"{serve['warm']['p50_ms']:.1f}ms / p95 "
        f"{serve['warm']['p95_ms']:.1f}ms, coalesce ratio "
        f"{serve['coalesce_hit_ratio']:.2f} "
        f"warm-no-worker={'OK' if serve['warm_no_worker'] else 'FAIL'}"
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    failures = [
        label for label, row in payload["designs"].items() if not row["parity"]
    ]
    if failures:
        print(
            f"kernel parity FAILED for: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    if setup["available"] and not setup["parity"]:
        print("arena sweep parity FAILED", file=sys.stderr)
        return 1
    return 0
