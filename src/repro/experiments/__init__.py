"""Experiment runners — one per table and figure of the paper.

Every runner returns structured rows *and* can print the same
table/series the paper reports, via :mod:`repro.experiments.reporting`.
The benchmarks in ``benchmarks/`` are thin wrappers over these runners;
tests exercise them at smoke scale.

Runners (paper artefact -> function):

========  =====================================================
Table I   :func:`repro.experiments.tables.run_table1`
Table II  :func:`repro.experiments.tables.run_table2`
Fig 2a    :func:`repro.experiments.os_figures.run_fig2a`
Fig 2b    :func:`repro.experiments.os_figures.run_fig2b`
Fig 2c    :func:`repro.experiments.os_figures.run_fig2c`
Fig 3     :func:`repro.experiments.longrun_figures.run_fig3`
Fig 4     :func:`repro.experiments.longrun_figures.run_fig4`
Fig 5     :func:`repro.experiments.longrun_figures.run_fig5`
Fig 15    :func:`repro.experiments.figures.run_fig15`
Fig 16    :func:`repro.experiments.figures.run_fig16`
Fig 17    :func:`repro.experiments.figures.run_fig17`
Fig 18    :func:`repro.experiments.figures.run_fig18`
Fig 19    :func:`repro.experiments.figures.run_fig19`
Fig 20    :func:`repro.experiments.figures.run_fig20`
Fig 21    :func:`repro.experiments.figures.run_fig21`
Fig 22    :func:`repro.experiments.figures.run_fig22`
Fig 23    :func:`repro.experiments.figures.run_fig23`
§VI-F     :func:`repro.experiments.overhead.run_overhead_analysis`
========  =====================================================
"""

from repro.experiments.designs import REGISTRY, DesignRegistry, DesignSpec
from repro.experiments.runner import Scale, SMOKE_SCALE, DEFAULT_SCALE
from repro.experiments.reporting import format_table, format_series

__all__ = [
    "DesignRegistry",
    "DesignSpec",
    "REGISTRY",
    "Scale",
    "SMOKE_SCALE",
    "DEFAULT_SCALE",
    "format_table",
    "format_series",
]
