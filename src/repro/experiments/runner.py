"""Shared experiment infrastructure: scales and design sweeps.

Experiments run on proportionally scaled configurations (see DESIGN.md):
capacities shrink by a constant factor while every architectural ratio
of Table I — the 1:5 stacked:off-chip split, 2KB segments, channel and
bank counts, timings — is preserved, and workload footprints are
fractions of total capacity exactly as in the paper.  ``Scale`` bundles
the knobs; :func:`run_design_sweep` executes a set of designs over the
Table II workloads through :mod:`repro.runtime` — a process-pool
executor with an optional persistent result cache — plus a
process-local memo so the five main-results figures (15-19) share one
sweep.

The design registry lives in :mod:`repro.experiments.designs`; the
pre-registry ``DESIGNS`` dict and per-figure tuple aliases completed
their deprecation cycle and were removed in 1.3.0 — enumerate designs
via :func:`repro.api.designs` or ``REGISTRY`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MB, SystemConfig, offchip_dram, stacked_dram
from repro.experiments.designs import REGISTRY
from repro.runtime import SweepExecutor, SweepResults, get_default_executor
from repro.workloads import benchmark_names


@dataclass(frozen=True)
class Scale:
    """Execution scale of an experiment run."""

    fast_mb: float = 4.0
    ratio: int = 5
    accesses_per_core: int = 1500
    warmup_per_core: int = 1500
    num_copies: int = 12
    benchmarks: Tuple[str, ...] = tuple(benchmark_names())
    seed: int = 0

    def config(self) -> SystemConfig:
        fast = int(self.fast_mb * MB)
        return SystemConfig(
            fast_mem=stacked_dram(fast),
            slow_mem=offchip_dram(fast * self.ratio),
        )

    def with_ratio(self, ratio: int) -> "Scale":
        """Same total capacity, different stacked:off-chip split
        (Figures 21/23: 24 total units split 6+18, 4+20, 3+21)."""
        total_mb = self.fast_mb * (1 + self.ratio)
        return Scale(
            fast_mb=total_mb / (ratio + 1),
            ratio=ratio,
            accesses_per_core=self.accesses_per_core,
            warmup_per_core=self.warmup_per_core,
            num_copies=self.num_copies,
            benchmarks=self.benchmarks,
            seed=self.seed,
        )


#: Small scale for unit/integration tests.
SMOKE_SCALE = Scale(
    fast_mb=1.0,
    accesses_per_core=300,
    warmup_per_core=300,
    num_copies=4,
    benchmarks=("mcf", "bwaves", "comd"),
)

#: Benchmark scale: full Table II workload list.
DEFAULT_SCALE = Scale(
    fast_mb=4.0,
    accesses_per_core=2000,
    warmup_per_core=6000,
)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------

_sweep_cache: Dict[Tuple, SweepResults] = {}


def run_design_sweep(
    scale: Scale,
    designs: Sequence[str],
    use_cache: bool = True,
    executor: Optional[SweepExecutor] = None,
) -> SweepResults:
    """Simulate each (design, workload) pair; returns results keyed by
    ``(design, workload)``.

    Execution goes through ``executor`` (default: the process-wide
    serial :func:`repro.runtime.get_default_executor`), which handles
    worker fan-out and the persistent disk cache.  On top of that,
    results are memoised in-process per (scale, design) so the figures
    sharing the Section VI-B sweep do not re-simulate — the memo
    returns the *same* result objects on repeat calls.
    """
    results: SweepResults = {}
    missing: List[str] = []
    for design in designs:
        if design not in REGISTRY:
            raise KeyError(f"unknown design {design!r}")
        key = (scale, design)
        if use_cache and key in _sweep_cache:
            results.update(_sweep_cache[key])
        else:
            missing.append(design)
    if missing:
        if executor is None:
            executor = get_default_executor()
        fresh = executor.run(scale, missing)
        if use_cache:
            for design in missing:
                _sweep_cache[(scale, design)] = {
                    cell: result
                    for cell, result in fresh.items()
                    if cell[0] == design
                }
        results.update(fresh)
    return results


def clear_sweep_cache() -> None:
    _sweep_cache.clear()


def geomean_by_design(
    results: SweepResults, designs: Sequence[str], workloads: Sequence[str]
) -> Dict[str, float]:
    """Geometric mean of per-workload geomean IPCs, per design."""
    from repro.stats import geomean

    return {
        design: geomean(
            results[(design, name)].geomean_ipc for name in workloads
        )
        for design in designs
    }
