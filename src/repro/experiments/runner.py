"""Shared experiment infrastructure: scales, design registry, sweeps.

Experiments run on proportionally scaled configurations (see DESIGN.md):
capacities shrink by a constant factor while every architectural ratio
of Table I — the 1:5 stacked:off-chip split, 2KB segments, channel and
bank counts, timings — is preserved, and workload footprints are
fractions of total capacity exactly as in the paper.  ``Scale`` bundles
the knobs; ``run_design_sweep`` executes a set of designs over the
Table II workloads with memoisation so the five main-results figures
(15-19) share one sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.config import MB, SystemConfig, offchip_dram, stacked_dram
from repro.arch import (
    AlloyCache,
    CameoArchitecture,
    FlatMemory,
    MemoryArchitecture,
    PoMArchitecture,
    PolymorphicMemory,
    StaticHybridMemory,
)
from repro.core import (
    ChameleonArchitecture,
    ChameleonOptArchitecture,
    ChameleonSharedPool,
)
from repro.osmodel.autonuma import AutoNumaConfig
from repro.sim import AutoNumaMemory, FirstTouchMemory, SimulationResult, simulate
from repro.workloads import benchmark, benchmark_names, build_workload


@dataclass(frozen=True)
class Scale:
    """Execution scale of an experiment run."""

    fast_mb: float = 4.0
    ratio: int = 5
    accesses_per_core: int = 1500
    warmup_per_core: int = 1500
    num_copies: int = 12
    benchmarks: Tuple[str, ...] = tuple(benchmark_names())
    seed: int = 0

    def config(self) -> SystemConfig:
        fast = int(self.fast_mb * MB)
        return SystemConfig(
            fast_mem=stacked_dram(fast),
            slow_mem=offchip_dram(fast * self.ratio),
        )

    def with_ratio(self, ratio: int) -> "Scale":
        """Same total capacity, different stacked:off-chip split
        (Figures 21/23: 24 total units split 6+18, 4+20, 3+21)."""
        total_mb = self.fast_mb * (1 + self.ratio)
        return Scale(
            fast_mb=total_mb / (ratio + 1),
            ratio=ratio,
            accesses_per_core=self.accesses_per_core,
            warmup_per_core=self.warmup_per_core,
            num_copies=self.num_copies,
            benchmarks=self.benchmarks,
            seed=self.seed,
        )


#: Small scale for unit/integration tests.
SMOKE_SCALE = Scale(
    fast_mb=1.0,
    accesses_per_core=300,
    warmup_per_core=300,
    num_copies=4,
    benchmarks=("mcf", "bwaves", "comd"),
)

#: Benchmark scale: full Table II workload list.
DEFAULT_SCALE = Scale(
    fast_mb=4.0,
    accesses_per_core=2000,
    warmup_per_core=6000,
)


# ----------------------------------------------------------------------
# Design registry
# ----------------------------------------------------------------------

DesignFactory = Callable[[SystemConfig], MemoryArchitecture]


def _flat(fraction_of_total: float) -> DesignFactory:
    def make(config: SystemConfig) -> MemoryArchitecture:
        capacity = int(config.total_capacity_bytes * fraction_of_total)
        return FlatMemory(config, capacity_bytes=capacity)

    return make


def _knl(cache_fraction: float) -> DesignFactory:
    def make(config: SystemConfig) -> MemoryArchitecture:
        return StaticHybridMemory(config, cache_fraction=cache_fraction)

    return make


def _autonuma(threshold: float) -> DesignFactory:
    def make(config: SystemConfig) -> MemoryArchitecture:
        return AutoNumaMemory(
            config,
            autonuma=AutoNumaConfig(threshold=threshold),
            epoch_accesses=3000,
        )

    return make


#: All designs the paper evaluates, by the labels used in its figures.
DESIGNS: Dict[str, DesignFactory] = {
    "baseline_20GB_DDR3": _flat(20.0 / 24.0),
    "baseline_24GB_DDR3": _flat(1.0),
    "Alloy-Cache": AlloyCache,
    "PoM": PoMArchitecture,
    "Chameleon": ChameleonArchitecture,
    "Chameleon-Opt": ChameleonOptArchitecture,
    "Polymorphic": PolymorphicMemory,
    "CAMEO": CameoArchitecture,
    "Chameleon-Shared": ChameleonSharedPool,
    "KNL-hybrid-25": _knl(0.25),
    "KNL-hybrid-50": _knl(0.50),
    "numaAware": FirstTouchMemory,
    "autoNUMA_70percent": _autonuma(0.70),
    "autoNUMA_80percent": _autonuma(0.80),
    "autoNUMA_90percent": _autonuma(0.90),
}

#: The six designs of Figure 18, in plot order.
FIG18_DESIGNS = (
    "baseline_20GB_DDR3",
    "baseline_24GB_DDR3",
    "Alloy-Cache",
    "PoM",
    "Chameleon",
    "Chameleon-Opt",
)

#: The designs of Figure 20 (OS-based comparison).
FIG20_DESIGNS = (
    "baseline_20GB_DDR3",
    "baseline_24GB_DDR3",
    "numaAware",
    "autoNUMA_70percent",
    "autoNUMA_80percent",
    "autoNUMA_90percent",
    "Chameleon",
    "Chameleon-Opt",
)

#: The designs of Figure 22 (Polymorphic Memory comparison).
FIG22_DESIGNS = (
    "baseline_20GB_DDR3",
    "baseline_24GB_DDR3",
    "Polymorphic",
    "Chameleon",
    "Chameleon-Opt",
)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------

SweepResults = Dict[Tuple[str, str], SimulationResult]

_sweep_cache: Dict[Tuple, SweepResults] = {}


def run_design_sweep(
    scale: Scale,
    designs: Sequence[str],
    use_cache: bool = True,
) -> SweepResults:
    """Simulate each (design, workload) pair; returns results keyed by
    ``(design, workload)``.

    Results are memoised per (scale, design) so that the figures sharing
    the Section VI-B sweep do not re-simulate.
    """
    results: SweepResults = {}
    missing: List[str] = []
    for design in designs:
        if design not in DESIGNS:
            raise KeyError(f"unknown design {design!r}")
        key = (scale, design)
        if use_cache and key in _sweep_cache:
            results.update(_sweep_cache[key])
        else:
            missing.append(design)
    for design in missing:
        config = scale.config()
        per_design: SweepResults = {}
        for name in scale.benchmarks:
            workload = build_workload(
                config,
                benchmark(name),
                num_copies=scale.num_copies,
                seed=scale.seed,
            )
            result = simulate(
                DESIGNS[design](config),
                workload,
                accesses_per_core=scale.accesses_per_core,
                warmup_per_core=scale.warmup_per_core,
            )
            per_design[(design, name)] = result
        if use_cache:
            _sweep_cache[(scale, design)] = per_design
        results.update(per_design)
    return results


def clear_sweep_cache() -> None:
    _sweep_cache.clear()


def geomean_by_design(
    results: SweepResults, designs: Sequence[str], workloads: Sequence[str]
) -> Dict[str, float]:
    """Geometric mean of per-workload geomean IPCs, per design."""
    from repro.stats import geomean

    return {
        design: geomean(
            results[(design, name)].geomean_ipc for name in workloads
        )
        for design in designs
    }
