"""Runners for the real-system motivation figures (3, 4, 5).

These reproduce the Intel Xeon experiments of Section III-B/C: a
sequential schedule of 12-copy rate-mode workloads running for two-plus
days on a 24GB machine with an SSD, and a 16GB-28GB capacity sweep.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import GB
from repro.experiments.figures import FigureResult, _mean
from repro.osmodel.longrun import (
    CapacityRunResult,
    LongRunSimulator,
    WorkloadSpec,
    capacity_sweep,
    improvement_percent,
)
from repro.stats import Timeline
from repro.workloads.suites import TABLE2_BENCHMARKS

#: The 12 workloads shown on Figure 4's X axis (Figure 3 runs the same
#: set sequentially).
FIG4_WORKLOADS = (
    "bwaves",
    "leslie3d",
    "GemsFDTD",
    "lbm",
    "mcf",
    "hpccg",
    "SP",
    "stream",
    "cloverleaf",
    "comd",
    "miniFE",
    "cactusADM",
)

#: Capacities swept in Figures 4 and 5 (GB).
CAPACITIES_GB = (16, 18, 20, 22, 24, 26, 28)


def longrun_spec(name: str, base_seconds: float = 3600.0) -> WorkloadSpec:
    """A :class:`WorkloadSpec` for one Table II benchmark.

    The page-touch rate scales with the benchmark's LLC-MPKI (memory
    intensity), and temporal locality follows the synthesis personality.
    """
    for spec in TABLE2_BENCHMARKS:
        if spec.name == name:
            return WorkloadSpec(
                name=name,
                footprint_bytes=int(spec.footprint_gb * GB),
                base_seconds=base_seconds,
                # Distinct-page touch rate: every workload sweeps its
                # footprint (hence the large MPKI-independent term) and
                # memory-intensive ones re-touch it faster.
                page_touch_rate=4.0e5 + 2.0e4 * spec.llc_mpki,
                locality=0.6,
            )
    raise KeyError(f"unknown benchmark {name!r}")


def paper_schedule(base_seconds: float = 3600.0) -> List[WorkloadSpec]:
    """The sequential schedule behind Figure 3 (53.8 hours of wall
    clock in the paper; scaled by ``base_seconds`` per workload here)."""
    return [longrun_spec(name, base_seconds) for name in FIG4_WORKLOADS]


# ----------------------------------------------------------------------
# Figure 3: free memory over time
# ----------------------------------------------------------------------

def run_fig3(
    capacity_gb: float = 24.0,
    base_seconds: float = 3600.0,
    sample_seconds: float = 120.0,
) -> tuple[Timeline, FigureResult]:
    """Free-memory timeline for the sequential schedule.

    The paper's Figure 3 shows free space swinging between a few MB and
    several GB as workloads allocate at start and free at exit.
    """
    simulator = LongRunSimulator(int(capacity_gb * GB))
    schedule = paper_schedule(base_seconds)
    timeline = simulator.free_memory_timeline(
        schedule, sample_seconds=sample_seconds
    )
    free = timeline.series("free_mb")
    summary: Dict[str, float] = {
        "min_free_mb": min(free),
        "max_free_mb": max(free),
        "mean_free_mb": _mean(free),
        "total_hours": timeline.times[-1] / 3600.0,
        "samples": float(len(timeline)),
    }
    headers = ["time [s]", "free MB", "workload#"]
    rows = [
        [time, values["free_mb"], int(values["workload_index"])]
        for time, values in timeline.rows()
    ]
    return timeline, FigureResult(
        "Figure 3: free memory over the workload sequence",
        headers,
        rows,
        summary,
    )


# ----------------------------------------------------------------------
# Figure 4: execution-time improvement vs capacity
# ----------------------------------------------------------------------

def run_fig4(base_seconds: float = 3600.0) -> FigureResult:
    """Percent execution-time improvement over the 16GB system
    (Equation 1) for 18GB...28GB.

    Paper: average improvement grows from 29.5% at 18GB to 75.4% at
    24GB, saturating at 26/28GB.
    """
    specs = [longrun_spec(name, base_seconds) for name in FIG4_WORKLOADS]
    capacities = [int(gb * GB) for gb in CAPACITIES_GB]
    grid = capacity_sweep(specs, capacities)
    headers = ["workload"] + [f"{gb}GB" for gb in CAPACITIES_GB[1:]]
    rows = []
    for spec_index, spec in enumerate(specs):
        baseline = grid[spec_index][0]
        rows.append(
            [spec.name]
            + [
                improvement_percent(baseline, run)
                for run in grid[spec_index][1:]
            ]
        )
    averages = [
        _mean(row[column] for row in rows)
        for column in range(1, len(headers))
    ]
    summary = {
        f"{gb}GB": averages[index]
        for index, gb in enumerate(CAPACITIES_GB[1:])
    }
    rows.append(["Average"] + averages)
    return FigureResult(
        "Figure 4: execution-time improvement vs 16GB [%]",
        headers,
        rows,
        summary,
    )


# ----------------------------------------------------------------------
# Figure 5: page faults and CPU utilisation vs capacity
# ----------------------------------------------------------------------

def run_fig5(base_seconds: float = 3600.0) -> FigureResult:
    """Page faults (millions) and CPU utilisation per capacity.

    Paper: faults fall and utilisation rises to 100% as capacity grows;
    at low capacities tasks sit in the uninterruptible "D" state.
    """
    specs = [longrun_spec(name, base_seconds) for name in FIG4_WORKLOADS]
    capacities = [int(gb * GB) for gb in CAPACITIES_GB]
    grid = capacity_sweep(specs, capacities)
    headers = ["workload", "capacity", "faults [M]", "CPU util %"]
    rows = []
    for spec_index, spec in enumerate(specs):
        for cap_index, gb in enumerate(CAPACITIES_GB):
            run = grid[spec_index][cap_index]
            rows.append(
                [
                    spec.name,
                    f"{gb}GB",
                    run.fault_millions,
                    run.cpu_utilisation * 100.0,
                ]
            )
    by_capacity: Dict[str, List[CapacityRunResult]] = {}
    for spec_index in range(len(specs)):
        for cap_index, gb in enumerate(CAPACITIES_GB):
            by_capacity.setdefault(f"{gb}GB", []).append(
                grid[spec_index][cap_index]
            )
    summary = {}
    for label, runs in by_capacity.items():
        summary[f"faults_M@{label}"] = _mean(r.fault_millions for r in runs)
        summary[f"util@{label}"] = _mean(
            r.cpu_utilisation * 100.0 for r in runs
        )
    return FigureResult(
        "Figure 5: page faults and CPU utilisation vs capacity",
        headers,
        rows,
        summary,
    )
