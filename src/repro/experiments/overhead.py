"""Section VI-F: ISA-Alloc / ISA-Free overhead analysis.

The paper estimates, with conservative assumptions, that the swaps the
two new instructions may trigger cost 1.06% of end-to-end execution
time over the Figure 3 schedule: 242.8M ISA events, each potentially
one 2KB segment swap at 700 CPU cycles per 64B line, against 53.8 hours
of wall clock on a 2.25GHz Xeon.

This runner reproduces that arithmetic from this repository's own
models: the ISA event count comes from the long-run schedule's
allocation churn (one ISA event per segment allocated or freed,
Algorithms 1-2), the per-swap cost from the Table I configuration, and
the denominator from the simulated schedule duration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GB, SystemConfig, paper_config
from repro.experiments.longrun_figures import paper_schedule
from repro.osmodel.longrun import LongRunSimulator

#: The paper's observed PoM per-64B swap service latency (Figure 19).
SWAP_CYCLES_PER_LINE = 700

#: The paper's Xeon frequency for the analysis (average of base/turbo).
ANALYSIS_FREQUENCY_HZ = 2.25e9


@dataclass(frozen=True)
class OverheadReport:
    """The §VI-F arithmetic, end to end."""

    isa_events: float
    swap_seconds: float
    total_seconds: float

    @property
    def overhead_percent(self) -> float:
        return self.swap_seconds / self.total_seconds * 100.0


def run_overhead_analysis(
    config: SystemConfig | None = None,
    base_seconds: float = 16140.0,
    capacity_gb: float = 24.0,
    allocation_cycles: int = 2,
) -> OverheadReport:
    """Reproduce the §VI-F estimate on the Figure 3 schedule.

    ``allocation_cycles`` counts how many times each workload's
    footprint is allocated and freed over its run (the paper's schedule
    allocates at start and frees at exit, and several workloads run
    more than once over the 53.8 hours; 2 cycles ≈ one alloc + one free
    per segment per execution).  The default ``base_seconds`` makes the
    fault-free schedule last the paper's 53.8 hours.
    """
    config = config if config is not None else paper_config()
    schedule = paper_schedule(base_seconds)
    simulator = LongRunSimulator(int(capacity_gb * GB))
    total_seconds = simulator.total_seconds(schedule)

    segment_bytes = config.segment_bytes
    isa_events = sum(
        spec.footprint_bytes / segment_bytes * allocation_cycles
        for spec in schedule
    )
    lines_per_segment = segment_bytes / 64
    swap_cycles = isa_events * SWAP_CYCLES_PER_LINE * lines_per_segment
    swap_seconds = swap_cycles / ANALYSIS_FREQUENCY_HZ
    return OverheadReport(
        isa_events=isa_events,
        swap_seconds=swap_seconds,
        total_seconds=total_seconds,
    )
