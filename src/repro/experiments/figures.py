"""Runners for the main-results figures (15-23)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.designs import REGISTRY
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    Scale,
    geomean_by_design,
    run_design_sweep,
)
from repro.runtime import SweepExecutor
from repro.stats import geomean

#: The four designs of Figures 15-17 and 19.  Private on purpose: the
#: public way to enumerate designs is :data:`REGISTRY` (or
#: :func:`repro.api.designs`), not module constants.
_HW_LABELS = REGISTRY.figure_labels("fig15")

#: Per-figure design line-ups, in plot order (see designs.py).
_FIG18_LABELS = REGISTRY.figure_labels("fig18")
_FIG20_LABELS = REGISTRY.figure_labels("fig20")
_FIG22_LABELS = REGISTRY.figure_labels("fig22")


@dataclass
class FigureResult:
    """One regenerated figure: headers + rows + the rendered table."""

    figure: str
    headers: List[str]
    rows: List[List]
    summary: Dict[str, float]

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.figure)


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Figure 15: stacked-DRAM hit rates
# ----------------------------------------------------------------------

def run_fig15(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """Stacked DRAM hit rate per workload for Alloy/PoM/Chameleon/Opt.

    Paper averages: Alloy 62.4%, PoM 81%, Chameleon 84.6%, Opt 89.4%.
    """
    results = run_design_sweep(scale, _HW_LABELS, executor=executor)
    headers = ["workload"] + [d for d in _HW_LABELS]
    rows = []
    for name in scale.benchmarks:
        rows.append(
            [name]
            + [
                results[(design, name)].fast_hit_rate * 100.0
                for design in _HW_LABELS
            ]
        )
    summary = {
        design: _mean(
            results[(design, name)].fast_hit_rate * 100.0
            for name in scale.benchmarks
        )
        for design in _HW_LABELS
    }
    rows.append(["Average"] + [summary[d] for d in _HW_LABELS])
    return FigureResult(
        "Figure 15: Stacked DRAM hit rate [%]", headers, rows, summary
    )


# ----------------------------------------------------------------------
# Figure 16: cache/PoM mode distribution
# ----------------------------------------------------------------------

def run_fig16(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """Segment-group mode split for Chameleon and Chameleon-Opt.

    Paper averages: 9.2% cache mode (Chameleon), 40.6% (Chameleon-Opt).
    """
    designs = ("Chameleon", "Chameleon-Opt")
    results = run_design_sweep(scale, designs, executor=executor)
    headers = ["workload"] + [f"{d} cache-mode %" for d in designs]
    rows = []
    for name in scale.benchmarks:
        rows.append(
            [name]
            + [
                (results[(design, name)].cache_mode_fraction or 0.0) * 100.0
                for design in designs
            ]
        )
    summary = {
        design: _mean(
            (results[(design, name)].cache_mode_fraction or 0.0) * 100.0
            for name in scale.benchmarks
        )
        for design in designs
    }
    rows.append(["Average"] + [summary[d] for d in designs])
    return FigureResult(
        "Figure 16: cache-mode segment groups [%]", headers, rows, summary
    )


# ----------------------------------------------------------------------
# Figure 17: normalised swaps
# ----------------------------------------------------------------------

def run_fig17(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """Segment swaps normalised to PoM.

    Paper averages: Chameleon 0.856, Chameleon-Opt 0.569 (i.e. -14.4%
    and -43.1% swaps vs PoM).
    """
    designs = ("PoM", "Chameleon", "Chameleon-Opt")
    results = run_design_sweep(scale, designs, executor=executor)
    headers = ["workload"] + list(designs)
    rows = []
    for name in scale.benchmarks:
        base = max(1.0, results[("PoM", name)].swaps)
        rows.append(
            [name]
            + [results[(design, name)].swaps / base for design in designs]
        )
    totals = {
        design: sum(
            results[(design, name)].swaps for name in scale.benchmarks
        )
        for design in designs
    }
    base_total = max(1.0, totals["PoM"])
    summary = {design: totals[design] / base_total for design in designs}
    rows.append(["Average"] + [summary[d] for d in designs])
    return FigureResult(
        "Figure 17: swaps normalised to PoM", headers, rows, summary
    )


# ----------------------------------------------------------------------
# Figure 18: normalised IPC, six designs
# ----------------------------------------------------------------------

def run_fig18(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """Per-workload IPC normalised to the 20GB flat baseline.

    Paper geomeans vs that baseline: 24GB +35.6%, PoM +85.2%,
    Chameleon +96.8%, Chameleon-Opt +106.3%.
    """
    results = run_design_sweep(scale, _FIG18_LABELS, executor=executor)
    headers = ["workload"] + list(_FIG18_LABELS)
    rows = []
    for name in scale.benchmarks:
        base = results[("baseline_20GB_DDR3", name)].geomean_ipc
        rows.append(
            [name]
            + [
                results[(design, name)].geomean_ipc / base
                for design in _FIG18_LABELS
            ]
        )
    means = geomean_by_design(results, _FIG18_LABELS, scale.benchmarks)
    base = means["baseline_20GB_DDR3"]
    summary = {design: means[design] / base for design in _FIG18_LABELS}
    rows.append(["GeoMean"] + [summary[d] for d in _FIG18_LABELS])
    return FigureResult(
        "Figure 18: IPC normalised to baseline_20GB_DDR3",
        headers,
        rows,
        summary,
    )


# ----------------------------------------------------------------------
# Figure 19: average memory access latency
# ----------------------------------------------------------------------

def run_fig19(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """Average memory access latency in CPU cycles (PoM vs Chameleons).

    The paper's ordering: PoM highest, Chameleon lower, Opt lowest.
    """
    designs = ("PoM", "Chameleon", "Chameleon-Opt")
    results = run_design_sweep(scale, designs, executor=executor)
    config = scale.config()
    headers = ["workload"] + list(designs)
    rows = []
    for name in scale.benchmarks:
        rows.append(
            [name]
            + [
                results[(design, name)].average_latency_cycles(config)
                for design in designs
            ]
        )
    summary = {
        design: geomean(
            max(
                1e-9,
                results[(design, name)].average_latency_cycles(config),
            )
            for name in scale.benchmarks
        )
        for design in designs
    }
    rows.append(["GeoMean"] + [summary[d] for d in designs])
    return FigureResult(
        "Figure 19: average memory access latency [CPU cycles]",
        headers,
        rows,
        summary,
    )


# ----------------------------------------------------------------------
# Figure 20: comparison with OS-based solutions
# ----------------------------------------------------------------------

def run_fig20(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """IPC of OS-managed designs vs Chameleon, normalised to 20GB flat.

    Paper: Chameleon +28.7%/+19.1% over first-touch/AutoNUMA;
    Chameleon-Opt +34.8%/+24.9%.
    """
    results = run_design_sweep(scale, _FIG20_LABELS, executor=executor)
    headers = ["workload"] + list(_FIG20_LABELS)
    rows = []
    for name in scale.benchmarks:
        base = results[("baseline_20GB_DDR3", name)].geomean_ipc
        rows.append(
            [name]
            + [
                results[(design, name)].geomean_ipc / base
                for design in _FIG20_LABELS
            ]
        )
    means = geomean_by_design(results, _FIG20_LABELS, scale.benchmarks)
    base = means["baseline_20GB_DDR3"]
    summary = {design: means[design] / base for design in _FIG20_LABELS}
    rows.append(["GeoMean"] + [summary[d] for d in _FIG20_LABELS])
    return FigureResult(
        "Figure 20: IPC vs OS-based solutions (normalised)",
        headers,
        rows,
        summary,
    )


# ----------------------------------------------------------------------
# Figures 21 and 23: capacity-ratio sensitivity
# ----------------------------------------------------------------------

def run_fig21(
    scale: Scale,
    ratios: Tuple[int, ...] = (3, 5, 7),
    executor: SweepExecutor | None = None,
) -> FigureResult:
    """Cache-mode fraction of Chameleon-Opt across capacity ratios.

    Paper averages: 33% (1:3), 40.6% (1:5), 48.7% (1:7).
    """
    headers = ["ratio"] + ["Chameleon-Opt cache-mode %", "Chameleon cache-mode %"]
    rows = []
    summary: Dict[str, float] = {}
    for ratio in ratios:
        ratio_scale = scale.with_ratio(ratio)
        results = run_design_sweep(
            ratio_scale,
            REGISTRY.figure_labels("fig21"),
            executor=executor,
        )
        opt = _mean(
            (results[("Chameleon-Opt", name)].cache_mode_fraction or 0.0)
            * 100.0
            for name in ratio_scale.benchmarks
        )
        basic = _mean(
            (results[("Chameleon", name)].cache_mode_fraction or 0.0) * 100.0
            for name in ratio_scale.benchmarks
        )
        rows.append([f"1:{ratio}", opt, basic])
        summary[f"1:{ratio}"] = opt
    return FigureResult(
        "Figure 21: cache-mode groups vs capacity ratio [%]",
        headers,
        rows,
        summary,
    )


def run_fig23(
    scale: Scale,
    ratios: Tuple[int, ...] = (3, 7),
    executor: SweepExecutor | None = None,
) -> FigureResult:
    """Normalised IPC across capacity ratios (1:3 and 1:7).

    Paper: Chameleon/Opt beat PoM by 5.9%/7.6% at 1:3 and 8.1%/12.4%
    at 1:7.
    """
    designs = (
        "baseline_20GB_DDR3",
        "baseline_24GB_DDR3",
        "PoM",
        "Chameleon",
        "Chameleon-Opt",
    )
    headers = ["ratio"] + list(designs)
    rows = []
    summary: Dict[str, float] = {}
    for ratio in ratios:
        ratio_scale = scale.with_ratio(ratio)
        results = run_design_sweep(ratio_scale, designs, executor=executor)
        means = geomean_by_design(results, designs, ratio_scale.benchmarks)
        base = means["baseline_20GB_DDR3"]
        rows.append([f"1:{ratio}"] + [means[d] / base for d in designs])
        summary[f"1:{ratio}:opt_vs_pom"] = (
            means["Chameleon-Opt"] / means["PoM"] - 1.0
        ) * 100.0
        summary[f"1:{ratio}:cham_vs_pom"] = (
            means["Chameleon"] / means["PoM"] - 1.0
        ) * 100.0
    return FigureResult(
        "Figure 23: normalised IPC vs capacity ratio",
        headers,
        rows,
        summary,
    )


# ----------------------------------------------------------------------
# Figure 22: Polymorphic Memory comparison
# ----------------------------------------------------------------------

def run_fig22(
    scale: Scale, executor: SweepExecutor | None = None
) -> FigureResult:
    """Chameleon vs the Polymorphic Memory patent.

    Paper: Chameleon +10.5%, Chameleon-Opt +15.8% over Polymorphic.
    """
    results = run_design_sweep(scale, _FIG22_LABELS, executor=executor)
    headers = ["workload"] + list(_FIG22_LABELS)
    rows = []
    for name in scale.benchmarks:
        base = results[("baseline_20GB_DDR3", name)].geomean_ipc
        rows.append(
            [name]
            + [
                results[(design, name)].geomean_ipc / base
                for design in _FIG22_LABELS
            ]
        )
    means = geomean_by_design(results, _FIG22_LABELS, scale.benchmarks)
    base = means["baseline_20GB_DDR3"]
    summary = {design: means[design] / base for design in _FIG22_LABELS}
    summary["cham_vs_poly_percent"] = (
        means["Chameleon"] / means["Polymorphic"] - 1.0
    ) * 100.0
    summary["opt_vs_poly_percent"] = (
        means["Chameleon-Opt"] / means["Polymorphic"] - 1.0
    ) * 100.0
    rows.append(
        ["GeoMean"] + [summary[d] for d in _FIG22_LABELS]
    )
    return FigureResult(
        "Figure 22: Polymorphic Memory comparison (normalised IPC)",
        headers,
        rows,
        summary,
    )
