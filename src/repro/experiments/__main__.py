"""Command-line experiment runner.

Regenerate any of the paper's tables/figures from a shell::

    python -m repro.experiments list
    python -m repro.experiments fig15
    python -m repro.experiments fig18 --accesses 3000 --warmup 6000
    python -m repro.experiments all

Figures run at the benchmark default scale unless overridden.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict

from repro.experiments.figures import (
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_fig20,
    run_fig21,
    run_fig22,
    run_fig23,
)
from repro.experiments.longrun_figures import run_fig3, run_fig4, run_fig5
from repro.experiments.os_figures import run_fig2a, run_fig2b, run_fig2c
from repro.experiments.overhead import run_overhead_analysis
from repro.experiments.reporting import format_series
from repro.experiments.runner import DEFAULT_SCALE, Scale
from repro.experiments.tables import run_table1, run_table2


def _scaled(runner):
    def run(scale: Scale) -> None:
        print(runner(scale).render())

    return run


def _unscaled(runner):
    def run(scale: Scale) -> None:  # noqa: ARG001 - uniform signature
        print(runner().render())

    return run


def _fig2c(scale: Scale) -> None:
    timeline, result = run_fig2c(scale)
    print(
        format_series(
            timeline.times,
            {
                "migrated": timeline.series("migrated"),
                "hit_rate": timeline.series("hit_rate"),
            },
            title=result.figure,
        )
    )


def _fig3(scale: Scale) -> None:  # noqa: ARG001
    timeline, result = run_fig3()
    print(
        format_series(
            timeline.times,
            {"free_mb": timeline.series("free_mb")},
            title=result.figure,
            max_points=30,
        )
    )


def _overhead(scale: Scale) -> None:  # noqa: ARG001
    report = run_overhead_analysis()
    print("Section VI-F: ISA-Alloc/ISA-Free overhead")
    print(f"  ISA events : {report.isa_events / 1e6:,.1f}M (paper 242.8M)")
    print(f"  swap time  : {report.swap_seconds:,.0f}s (paper 2071.89s)")
    print(f"  total time : {report.total_seconds / 3600:,.1f}h (paper 53.8h)")
    print(f"  overhead   : {report.overhead_percent:.2f}% (paper 1.06%)")


EXPERIMENTS: Dict[str, Callable[[Scale], None]] = {
    "table1": _unscaled(run_table1),
    "table2": _unscaled(run_table2),
    "fig2a": _scaled(run_fig2a),
    "fig2b": _scaled(run_fig2b),
    "fig2c": _fig2c,
    "fig3": _fig3,
    "fig4": _unscaled(run_fig4),
    "fig5": _unscaled(run_fig5),
    "fig15": _scaled(run_fig15),
    "fig16": _scaled(run_fig16),
    "fig17": _scaled(run_fig17),
    "fig18": _scaled(run_fig18),
    "fig19": _scaled(run_fig19),
    "fig20": _scaled(run_fig20),
    "fig21": _scaled(run_fig21),
    "fig22": _scaled(run_fig22),
    "fig23": _scaled(run_fig23),
    "overhead": _overhead,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig15), 'list', or 'all'",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=DEFAULT_SCALE.accesses_per_core,
        help="measured accesses per core",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=DEFAULT_SCALE.warmup_per_core,
        help="warm-up accesses per core",
    )
    parser.add_argument(
        "--fast-mb",
        type=float,
        default=DEFAULT_SCALE.fast_mb,
        help="stacked-DRAM capacity in MB (scaled system)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    scale = dataclasses.replace(
        DEFAULT_SCALE,
        accesses_per_core=args.accesses,
        warmup_per_core=args.warmup,
        fast_mb=args.fast_mb,
    )
    if args.experiment == "all":
        for name, runner in EXPERIMENTS.items():
            print(f"==== {name} ====")
            runner(scale)
            print()
        return 0

    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        known = ", ".join(EXPERIMENTS)
        print(
            f"unknown experiment {args.experiment!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    runner(scale)
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early.
        raise SystemExit(0) from None
