"""Command-line experiment runner.

Regenerate any of the paper's tables/figures from a shell::

    python -m repro.experiments list
    python -m repro.experiments fig15
    python -m repro.experiments fig18 --accesses 3000 --warmup 6000
    python -m repro.experiments all

Figures run at the benchmark default scale unless overridden.

Sweep execution goes through :mod:`repro.runtime`:

``--jobs N``
    Fan the independent (design, workload) cells out across ``N``
    worker processes (default 1 = serial; results are bit-identical at
    any worker count).
``--cache-dir PATH``
    Where the persistent result cache lives (default:
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``).  A warm cache
    serves repeat runs without re-simulating — the ``[runtime]``
    summary printed after each run shows cells simulated vs served.
``--no-cache``
    Disable the disk cache for this invocation.
``--progress``
    Print one stderr line per completed sweep cell.
``--arena`` / ``--no-arena``
    Publish the workload grid's precompiled traces once into a
    shared-memory arena that every worker attaches zero-copy (default
    on; results are bit-identical either way — the ``[runtime]``
    trailer's ``arena-bytes=``/``arena-hits=`` fields show it working).

Fault tolerance (see docs/RUNTIME.md):

``--timeout SECONDS``
    Per-job wall-clock limit; an overdue worker is terminated and its
    cell retried (pooled execution only — serial cells cannot be
    preempted).
``--retries N``
    Bounded retries per cell after crashes, timeouts, or transient
    exceptions (default 2), with exponential backoff.  A cell that
    still fails raises ``SweepJobError`` carrying (design, workload,
    attempt).
``--resume``
    Journal completed cells to a JSONL checkpoint next to the result
    cache and, when a journal from an interrupted run exists, replay
    only the missing cells — bit-identical to an uninterrupted run.

``$REPRO_FAULTS`` (e.g. ``seed=7,crash=2,hang=1,corrupt=1,retries=4,
timeout=5``) injects deterministic faults into the sweep — the CI
fault matrix runs on exactly this hook.  The ``[runtime]`` trailer
reports ``retries=/timeouts=/crashes=/resumed=`` counters.

Telemetry (see docs/TELEMETRY.md) hangs off the same executor:

``--trace`` / ``--trace-out PATH``
    Capture every simulated cell's event stream and write a merged
    trace — Chrome-trace JSON by default (open in ``chrome://tracing``
    or Perfetto), JSONL when ``PATH`` ends in ``.jsonl``.  Cells served
    from the result cache are not re-simulated and contribute no
    events; combine with ``--no-cache`` to trace everything.
``--audit``
    Attach the live SRRT invariant auditor to every simulated cell;
    the run aborts with the offending event window on violation.

The cache itself is managed with the ``cache`` subcommand::

    python -m repro.experiments cache info
    python -m repro.experiments cache clear

The replay-kernel benchmark (see docs/PERFORMANCE.md) writes its
throughput/parity record to ``BENCH_kernel.json``::

    python -m repro.experiments bench
    python -m repro.experiments bench --out /tmp/BENCH_kernel.json

The long-running simulation service (see docs/SERVING.md) starts with
the ``serve`` subcommand and drains gracefully on SIGTERM::

    python -m repro.experiments serve --port 8642 --jobs 4

The conformance check (see docs/TESTING.md) verifies a seeded sample
of cells against the committed golden digests, runs every execution
path differentially, and writes ``CHECK_report.json``::

    python -m repro.experiments check --sample 6 --seed 0
    python -m repro.experiments check --bless --note "why semantics moved"

Exit codes are uniform across subcommands: ``0`` success, ``1``
failure (digest mismatch, failed sweep cell, invariant violation),
``2`` usage error (unknown experiment/action, missing ``--note``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict

from repro.experiments.figures import (
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_fig20,
    run_fig21,
    run_fig22,
    run_fig23,
)
from repro.experiments.longrun_figures import run_fig3, run_fig4, run_fig5
from repro.experiments.os_figures import run_fig2a, run_fig2b, run_fig2c
from repro.experiments.overhead import run_overhead_analysis
from repro.experiments.reporting import format_series
from repro.experiments.runner import DEFAULT_SCALE, Scale
from repro.experiments.tables import run_table1, run_table2
from repro.runtime import (
    ResultCache,
    SweepExecutor,
    default_cache_dir,
    print_progress,
)
from repro.telemetry import EventBus, write_trace


def _scaled(runner):
    def run(scale: Scale, executor: SweepExecutor) -> None:
        print(runner(scale, executor=executor).render())

    return run


def _unscaled(runner):
    def run(scale: Scale, executor: SweepExecutor) -> None:  # noqa: ARG001
        print(runner().render())

    return run


def _fig2c(scale: Scale, executor: SweepExecutor) -> None:  # noqa: ARG001
    timeline, result = run_fig2c(scale)
    print(
        format_series(
            timeline.times,
            {
                "migrated": timeline.series("migrated"),
                "hit_rate": timeline.series("hit_rate"),
            },
            title=result.figure,
        )
    )


def _fig3(scale: Scale, executor: SweepExecutor) -> None:  # noqa: ARG001
    timeline, result = run_fig3()
    print(
        format_series(
            timeline.times,
            {"free_mb": timeline.series("free_mb")},
            title=result.figure,
            max_points=30,
        )
    )


def _overhead(scale: Scale, executor: SweepExecutor) -> None:  # noqa: ARG001
    report = run_overhead_analysis()
    print("Section VI-F: ISA-Alloc/ISA-Free overhead")
    print(f"  ISA events : {report.isa_events / 1e6:,.1f}M (paper 242.8M)")
    print(f"  swap time  : {report.swap_seconds:,.0f}s (paper 2071.89s)")
    print(f"  total time : {report.total_seconds / 3600:,.1f}h (paper 53.8h)")
    print(f"  overhead   : {report.overhead_percent:.2f}% (paper 1.06%)")


EXPERIMENTS: Dict[str, Callable[[Scale, SweepExecutor], None]] = {
    "table1": _unscaled(run_table1),
    "table2": _unscaled(run_table2),
    "fig2a": _scaled(run_fig2a),
    "fig2b": _scaled(run_fig2b),
    "fig2c": _fig2c,
    "fig3": _fig3,
    "fig4": _unscaled(run_fig4),
    "fig5": _unscaled(run_fig5),
    "fig15": _scaled(run_fig15),
    "fig16": _scaled(run_fig16),
    "fig17": _scaled(run_fig17),
    "fig18": _scaled(run_fig18),
    "fig19": _scaled(run_fig19),
    "fig20": _scaled(run_fig20),
    "fig21": _scaled(run_fig21),
    "fig22": _scaled(run_fig22),
    "fig23": _scaled(run_fig23),
    "overhead": _overhead,
}


def _run_cache_command(action: str | None, cache: ResultCache) -> int:
    if action == "info":
        info = cache.info()
        print(f"root         : {info['root']}")
        print(f"entries      : {info['entries']}")
        print(f"bytes        : {info['bytes']:,}")
        print(f"version key  : {info['version']}")
        print(f"result schema: {info['result_schema']}")
        return 0
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    problem = (
        "missing cache action"
        if action is None
        else f"unknown cache action {action!r}"
    )
    print(f"{problem}; expected 'info' or 'clear'", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (e.g. fig15), 'list', 'all', "
            "'cache' (with 'info'/'clear'), 'bench', 'serve', or 'check'"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="cache subcommand action: 'info' or 'clear'",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=DEFAULT_SCALE.accesses_per_core,
        help="measured accesses per core",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=DEFAULT_SCALE.warmup_per_core,
        help="warm-up accesses per core",
    )
    parser.add_argument(
        "--fast-mb",
        type=float,
        default=DEFAULT_SCALE.fast_mb,
        help="stacked-DRAM capacity in MB (scaled system)",
    )
    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"must be >= 1, got {value}"
            )
        return value

    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes for sweep cells (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persistent result-cache directory "
            "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-cell progress to stderr",
    )
    parser.add_argument(
        "--arena",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "publish a shared-memory trace arena so sweep workers "
            "attach precompiled traces instead of regenerating them "
            "(results are identical either way; --no-arena disables)"
        ),
    )
    def positive_float(text: str) -> float:
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
        return value

    parser.add_argument(
        "--timeout",
        type=positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-job wall-clock timeout; an overdue worker is killed "
            "and its cell retried (default: none)"
        ),
    )
    def nonnegative_int(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
        return value

    parser.add_argument(
        "--retries",
        type=nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "retries per cell after a crash/timeout/transient error "
            "(default: 2)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "checkpoint completed cells to a JSONL journal next to "
            "the result cache and resume an interrupted sweep, "
            "replaying only missing cells"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="capture telemetry events from every simulated cell",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "trace output file (implies --trace): .jsonl for an event "
            "log, anything else for Chrome-trace/Perfetto JSON "
            "(default: trace.json)"
        ),
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run the live SRRT invariant auditor in every cell",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help=(
            "bench/check subcommands: output JSON path (default "
            "BENCH_kernel.json / CHECK_report.json)"
        ),
    )
    parser.add_argument(
        "--repeats",
        type=positive_int,
        default=3,
        help="bench subcommand: timing repeats per kernel (best-of)",
    )
    parser.add_argument(
        "--sample",
        type=nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "check subcommand: verify N sampled cells against the "
            "goldens (0 = the full grid; default 6)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="check subcommand: sampling/fuzzing seed (default 0)",
    )
    parser.add_argument(
        "--bless",
        action="store_true",
        help=(
            "check subcommand: re-record the full golden grid "
            "(requires --note with a changelog entry)"
        ),
    )
    parser.add_argument(
        "--note",
        default=None,
        metavar="TEXT",
        help=(
            "check subcommand: changelog note stored with blessed "
            "goldens (mandatory with --bless)"
        ),
    )
    parser.add_argument(
        "--goldens",
        default=None,
        metavar="PATH",
        help=(
            "check subcommand: golden store directory "
            "(default: $REPRO_GOLDENS or tests/goldens)"
        ),
    )
    parser.add_argument(
        "--fuzz",
        type=nonnegative_int,
        default=None,
        metavar="N",
        help=(
            "check subcommand: seeded fuzz cases to run "
            "(default 4; 0 disables)"
        ),
    )
    parser.add_argument(
        "--host",
        default=None,
        help="serve subcommand: bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve subcommand: TCP port (0 picks a free one)",
    )
    parser.add_argument(
        "--max-queue",
        type=positive_int,
        default=None,
        help="serve subcommand: pending-queue bound before 429s",
    )
    parser.add_argument(
        "--max-batch",
        type=positive_int,
        default=None,
        help="serve subcommand: cells per dispatched executor sweep",
    )
    parser.add_argument(
        "--hold",
        action="store_true",
        help=(
            "serve subcommand: accept and queue requests but do not "
            "dispatch them (maintenance / drain testing)"
        ),
    )
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir or default_cache_dir()
    if args.experiment == "cache":
        return _run_cache_command(args.action, ResultCache(cache_dir))

    if args.experiment == "bench":
        from repro.experiments.bench import DEFAULT_BENCH_OUT, run_bench_command

        return run_bench_command(
            out_path=args.out or DEFAULT_BENCH_OUT, repeats=args.repeats
        )

    if args.experiment == "check":
        from repro.check import DEFAULT_SAMPLE, run_check_command
        from repro.check.runner import DEFAULT_FUZZ

        return run_check_command(
            sample=args.sample if args.sample is not None else DEFAULT_SAMPLE,
            seed=args.seed,
            bless=args.bless,
            note=args.note,
            goldens=args.goldens,
            out=args.out,
            jobs=args.jobs,
            fuzz=args.fuzz if args.fuzz is not None else DEFAULT_FUZZ,
        )

    if args.experiment == "serve":
        from repro.serve import DEFAULT_HOST, DEFAULT_PORT, SimServer
        from repro.serve.dispatcher import DEFAULT_MAX_BATCH
        from repro.serve.scheduler import DEFAULT_MAX_QUEUE

        server = SimServer(
            host=args.host if args.host is not None else DEFAULT_HOST,
            port=args.port if args.port is not None else DEFAULT_PORT,
            jobs=args.jobs,
            cache=None if args.no_cache else ResultCache(cache_dir),
            checkpoint_dir=cache_dir,
            max_queue=(
                args.max_queue
                if args.max_queue is not None
                else DEFAULT_MAX_QUEUE
            ),
            max_batch=(
                args.max_batch
                if args.max_batch is not None
                else DEFAULT_MAX_BATCH
            ),
            hold=args.hold,
            timeout=args.timeout,
            retries=args.retries,
            arena=args.arena,
        )
        server.run()
        return 0

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    # A fresh invocation answers from the *disk* cache, never from a
    # stale in-process memo (which only exists when main() is called
    # programmatically, e.g. from tests).
    from repro.experiments.runner import clear_sweep_cache

    clear_sweep_cache()
    trace = args.trace or args.trace_out is not None
    executor = SweepExecutor(
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(cache_dir),
        on_cell=print_progress if args.progress else None,
        telemetry=EventBus() if trace else None,
        audit=args.audit,
        timeout=args.timeout,
        retries=args.retries,
        journal_dir=cache_dir if args.resume else None,
        arena=args.arena,
    )
    scale = dataclasses.replace(
        DEFAULT_SCALE,
        accesses_per_core=args.accesses,
        warmup_per_core=args.warmup,
        fast_mb=args.fast_mb,
    )

    def report_runtime() -> None:
        if executor.metrics.cells_total:
            print(f"[runtime] {executor.metrics.summary()}", file=sys.stderr)
        if trace:
            out = args.trace_out or "trace.json"
            tracks = {
                f"{design}/{workload}": stream
                for (design, workload), stream in executor.events.items()
            }
            count = write_trace(tracks, out)
            audited = " audit=on" if args.audit else ""
            print(
                f"[telemetry] {count} events from {len(tracks)} "
                f"simulated cell(s) -> {out}{audited}",
                file=sys.stderr,
            )

    # Operational failures (an exhausted cell, a tripped invariant
    # auditor) exit 1 with a one-line diagnosis rather than a raw
    # traceback — uniform with the check/bench subcommands, and what
    # shell pipelines and CI gates key on.
    from repro.runtime import SweepJobError
    from repro.telemetry import InvariantViolation

    if args.experiment == "all":
        try:
            for name, runner in EXPERIMENTS.items():
                print(f"==== {name} ====")
                runner(scale, executor)
                print()
        except (SweepJobError, InvariantViolation) as exc:
            print(f"error: {exc}", file=sys.stderr)
            report_runtime()
            return 1
        report_runtime()
        return 0

    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        known = ", ".join(EXPERIMENTS)
        print(
            f"unknown experiment {args.experiment!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    try:
        runner(scale, executor)
    except (SweepJobError, InvariantViolation) as exc:
        print(f"error: {exc}", file=sys.stderr)
        report_runtime()
        return 1
    report_runtime()
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early.
        raise SystemExit(0) from None
