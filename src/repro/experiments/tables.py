"""Runners for Table I (configuration) and Table II (workloads)."""

from __future__ import annotations

from typing import List

from repro.config import GB, KB, MB, SystemConfig, paper_config
from repro.experiments.figures import FigureResult
from repro.workloads import build_workload
from repro.workloads.suites import TABLE2_BENCHMARKS


def run_table1(config: SystemConfig | None = None) -> FigureResult:
    """Render the simulated configuration (Table I)."""
    config = config if config is not None else paper_config()
    fast, slow = config.fast_mem, config.slow_mem
    rows: List[List] = [
        ["Cores", f"{config.num_cores} @ {config.core.frequency_hz / 1e9:.1f}GHz"],
        ["L1 (I/D)", f"{config.l1.capacity_bytes // KB}KB, {config.l1.associativity}-way"],
        ["L2", f"{config.l2.capacity_bytes // KB}KB, {config.l2.associativity}-way"],
        ["L3", f"{config.l3.capacity_bytes // MB}MB, {config.l3.associativity}-way, shared"],
        [
            "Stacked DRAM",
            f"{fast.capacity_bytes / GB:.2f}GB, {fast.bus_frequency_hz/1e9:.1f}GHz DDR, "
            f"{fast.bus_width_bits}b x {fast.channels}ch, tRFC {fast.timing.tRFC_ns:.0f}ns",
        ],
        [
            "Off-chip DRAM",
            f"{slow.capacity_bytes / GB:.2f}GB, {slow.bus_frequency_hz/1e9:.1f}GHz DDR, "
            f"{slow.bus_width_bits}b x {slow.channels}ch, tRFC {slow.timing.tRFC_ns:.0f}ns",
        ],
        [
            "Timings",
            f"tCAS-tRCD-tRP-tRAS {fast.timing.tCAS}-{fast.timing.tRCD}-"
            f"{fast.timing.tRP}-{fast.timing.tRAS}",
        ],
        ["Segment size", f"{config.segment_bytes // KB}KB"],
        ["Page-fault latency", f"{config.page_fault_latency_cycles:,} cycles"],
        ["Capacity ratio", f"1:{config.capacity_ratio}"],
        ["Segment groups", f"{config.num_segment_groups:,}"],
    ]
    summary = {
        "peak_bw_ratio": (
            fast.peak_bandwidth_bytes_per_sec
            / slow.peak_bandwidth_bytes_per_sec
        ),
        "capacity_ratio": float(config.capacity_ratio),
    }
    return FigureResult(
        "Table I: simulated configuration", ["item", "value"], rows, summary
    )


def run_table2(config: SystemConfig | None = None) -> FigureResult:
    """Regenerate Table II from the synthesis catalogue.

    Reports, per benchmark, the Table II LLC-MPKI / footprint targets
    and the values the synthetic workload actually achieves on the
    given configuration (MPKI from the generated instruction gaps,
    footprint from the placed segments).
    """
    from repro.config import scaled_config

    config = config if config is not None else scaled_config()
    total = config.total_capacity_bytes
    headers = [
        "workload",
        "suite",
        "MPKI (paper)",
        "MPKI (model)",
        "MF GB (paper)",
        "MF frac (model)",
    ]
    rows: List[List] = []
    mpki_error = 0.0
    for spec in TABLE2_BENCHMARKS:
        workload = build_workload(config, spec)
        sample_instructions = 0
        sample_accesses = 0
        for record in workload.generators()[0].stream(2000):
            sample_instructions += record.icount_gap
            sample_accesses += 1
        model_mpki = (
            sample_accesses / sample_instructions * 1000.0
            if sample_instructions
            else 0.0
        )
        mpki_error = max(
            mpki_error, abs(model_mpki - spec.llc_mpki) / spec.llc_mpki
        )
        rows.append(
            [
                spec.name,
                spec.suite,
                spec.llc_mpki,
                model_mpki,
                spec.footprint_gb,
                workload.footprint_bytes / total,
            ]
        )
    summary = {"max_mpki_relative_error": mpki_error}
    return FigureResult(
        "Table II: workload characteristics (paper vs model)",
        headers,
        rows,
        summary,
    )
