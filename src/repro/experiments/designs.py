"""Typed design registry: every memory system the paper evaluates.

The old API was a bare ``DESIGNS: Dict[str, DesignFactory]`` plus
ad-hoc per-figure tuples (``FIG18_DESIGNS`` ...).  This module replaces
both with :class:`DesignSpec` — label, factory, category, figure
membership — held in a :class:`DesignRegistry` queryable by figure or
category.  Figure order matters for the plots, so membership is
declared per figure as an ordered label tuple (:meth:`DesignRegistry
.define_figure`), in the exact plot order of the paper.

The legacy names still import from :mod:`repro.experiments.runner` as
thin deprecated aliases for one release.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Tuple

from repro.arch import (
    AlloyCache,
    CameoArchitecture,
    FlatMemory,
    MemoryArchitecture,
    PoMArchitecture,
    PolymorphicMemory,
    StaticHybridMemory,
)
from repro.config import SystemConfig
from repro.core import (
    ChameleonArchitecture,
    ChameleonOptArchitecture,
    ChameleonSharedPool,
)
from repro.osmodel.autonuma import AutoNumaConfig
from repro.sim import (
    AutoNumaMemory,
    FirstTouchMemory,
    KernelDecision,
    select_kernel,
)

DesignFactory = Callable[[SystemConfig], MemoryArchitecture]

#: The three design categories (Section II taxonomy): flat-DRAM
#: ``baseline`` points, ``hardware`` co-designed/managed systems, and
#: ``os``-managed NUMA policies.
CATEGORIES = ("baseline", "hardware", "os")


@dataclass(frozen=True)
class DesignSpec:
    """One evaluated memory system.

    ``figures`` is derived — it lists every figure the design appears
    in, in figure-id order, and is filled in by
    :meth:`DesignRegistry.define_figure`.
    """

    label: str
    factory: DesignFactory
    category: str
    figures: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(
                f"unknown category {self.category!r}; "
                f"expected one of {CATEGORIES}"
            )


class DesignRegistry:
    """Ordered registry of :class:`DesignSpec`, queryable by figure or
    category."""

    def __init__(self) -> None:
        self._specs: Dict[str, DesignSpec] = {}
        self._figures: Dict[str, Tuple[str, ...]] = {}

    # -- registration --------------------------------------------------

    def register(self, spec: DesignSpec) -> DesignSpec:
        if spec.label in self._specs:
            raise ValueError(f"design {spec.label!r} already registered")
        self._specs[spec.label] = spec
        return spec

    def define_figure(self, figure: str, labels: Tuple[str, ...]) -> None:
        """Declare a figure's designs, in plot order."""
        for label in labels:
            if label not in self._specs:
                raise KeyError(
                    f"figure {figure!r} references unknown design {label!r}"
                )
        self._figures[figure] = tuple(labels)
        for label in labels:
            spec = self._specs[label]
            if figure not in spec.figures:
                self._specs[label] = replace(
                    spec, figures=tuple(sorted(spec.figures + (figure,)))
                )

    # -- queries -------------------------------------------------------

    def get(self, label: str) -> DesignSpec:
        try:
            return self._specs[label]
        except KeyError:
            raise KeyError(f"unknown design {label!r}") from None

    def __getitem__(self, label: str) -> DesignSpec:
        return self.get(label)

    def __contains__(self, label: str) -> bool:
        return label in self._specs

    def __iter__(self) -> Iterator[DesignSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def labels(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def figures(self) -> Tuple[str, ...]:
        return tuple(self._figures)

    def by_category(self, category: str) -> Tuple[DesignSpec, ...]:
        """Specs of one category, in registration order."""
        if category not in CATEGORIES:
            raise KeyError(
                f"unknown category {category!r}; expected one of {CATEGORIES}"
            )
        return tuple(
            spec for spec in self._specs.values()
            if spec.category == category
        )

    def by_figure(self, figure: str) -> Tuple[DesignSpec, ...]:
        """Specs of one figure, in the paper's plot order."""
        return tuple(self._specs[l] for l in self.figure_labels(figure))

    def figure_labels(self, figure: str) -> Tuple[str, ...]:
        try:
            return self._figures[figure]
        except KeyError:
            known = ", ".join(self._figures)
            raise KeyError(
                f"unknown figure {figure!r}; known: {known}"
            ) from None

    def factories(self) -> Dict[str, DesignFactory]:
        """Label -> factory view (shape of the legacy ``DESIGNS``)."""
        return {spec.label: spec.factory for spec in self._specs.values()}


# ----------------------------------------------------------------------
# Factory helpers
# ----------------------------------------------------------------------

def _flat(fraction_of_total: float) -> DesignFactory:
    def make(config: SystemConfig) -> MemoryArchitecture:
        capacity = int(config.total_capacity_bytes * fraction_of_total)
        return FlatMemory(config, capacity_bytes=capacity)

    return make


def _knl(cache_fraction: float) -> DesignFactory:
    def make(config: SystemConfig) -> MemoryArchitecture:
        return StaticHybridMemory(config, cache_fraction=cache_fraction)

    return make


def _autonuma(threshold: float) -> DesignFactory:
    def make(config: SystemConfig) -> MemoryArchitecture:
        return AutoNumaMemory(
            config,
            autonuma=AutoNumaConfig(threshold=threshold),
            epoch_accesses=3000,
        )

    return make


def kernel_decision(label: str, config: SystemConfig) -> KernelDecision:
    """Which replay kernel ``kernel="auto"`` resolves to for ``label``.

    Builds the design's architecture at ``config`` and asks
    :func:`repro.sim.select_kernel` (with no workload — the decision is
    label-level, every registry workload provides ``stream_batches``).
    Used by the sweep runtime and the serving layer to surface *why* a
    design runs on a given kernel without simulating anything.
    """
    architecture = REGISTRY.get(label).factory(config)
    pager_present = (
        architecture.os_visible_bytes < config.total_capacity_bytes
    )
    return select_kernel(architecture, None, pager_present)


# ----------------------------------------------------------------------
# The registry: every design the paper evaluates, by figure label
# ----------------------------------------------------------------------

REGISTRY = DesignRegistry()

for _spec in (
    DesignSpec("baseline_20GB_DDR3", _flat(20.0 / 24.0), "baseline"),
    DesignSpec("baseline_24GB_DDR3", _flat(1.0), "baseline"),
    DesignSpec("Alloy-Cache", AlloyCache, "hardware"),
    DesignSpec("PoM", PoMArchitecture, "hardware"),
    DesignSpec("Chameleon", ChameleonArchitecture, "hardware"),
    DesignSpec("Chameleon-Opt", ChameleonOptArchitecture, "hardware"),
    DesignSpec("Polymorphic", PolymorphicMemory, "hardware"),
    DesignSpec("CAMEO", CameoArchitecture, "hardware"),
    DesignSpec("Chameleon-Shared", ChameleonSharedPool, "hardware"),
    DesignSpec("KNL-hybrid-25", _knl(0.25), "hardware"),
    DesignSpec("KNL-hybrid-50", _knl(0.50), "hardware"),
    DesignSpec("numaAware", FirstTouchMemory, "os"),
    DesignSpec("autoNUMA_70percent", _autonuma(0.70), "os"),
    DesignSpec("autoNUMA_80percent", _autonuma(0.80), "os"),
    DesignSpec("autoNUMA_90percent", _autonuma(0.90), "os"),
):
    REGISTRY.register(_spec)

#: The four hardware designs of Figures 15-17 and 19.
_HW = ("Alloy-Cache", "PoM", "Chameleon", "Chameleon-Opt")

REGISTRY.define_figure("fig2a", ("numaAware",))
REGISTRY.define_figure(
    "fig2b",
    ("autoNUMA_70percent", "autoNUMA_80percent", "autoNUMA_90percent"),
)
REGISTRY.define_figure("fig15", _HW)
REGISTRY.define_figure("fig16", ("Chameleon", "Chameleon-Opt"))
REGISTRY.define_figure("fig17", ("PoM", "Chameleon", "Chameleon-Opt"))
REGISTRY.define_figure(
    "fig18",
    (
        "baseline_20GB_DDR3",
        "baseline_24GB_DDR3",
        "Alloy-Cache",
        "PoM",
        "Chameleon",
        "Chameleon-Opt",
    ),
)
REGISTRY.define_figure("fig19", ("PoM", "Chameleon", "Chameleon-Opt"))
REGISTRY.define_figure(
    "fig20",
    (
        "baseline_20GB_DDR3",
        "baseline_24GB_DDR3",
        "numaAware",
        "autoNUMA_70percent",
        "autoNUMA_80percent",
        "autoNUMA_90percent",
        "Chameleon",
        "Chameleon-Opt",
    ),
)
REGISTRY.define_figure("fig21", ("Chameleon", "Chameleon-Opt"))
REGISTRY.define_figure(
    "fig22",
    (
        "baseline_20GB_DDR3",
        "baseline_24GB_DDR3",
        "Polymorphic",
        "Chameleon",
        "Chameleon-Opt",
    ),
)
REGISTRY.define_figure(
    "fig23",
    (
        "baseline_20GB_DDR3",
        "baseline_24GB_DDR3",
        "PoM",
        "Chameleon",
        "Chameleon-Opt",
    ),
)

__all__ = [
    "CATEGORIES",
    "DesignFactory",
    "DesignRegistry",
    "DesignSpec",
    "REGISTRY",
    "kernel_decision",
]
