"""Common interface of every memory architecture."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.dram import HeterogeneousMemory
from repro.stats import CounterSet, Histogram
from repro.telemetry.bus import NULL_BUS, EventBus, NullBus


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one 64B memory access presented to an architecture."""

    latency_ns: float
    fast_hit: bool
    #: True when the access was served from a swap staging buffer.
    buffered: bool = False


class MemoryArchitecture(abc.ABC):
    """A heterogeneous (or flat) memory organisation.

    Subclasses translate OS physical addresses into device accesses,
    manage remapping/caching state, and expose ISA-Alloc/ISA-Free entry
    points (no-ops for designs without OS co-operation).
    """

    name: str = "abstract"

    def __init__(
        self,
        config: SystemConfig,
        counters: CounterSet | None = None,
        telemetry: EventBus | NullBus | None = None,
    ):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        #: Structured event bus (:mod:`repro.telemetry`).  Defaults to
        #: the shared null bus — emit sites gate on
        #: ``self.telemetry.enabled`` so the disabled path costs one
        #: attribute load and a false branch.  Attach a live bus either
        #: here or by assignment (``simulate(..., telemetry=bus)`` does
        #: the latter).
        self.telemetry = telemetry if telemetry is not None else NULL_BUS
        self.memory = HeterogeneousMemory(config, self.counters)
        #: Demand-access latency distribution (ns); exposes the tail
        #: behaviour that averages hide (swap interference shows up as
        #: a long tail well before it moves the mean).
        self.latency_histogram = Histogram(
            [10, 20, 40, 80, 160, 320, 640, 1280, 2560]
        )

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def access(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> AccessResult:
        """Service one 64B access at OS physical ``address``."""

    # ------------------------------------------------------------------
    # OS co-design hooks (default: architecture is OS-agnostic)
    # ------------------------------------------------------------------

    def isa_alloc(self, segment_id: int) -> None:
        """The OS allocated segment ``segment_id`` (OS address domain)."""

    def isa_free(self, segment_id: int) -> None:
        """The OS freed segment ``segment_id`` (OS address domain)."""

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def os_visible_bytes(self) -> int:
        """Memory capacity the OS can allocate (PoM designs expose both
        memories; caches hide the fast one)."""
        return self.config.total_capacity_bytes

    # ------------------------------------------------------------------
    # Reporting helpers shared by the experiment runners
    # ------------------------------------------------------------------

    def record_access_outcome(self, result: AccessResult) -> None:
        self.counters.add("arch.accesses")
        self.counters.add("arch.latency_ns", result.latency_ns)
        self.latency_histogram.record(result.latency_ns)
        if result.fast_hit:
            self.counters.add("arch.fast_hits")

    @property
    def fast_hit_rate(self) -> float:
        """Stacked-DRAM hit rate as reported in Figure 15."""
        return self.counters.ratio("arch.fast_hits", "arch.accesses")

    @property
    def average_latency_ns(self) -> float:
        return self.counters.ratio("arch.latency_ns", "arch.accesses")

    @property
    def swap_count(self) -> float:
        """Segment swaps (Figure 17's metric)."""
        return self.counters["swap.swaps"]
