"""Common interface of every memory architecture."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.dram import HeterogeneousMemory
from repro.stats import CounterSet, Histogram
from repro.telemetry.bus import NULL_BUS, EventBus, NullBus


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one 64B memory access presented to an architecture."""

    latency_ns: float
    fast_hit: bool
    #: True when the access was served from a swap staging buffer.
    buffered: bool = False


class MemoryArchitecture(abc.ABC):
    """A heterogeneous (or flat) memory organisation.

    Subclasses translate OS physical addresses into device accesses,
    manage remapping/caching state, and expose ISA-Alloc/ISA-Free entry
    points (no-ops for designs without OS co-operation).
    """

    name: str = "abstract"

    #: Whether the batched replay kernel may drive this design through
    #: :meth:`access_timing` with deferred stat aggregation.  True for
    #: every in-tree design — the kernel preserves exact access order —
    #: but exotic subclasses that read ``arch.*``/device counters from
    #: inside the demand path can opt out.
    supports_batch_kernel: bool = True

    def __init__(
        self,
        config: SystemConfig,
        counters: CounterSet | None = None,
        telemetry: EventBus | NullBus | None = None,
    ):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        #: Structured event bus (:mod:`repro.telemetry`).  Defaults to
        #: the shared null bus — emit sites gate on
        #: ``self.telemetry.enabled`` so the disabled path costs one
        #: attribute load and a false branch.  Attach a live bus either
        #: here or by assignment (``simulate(..., telemetry=bus)`` does
        #: the latter).
        self.telemetry = telemetry if telemetry is not None else NULL_BUS
        self.memory = HeterogeneousMemory(config, self.counters)
        #: Demand-access latency distribution (ns); exposes the tail
        #: behaviour that averages hide (swap interference shows up as
        #: a long tail well before it moves the mean).
        self.latency_histogram = Histogram(
            [10, 20, 40, 80, 160, 320, 640, 1280, 2560]
        )

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        """Service one 64B access at OS physical ``address``.

        Returns ``(latency_ns, fast_hit)``.  This is the allocation-free
        demand path: subclasses perform the translation, device access,
        and policy bookkeeping here and return a plain tuple; outcome
        accounting (``arch.*`` counters, latency histogram) is layered
        on by :meth:`access` per access or by
        :meth:`record_access_batch` in bulk.
        """

    def access(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> AccessResult:
        """Service one 64B access and record its outcome.

        Thin wrapper over :meth:`access_timing` kept as the public
        scalar entry point (tests and tools poke architectures one
        access at a time); the batched kernel skips the per-access
        :class:`AccessResult` allocation by using ``access_timing``
        directly.
        """
        latency_ns, fast_hit = self.access_timing(address, now_ns, is_write)
        result = AccessResult(latency_ns=latency_ns, fast_hit=fast_hit)
        self.record_access_outcome(result)
        return result

    def access_batch(
        self,
        addresses,
        now_ns_seq,
        is_writes,
    ) -> tuple[list, int]:
        """Service a pre-scheduled, time-ordered run of accesses.

        Bulk (open-loop) entry point: ``addresses``/``now_ns_seq``/
        ``is_writes`` are parallel sequences replayed in order through
        :meth:`access_timing` with device counters deferred, then all
        outcome stats are recorded in one shot.  Returns the latency
        list and the fast-hit count.  Results are bit-identical to the
        equivalent :meth:`access` loop.  (The closed-loop simulation
        engine cannot pre-schedule issue times — each one feeds back
        through the core clocks — so it drives ``access_timing``
        directly and batches only the accounting.)
        """
        timing = self.access_timing
        latencies: list = []
        append = latencies.append
        fast_hits = 0
        self.begin_batch_stats()
        try:
            for address, now_ns, is_write in zip(
                addresses, now_ns_seq, is_writes
            ):
                latency_ns, fast_hit = timing(address, now_ns, is_write)
                append(latency_ns)
                if fast_hit:
                    fast_hits += 1
        finally:
            self.end_batch_stats()
        self.record_access_batch(latencies, fast_hits)
        return latencies, fast_hits

    # ------------------------------------------------------------------
    # OS co-design hooks (default: architecture is OS-agnostic)
    # ------------------------------------------------------------------

    def isa_alloc(self, segment_id: int) -> None:
        """The OS allocated segment ``segment_id`` (OS address domain)."""

    def isa_free(self, segment_id: int) -> None:
        """The OS freed segment ``segment_id`` (OS address domain)."""

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def os_visible_bytes(self) -> int:
        """Memory capacity the OS can allocate (PoM designs expose both
        memories; caches hide the fast one)."""
        return self.config.total_capacity_bytes

    # ------------------------------------------------------------------
    # Reporting helpers shared by the experiment runners
    # ------------------------------------------------------------------

    def record_access_outcome(self, result: AccessResult) -> None:
        self.counters.add("arch.accesses")
        self.counters.add("arch.latency_ns", result.latency_ns)
        self.latency_histogram.record(result.latency_ns)
        if result.fast_hit:
            self.counters.add("arch.fast_hits")

    def record_access_batch(self, latencies, fast_hits: int) -> None:
        """Bulk form of :meth:`record_access_outcome`.

        ``latencies`` must hold every serviced access's latency in
        issue order; ``fast_hits`` how many of them hit the stacked
        DRAM.  Count increments collapse to one addition (exact for
        integers), the latency sum and histogram fold sequentially —
        so the final stats are bit-identical to per-access recording.
        """
        n = len(latencies)
        if not n:
            return
        self.counters.add("arch.accesses", n)
        self.counters.add_many("arch.latency_ns", latencies)
        self.latency_histogram.observe_array(latencies)
        if fast_hits:
            self.counters.add("arch.fast_hits", fast_hits)

    # ------------------------------------------------------------------
    # Bulk-stats plumbing for the batched kernel
    # ------------------------------------------------------------------

    def _batch_devices(self) -> tuple:
        """The DRAM devices whose demand-path counters may be deferred
        while a batched run is in flight."""
        return (self.memory.fast, self.memory.slow)

    def begin_batch_stats(self) -> None:
        """Enter bulk-stats mode: device demand counters are tallied
        locally until flushed (transfers flush automatically to keep
        the shared ``busy_ns`` accumulation order)."""
        for device in self._batch_devices():
            device.begin_deferred_stats()

    def flush_batch_stats(self) -> None:
        """Publish pending device tallies (e.g. before a counter read
        or reset)."""
        for device in self._batch_devices():
            device.flush_deferred_stats()

    def end_batch_stats(self) -> None:
        """Flush pending device tallies and leave bulk-stats mode."""
        for device in self._batch_devices():
            device.end_deferred_stats()

    @property
    def fast_hit_rate(self) -> float:
        """Stacked-DRAM hit rate as reported in Figure 15."""
        return self.counters.ratio("arch.fast_hits", "arch.accesses")

    @property
    def average_latency_ns(self) -> float:
        return self.counters.ratio("arch.latency_ns", "arch.accesses")

    @property
    def swap_count(self) -> float:
        """Segment swaps (Figure 17's metric)."""
        return self.counters["swap.swaps"]
