"""Segment-restricted remapping machinery (Section V, Figure 6).

Both PoM baselines and Chameleon restrict remapping: a stacked-DRAM
segment may only swap with off-chip segments of the *same segment
group*.  With ``NF`` fast segments and capacity ratio ``1:R`` a group
holds one fast segment and ``R`` off-chip segments; group membership
interleaves so group ``g`` contains fast segment ``g`` and off-chip
segments ``g + k*NF`` for ``k`` in ``0..R-1``.

Terminology used throughout:

* **segment id** — the OS-physical segment number
  (``address // segment_bytes``) over the combined address space, fast
  range first;
* **local id** — a segment's index inside its group: 0 is the group's
  stacked segment, 1..R its off-chip segments;
* **slot** — a physical location in the group, numbered like local ids
  (slot 0 is the stacked location).  The remap table tracks which local
  id currently *resides* in which slot, exactly what the SRRT tag bits
  encode (Figure 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import SystemConfig


class Mode(enum.Enum):
    """Segment-group operating mode (the SRRT mode bit)."""

    POM = "pom"
    CACHE = "cache"


@dataclass(frozen=True)
class SegmentGeometry:
    """Pure address arithmetic between OS addresses, groups and devices."""

    segment_bytes: int
    num_fast_segments: int
    num_slow_segments: int

    @classmethod
    def from_config(cls, config: SystemConfig) -> "SegmentGeometry":
        return cls(
            segment_bytes=config.segment_bytes,
            num_fast_segments=config.num_fast_segments,
            num_slow_segments=config.num_slow_segments,
        )

    def __post_init__(self) -> None:
        if self.num_slow_segments % self.num_fast_segments:
            raise ValueError("slow segments must be a multiple of fast segments")

    @property
    def ratio(self) -> int:
        return self.num_slow_segments // self.num_fast_segments

    @property
    def segments_per_group(self) -> int:
        return self.ratio + 1

    @property
    def num_groups(self) -> int:
        return self.num_fast_segments

    @property
    def total_segments(self) -> int:
        return self.num_fast_segments + self.num_slow_segments

    # -- OS address <-> segment ---------------------------------------

    def segment_of(self, address: int) -> int:
        segment = address // self.segment_bytes
        if not 0 <= segment < self.total_segments:
            raise ValueError(f"address {address:#x} outside OS memory")
        return segment

    def is_fast_segment(self, segment: int) -> bool:
        return segment < self.num_fast_segments

    # -- segment <-> (group, local) ------------------------------------

    def group_and_local(self, segment: int) -> tuple[int, int]:
        if self.is_fast_segment(segment):
            return segment, 0
        offset = segment - self.num_fast_segments
        return offset % self.num_fast_segments, 1 + offset // self.num_fast_segments

    def segment_at(self, group: int, local: int) -> int:
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        if not 0 <= local <= self.ratio:
            raise ValueError(f"local id {local} out of range")
        if local == 0:
            return group
        return self.num_fast_segments + (local - 1) * self.num_fast_segments + group

    # -- slot -> device address ----------------------------------------

    def slot_device_address(self, group: int, slot: int, offset: int = 0) -> tuple[bool, int]:
        """(in_fast, device-local byte address) of a slot."""
        if not 0 <= offset < self.segment_bytes:
            raise ValueError("offset outside segment")
        if slot == 0:
            return True, group * self.segment_bytes + offset
        slow_index = (slot - 1) * self.num_fast_segments + group
        return False, slow_index * self.segment_bytes + offset


@dataclass
class GroupState:
    """Mutable per-group SRRT entry (Figure 7).

    ``seg_at[slot]`` is the local id of the segment currently residing
    in ``slot`` (the tag bits); ``abv`` is the Alloc Bit Vector;
    ``cached``/``dirty`` describe the cache overlay of slot 0 when the
    group operates in cache mode; ``candidate``/``count`` implement the
    PoM shared competing counter.
    """

    size: int
    mode: Mode = Mode.CACHE
    seg_at: List[int] = field(default_factory=list)
    slot_of: List[int] = field(default_factory=list)
    abv: List[bool] = field(default_factory=list)
    cached: Optional[int] = None
    dirty: bool = False
    #: Misses since the cached incumbent last hit; drives the thrash
    #: protection of Chameleon's cache-mode fill policy.
    miss_streak: int = 0
    candidate: Optional[int] = None
    count: int = 0
    #: Remaining group accesses before the competing counter may trigger
    #: another swap (the PoM baseline gates remapping decisions per
    #: epoch; the cooldown caps counter ping-pong between two hot
    #: segments competing for the single stacked slot).
    cooldown: int = 0

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("a group needs the fast segment plus >= 1 slow")
        if not self.seg_at:
            self.seg_at = list(range(self.size))
        if not self.slot_of:
            self.slot_of = list(range(self.size))
        if not self.abv:
            self.abv = [False] * self.size
        self.validate()

    def validate(self) -> None:
        """The remap must stay a permutation; cache state consistent."""
        if sorted(self.seg_at) != list(range(self.size)):
            raise AssertionError("seg_at is not a permutation")
        for slot, local in enumerate(self.seg_at):
            if self.slot_of[local] != slot:
                raise AssertionError("slot_of does not invert seg_at")
        if self.mode is Mode.POM and self.cached is not None:
            raise AssertionError("PoM-mode group cannot hold a cached segment")
        if self.cached is not None and not 0 <= self.cached < self.size:
            raise AssertionError("cached local id out of range")

    # -- remapping ------------------------------------------------------

    def swap_slots(self, slot_a: int, slot_b: int) -> None:
        """Exchange the residents of two slots (one hardware swap)."""
        seg_a, seg_b = self.seg_at[slot_a], self.seg_at[slot_b]
        self.seg_at[slot_a], self.seg_at[slot_b] = seg_b, seg_a
        self.slot_of[seg_a], self.slot_of[seg_b] = slot_b, slot_a

    def resident_of_fast(self) -> int:
        """Local id currently occupying the stacked slot."""
        return self.seg_at[0]

    @property
    def allocated_count(self) -> int:
        return sum(self.abv)

    @property
    def any_free(self) -> bool:
        return not all(self.abv)

    def is_identity(self) -> bool:
        return all(slot == local for slot, local in enumerate(self.seg_at))
