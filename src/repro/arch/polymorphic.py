"""Polymorphic Memory (Chung et al. patent US 2012/0221785).

The Figure 22 comparison point: the hardware leverages OS-visible free
space *in the stacked DRAM only* as a cache, but — unlike PoM and
Chameleon — never swaps frequently used off-chip pages into allocated
stacked segments.  Allocated groups therefore behave like a static flat
mapping, under-utilising the stacked DRAM, which is why Chameleon beats
it by 10.5% despite harvesting the same amount of free space.
"""

from __future__ import annotations

from typing import Dict

from repro.config import SystemConfig
from repro.arch.base import MemoryArchitecture
from repro.arch.remap import GroupState, Mode, SegmentGeometry
from repro.stats import CounterSet


class PolymorphicMemory(MemoryArchitecture):
    """Free stacked segments cache their group; no hot-page swapping."""

    name = "polymorphic"

    def __init__(self, config: SystemConfig, counters: CounterSet | None = None):
        super().__init__(config, counters)
        self.geometry = SegmentGeometry.from_config(config)
        self._groups: Dict[int, GroupState] = {}

    def group_state(self, group: int) -> GroupState:
        state = self._groups.get(group)
        if state is None:
            # Boot state: nothing allocated, stacked slot free => cache.
            state = GroupState(
                size=self.geometry.segments_per_group, mode=Mode.CACHE
            )
            self._groups[group] = state
        return state

    # ------------------------------------------------------------------
    # ISA hooks (the patent's OS co-operation)
    # ------------------------------------------------------------------

    def isa_alloc(self, segment_id: int) -> None:
        group, local = self.geometry.group_and_local(segment_id)
        state = self.group_state(group)
        state.abv[local] = True
        if local == 0:
            # Stacked segment claimed: stop caching (writeback if dirty).
            if state.cached is not None and state.dirty:
                self._writeback(group, state, 0.0)
            state.cached = None
            state.dirty = False
            state.mode = Mode.POM
            self.counters.add("polymorphic.to_static")

    def isa_free(self, segment_id: int) -> None:
        group, local = self.geometry.group_and_local(segment_id)
        state = self.group_state(group)
        state.abv[local] = False
        if local == 0 and state.mode is not Mode.CACHE:
            state.mode = Mode.CACHE
            state.cached = None
            state.dirty = False
            self.counters.add("polymorphic.to_cache")

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        segment = self.geometry.segment_of(address)
        group, local = self.geometry.group_and_local(segment)
        offset = address % self.geometry.segment_bytes
        state = self.group_state(group)

        if local == 0:
            # Static mapping: the stacked segment always lives in slot 0.
            in_fast, device_address = self.geometry.slot_device_address(
                group, 0, offset
            )
            latency = self.memory.access(
                in_fast, device_address, now_ns, is_write, segment_id=segment
            )
            return latency, True

        if state.mode is Mode.CACHE and state.cached == local:
            _, cache_address = self.geometry.slot_device_address(
                group, 0, offset
            )
            latency = self.memory.access(
                True, cache_address, now_ns, is_write, segment_id=segment
            )
            if is_write:
                state.dirty = True
            self.counters.add("polymorphic.cache_hits")
            return latency, True

        # Off-chip access at the segment's home location.
        in_fast, device_address = self.geometry.slot_device_address(
            group, local, offset
        )
        latency = self.memory.access(
            in_fast, device_address, now_ns, is_write, segment_id=segment
        )
        if state.mode is Mode.CACHE:
            self._fill(group, state, local, now_ns)
        return latency, False

    # ------------------------------------------------------------------

    def _fill(
        self, group: int, state: GroupState, local: int, now_ns: float
    ) -> None:
        """Cache the just-accessed off-chip segment in the free slot 0."""
        writeback = state.cached is not None and state.dirty
        _, fast_address = self.geometry.slot_device_address(group, 0, 0)
        _, slow_address = self.geometry.slot_device_address(group, local, 0)
        self.memory.start_fill(
            fast_address=fast_address,
            slow_address=slow_address,
            now_ns=now_ns,
            slow_segment_id=self.geometry.segment_at(group, local),
            writeback=writeback,
        )
        state.cached = local
        state.dirty = False
        self.counters.add("polymorphic.fills")

    def _writeback(self, group: int, state: GroupState, now_ns: float) -> None:
        assert state.cached is not None
        _, fast_address = self.geometry.slot_device_address(group, 0, 0)
        _, slow_address = self.geometry.slot_device_address(
            group, state.cached, 0
        )
        segment_bytes = self.geometry.segment_bytes
        self.memory.fast.transfer(fast_address, segment_bytes, now_ns)
        self.memory.slow.transfer(slow_address, segment_bytes, now_ns)
        self.counters.add("polymorphic.writebacks")

    # ------------------------------------------------------------------

    def cache_mode_fraction(self) -> float:
        """Fraction of touched groups currently in cache mode."""
        if not self._groups:
            return 0.0
        in_cache = sum(
            1 for state in self._groups.values() if state.mode is Mode.CACHE
        )
        return in_cache / len(self._groups)
