"""Hardware-managed Part of Memory (Sim et al., MICRO 2014).

The paper's baseline: both memories are OS-visible, 2KB segments are
remapped within segment groups via the SRT, and a per-group *shared
competing counter* decides when a frequently accessed off-chip segment
should swap with the group's stacked-DRAM resident.  Swaps move whole
segments in both directions (the fast-swap local buffers service
in-transit accesses) and are issued regardless of whether the data is
allocated — PoM is free-space agnostic, which is precisely the waste
Chameleon removes.
"""

from __future__ import annotations

from typing import Dict

from repro.config import SystemConfig
from repro.arch.base import AccessResult, MemoryArchitecture
from repro.arch.remap import GroupState, Mode, SegmentGeometry
from repro.stats import CounterSet
from repro.telemetry.events import SegmentSwap

#: Default minimum number of competing-counter wins before a swap
#: (Section III-E: PoM gates swaps behind an access-count threshold).
DEFAULT_SWAP_THRESHOLD = 4

#: Group accesses after a swap during which the counter may not trigger
#: another swap in the same group — the trace-level analogue of the PoM
#: baseline's epoch-gated remapping decisions.
DEFAULT_SWAP_COOLDOWN = 64


class PoMArchitecture(MemoryArchitecture):
    """PoM with segment-restricted remapping and competing counters."""

    name = "pom"

    def __init__(
        self,
        config: SystemConfig,
        swap_threshold: int = DEFAULT_SWAP_THRESHOLD,
        swap_cooldown: int = DEFAULT_SWAP_COOLDOWN,
        counters: CounterSet | None = None,
    ) -> None:
        if swap_threshold < 1:
            raise ValueError("swap threshold must be >= 1")
        if swap_cooldown < 0:
            raise ValueError("swap cooldown must be >= 0")
        super().__init__(config, counters)
        self.swap_threshold = swap_threshold
        self.swap_cooldown = swap_cooldown
        self.geometry = SegmentGeometry.from_config(config)
        self._groups: Dict[int, GroupState] = {}

    # ------------------------------------------------------------------

    def group_state(self, group: int) -> GroupState:
        state = self._groups.get(group)
        if state is None:
            state = GroupState(
                size=self.geometry.segments_per_group, mode=Mode.POM
            )
            self._groups[group] = state
        return state

    def _device_location(
        self, group: int, slot: int, offset: int
    ) -> tuple[bool, int]:
        return self.geometry.slot_device_address(group, slot, offset)

    # ------------------------------------------------------------------

    def access(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> AccessResult:
        segment = self.geometry.segment_of(address)
        group, local = self.geometry.group_and_local(segment)
        offset = address % self.geometry.segment_bytes
        state = self.group_state(group)

        slot = state.slot_of[local]
        in_fast, device_address = self._device_location(group, slot, offset)
        latency = self.memory.access(
            in_fast, device_address, now_ns, is_write, segment_id=segment
        )
        if not in_fast:
            self._update_counter(group, state, local, now_ns)
        result = AccessResult(latency_ns=latency, fast_hit=in_fast)
        self.record_access_outcome(result)
        return result

    def _update_counter(
        self, group: int, state: GroupState, local: int, now_ns: float
    ) -> None:
        """Shared competing counter (majority-element style)."""
        if state.cooldown > 0:
            state.cooldown -= 1
            return
        if state.candidate == local:
            state.count += 1
        else:
            state.count -= 1
            if state.count <= 0:
                state.candidate = local
                state.count = 1
        if state.candidate == local and state.count >= self.swap_threshold:
            self._swap_with_fast(group, state, local, now_ns)
            state.candidate = None
            state.count = 0
            state.cooldown = self.swap_cooldown

    def _swap_with_fast(
        self,
        group: int,
        state: GroupState,
        local: int,
        now_ns: float,
        reason: str = "counter",
    ) -> None:
        """Swap ``local`` (off-chip) with the stacked-slot resident."""
        slot = state.slot_of[local]
        if slot == 0:
            return
        _, fast_address = self._device_location(group, 0, 0)
        _, slow_address = self._device_location(group, slot, 0)
        fast_resident = state.resident_of_fast()
        self.memory.start_swap(
            fast_address=fast_address,
            slow_address=slow_address,
            now_ns=now_ns,
            fast_segment_id=self.geometry.segment_at(group, fast_resident),
            slow_segment_id=self.geometry.segment_at(group, local),
        )
        state.swap_slots(0, slot)
        self.counters.add("pom.swaps")
        bus = self.telemetry
        if bus.enabled:
            bus.emit(
                SegmentSwap(
                    time_ns=now_ns,
                    group=group,
                    moved_local=local,
                    displaced_local=fast_resident,
                    reason=reason,
                )
            )
