"""Hardware-managed Part of Memory (Sim et al., MICRO 2014).

The paper's baseline: both memories are OS-visible, 2KB segments are
remapped within segment groups via the SRT, and a per-group *shared
competing counter* decides when a frequently accessed off-chip segment
should swap with the group's stacked-DRAM resident.  Swaps move whole
segments in both directions (the fast-swap local buffers service
in-transit accesses) and are issued regardless of whether the data is
allocated — PoM is free-space agnostic, which is precisely the waste
Chameleon removes.
"""

from __future__ import annotations

from typing import Dict

from repro.config import SystemConfig
from repro.arch.base import MemoryArchitecture
from repro.arch.remap import GroupState, Mode, SegmentGeometry
from repro.stats import CounterSet
from repro.telemetry.events import SegmentSwap

#: Default minimum number of competing-counter wins before a swap
#: (Section III-E: PoM gates swaps behind an access-count threshold).
DEFAULT_SWAP_THRESHOLD = 4

#: Group accesses after a swap during which the counter may not trigger
#: another swap in the same group — the trace-level analogue of the PoM
#: baseline's epoch-gated remapping decisions.
DEFAULT_SWAP_COOLDOWN = 64


class PoMArchitecture(MemoryArchitecture):
    """PoM with segment-restricted remapping and competing counters."""

    name = "pom"

    def __init__(
        self,
        config: SystemConfig,
        swap_threshold: int = DEFAULT_SWAP_THRESHOLD,
        swap_cooldown: int = DEFAULT_SWAP_COOLDOWN,
        counters: CounterSet | None = None,
    ) -> None:
        if swap_threshold < 1:
            raise ValueError("swap threshold must be >= 1")
        if swap_cooldown < 0:
            raise ValueError("swap cooldown must be >= 0")
        super().__init__(config, counters)
        self.swap_threshold = swap_threshold
        self.swap_cooldown = swap_cooldown
        self.geometry = SegmentGeometry.from_config(config)
        self._groups: Dict[int, GroupState] = {}
        # Hot-path constants mirroring the geometry (attribute chains
        # through the frozen dataclass dominated the demand path).
        self._segment_bytes = self.geometry.segment_bytes
        self._num_fast = self.geometry.num_fast_segments
        self._total_segments = self.geometry.total_segments

    # ------------------------------------------------------------------

    def group_state(self, group: int) -> GroupState:
        state = self._groups.get(group)
        if state is None:
            state = GroupState(
                size=self.geometry.segments_per_group, mode=Mode.POM
            )
            self._groups[group] = state
        return state

    def _device_location(
        self, group: int, slot: int, offset: int
    ) -> tuple[bool, int]:
        return self.geometry.slot_device_address(group, slot, offset)

    def _translate(self, address: int) -> tuple[int, int, int, int]:
        """(segment, group, local, offset) of an OS address.

        Inlined form of ``geometry.segment_of`` + ``group_and_local`` +
        the offset modulo — one integer ``divmod`` and pure arithmetic,
        bit-identical to the :class:`SegmentGeometry` methods.
        """
        segment, offset = divmod(address, self._segment_bytes)
        if not 0 <= segment < self._total_segments:
            raise ValueError(f"address {address:#x} outside OS memory")
        num_fast = self._num_fast
        if segment < num_fast:
            return segment, segment, 0, offset
        rel = segment - num_fast
        return segment, rel % num_fast, 1 + rel // num_fast, offset

    # ------------------------------------------------------------------

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        # Monolithic demand path: ``_translate`` + ``_pom_timing``
        # inlined (same arithmetic, same order).  The helpers remain
        # the reference form and serve the Chameleon-family subclasses,
        # which translate once and then dispatch by group mode.
        segment_bytes = self._segment_bytes
        segment, offset = divmod(address, segment_bytes)
        if not 0 <= segment < self._total_segments:
            raise ValueError(f"address {address:#x} outside OS memory")
        num_fast = self._num_fast
        if segment < num_fast:
            group = segment
            local = 0
        else:
            rel = segment - num_fast
            group = rel % num_fast
            local = 1 + rel // num_fast
        state = self._groups.get(group)
        if state is None:
            state = self.group_state(group)
        slot = state.slot_of[local]
        if slot == 0:
            latency = self.memory.access(
                True,
                group * segment_bytes + offset,
                now_ns,
                is_write,
                segment_id=segment,
            )
            return latency, True
        latency = self.memory.access(
            False,
            ((slot - 1) * num_fast + group) * segment_bytes + offset,
            now_ns,
            is_write,
            segment_id=segment,
        )
        self._update_counter(group, state, local, now_ns)
        return latency, False

    def _pom_timing(
        self,
        segment: int,
        group: int,
        local: int,
        offset: int,
        state: GroupState,
        now_ns: float,
        is_write: bool,
    ) -> tuple[float, bool]:
        """PoM-mode demand service once the translation is in hand
        (shared with :class:`~repro.core.ChameleonArchitecture`'s
        dispatch, which translates exactly once per access)."""
        slot = state.slot_of[local]
        # Inlined ``slot_device_address`` (slot 0 is the stacked slot).
        if slot == 0:
            in_fast = True
            device_address = group * self._segment_bytes + offset
        else:
            in_fast = False
            device_address = (
                (slot - 1) * self._num_fast + group
            ) * self._segment_bytes + offset
        latency = self.memory.access(
            in_fast, device_address, now_ns, is_write, segment_id=segment
        )
        if not in_fast:
            self._update_counter(group, state, local, now_ns)
        return latency, in_fast

    def _update_counter(
        self, group: int, state: GroupState, local: int, now_ns: float
    ) -> None:
        """Shared competing counter (majority-element style)."""
        if state.cooldown > 0:
            state.cooldown -= 1
            return
        if state.candidate == local:
            state.count += 1
        else:
            state.count -= 1
            if state.count <= 0:
                state.candidate = local
                state.count = 1
        if state.candidate == local and state.count >= self.swap_threshold:
            self._swap_with_fast(group, state, local, now_ns)
            state.candidate = None
            state.count = 0
            state.cooldown = self.swap_cooldown

    def _swap_with_fast(
        self,
        group: int,
        state: GroupState,
        local: int,
        now_ns: float,
        reason: str = "counter",
    ) -> None:
        """Swap ``local`` (off-chip) with the stacked-slot resident."""
        slot = state.slot_of[local]
        if slot == 0:
            return
        _, fast_address = self._device_location(group, 0, 0)
        _, slow_address = self._device_location(group, slot, 0)
        fast_resident = state.resident_of_fast()
        self.memory.start_swap(
            fast_address=fast_address,
            slow_address=slow_address,
            now_ns=now_ns,
            fast_segment_id=self.geometry.segment_at(group, fast_resident),
            slow_segment_id=self.geometry.segment_at(group, local),
        )
        state.swap_slots(0, slot)
        self.counters.add("pom.swaps")
        bus = self.telemetry
        if bus.enabled:
            bus.emit(
                SegmentSwap(
                    time_ns=now_ns,
                    group=group,
                    moved_local=local,
                    displaced_local=fast_resident,
                    reason=reason,
                )
            )
