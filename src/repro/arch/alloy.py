"""Alloy Cache: the latency-optimised DRAM cache baseline.

Qureshi & Loh (MICRO 2012): the stacked DRAM is a *direct-mapped* cache
with 64B lines where tag and data are fused into one burst (TAD), so a
hit costs a single stacked access and a miss costs the stacked probe
plus the off-chip access plus the fill.  Because the cache duplicates
data, the OS sees only the off-chip capacity — the capacity loss that
makes Alloy page-fault on high-footprint workloads (Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import CACHELINE_BYTES, SystemConfig
from repro.arch.base import MemoryArchitecture
from repro.stats import CounterSet


@dataclass
class _TadEntry:
    tag: int
    dirty: bool = False


class AlloyCache(MemoryArchitecture):
    """Direct-mapped, 64B-line, latency-optimised stacked-DRAM cache."""

    name = "alloy"

    def __init__(self, config: SystemConfig, counters: CounterSet | None = None):
        super().__init__(config, counters)
        self._num_sets = config.fast_mem.capacity_bytes // CACHELINE_BYTES
        if self._num_sets <= 0:
            raise ValueError("stacked DRAM too small for a single line")
        # Sparse tag store: set index -> TAD entry.  Only touched sets
        # are materialised, keeping full-scale configs cheap.
        self._tads: Dict[int, _TadEntry] = {}

    # ------------------------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // CACHELINE_BYTES
        return line % self._num_sets, line // self._num_sets

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        if not 0 <= address < self.config.slow_mem.capacity_bytes:
            raise ValueError(
                f"address {address:#x} outside OS-visible (off-chip) memory"
            )
        set_index, tag = self._locate(address)
        entry = self._tads.get(set_index)
        cache_address = set_index * CACHELINE_BYTES

        if entry is not None and entry.tag == tag:
            # TAD hit: one stacked burst returns tag+data.
            latency = self.memory.fast.access(cache_address, now_ns, is_write)
            if is_write:
                entry.dirty = True
            self.counters.add("alloy.hits")
            return latency, True

        # Miss: probe the TAD, then fetch from off-chip memory.  The
        # probe and the off-chip fetch are launched together (Alloy's
        # MAP-I style parallel probe), so the miss latency is their max.
        probe_ns = self.memory.fast.access(cache_address, now_ns, False)
        mem_ns = self.memory.slow.access(address, now_ns, is_write)
        latency = max(probe_ns, mem_ns)
        self.counters.add("alloy.misses")

        # Victim writeback (dirty direct-mapped eviction) — issued
        # immediately, off the critical path.
        if entry is not None and entry.dirty:
            victim_address = entry.tag * self._num_sets * CACHELINE_BYTES + (
                set_index * CACHELINE_BYTES
            )
            self.memory.slow.access(victim_address, now_ns, True)
            self.counters.add("alloy.writebacks")

        # Fill the line (consumes stacked bandwidth, off the critical path).
        self.memory.fast.access(cache_address, now_ns, True)
        self._tads[set_index] = _TadEntry(tag=tag, dirty=is_write)
        self.counters.add("alloy.fills")
        return latency, False

    @property
    def os_visible_bytes(self) -> int:
        """Caches sacrifice the stacked capacity (Section III-D)."""
        return self.config.slow_mem.capacity_bytes

    @property
    def cache_hit_rate(self) -> float:
        return self.counters.ratio("alloy.hits", "arch.accesses")
