"""KNL-style statically partitioned hybrid memory (Section II-C3).

Knights Landing's MC-DRAM supports boot-time modes: 100% cache, 100%
OS-visible flat memory, or static hybrids with 25% or 50% of the
stacked DRAM operating as cache and the rest as memory.  The partition
is fixed until reboot — exactly the rigidity Chameleon's dynamic
per-segment-group reconfiguration removes.

:class:`StaticHybridMemory` models one such boot configuration: the
cache share of the stacked DRAM is a direct-mapped 64B-line cache over
the OS-visible space (like Alloy), the remaining share is OS-visible
fast memory appended below the off-chip range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import CACHELINE_BYTES, SystemConfig
from repro.arch.base import MemoryArchitecture
from repro.stats import CounterSet


@dataclass
class _TadEntry:
    tag: int
    dirty: bool = False


class StaticHybridMemory(MemoryArchitecture):
    """A boot-time split of the stacked DRAM into cache + flat memory."""

    def __init__(
        self,
        config: SystemConfig,
        cache_fraction: float = 0.5,
        counters: CounterSet | None = None,
    ) -> None:
        if not 0.0 <= cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in [0, 1]")
        super().__init__(config, counters)
        self.cache_fraction = cache_fraction
        fast = config.fast_mem.capacity_bytes
        # The cache partition occupies the low stacked addresses.
        self._cache_bytes = (
            int(fast * cache_fraction) // CACHELINE_BYTES * CACHELINE_BYTES
        )
        self._flat_fast_bytes = fast - self._cache_bytes
        self._num_sets = self._cache_bytes // CACHELINE_BYTES
        self._tads: Dict[int, _TadEntry] = {}
        self.name = f"knl_hybrid_{int(round(cache_fraction * 100))}"

    # ------------------------------------------------------------------

    @property
    def os_visible_bytes(self) -> int:
        """The memory partition of the stacked DRAM plus the off-chip."""
        return self._flat_fast_bytes + self.config.slow_mem.capacity_bytes

    # ------------------------------------------------------------------

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        if not 0 <= address < self.os_visible_bytes:
            raise ValueError(
                f"address {address:#x} outside OS-visible memory"
            )
        if address < self._flat_fast_bytes:
            # Static fast partition: always a stacked hit, never cached.
            device_address = self._cache_bytes + address
            latency = self.memory.fast.access(device_address, now_ns, is_write)
            return latency, True

        slow_address = address - self._flat_fast_bytes
        if self._num_sets == 0:
            latency = self.memory.slow.access(slow_address, now_ns, is_write)
            return latency, False

        line = address // CACHELINE_BYTES
        set_index = line % self._num_sets
        tag = line // self._num_sets
        cache_address = set_index * CACHELINE_BYTES
        entry = self._tads.get(set_index)

        if entry is not None and entry.tag == tag:
            latency = self.memory.fast.access(cache_address, now_ns, is_write)
            if is_write:
                entry.dirty = True
            self.counters.add("knl.cache_hits")
            return latency, True

        probe_ns = self.memory.fast.access(cache_address, now_ns, False)
        mem_ns = self.memory.slow.access(slow_address, now_ns, is_write)
        latency = max(probe_ns, mem_ns)
        self.counters.add("knl.cache_misses")
        if entry is not None and entry.dirty:
            victim_line = entry.tag * self._num_sets + set_index
            victim_address = victim_line * CACHELINE_BYTES
            if victim_address >= self._flat_fast_bytes:
                self.memory.slow.access(
                    victim_address - self._flat_fast_bytes, now_ns, True
                )
            self.counters.add("knl.writebacks")
        self.memory.fast.access(cache_address, now_ns, True)
        self._tads[set_index] = _TadEntry(tag=tag, dirty=is_write)
        return latency, False

    # ------------------------------------------------------------------

    @property
    def cache_bytes(self) -> int:
        return self._cache_bytes

    @property
    def flat_fast_bytes(self) -> int:
        return self._flat_fast_bytes
