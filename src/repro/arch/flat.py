"""Flat DDR-only baselines (Figure 18's two reference systems)."""

from __future__ import annotations

from repro.config import GB, SystemConfig, offchip_dram
from repro.arch.base import MemoryArchitecture
from repro.dram.device import DramDevice
from repro.stats import CounterSet


class FlatMemory(MemoryArchitecture):
    """A homogeneous off-chip DRAM of a given capacity.

    The paper's ``baseline_20GB_DDR3`` and ``baseline_24GB_DDR3``: no
    stacked DRAM at all, every access pays the slow-memory timing, and
    the OS-visible capacity equals the DRAM capacity (so the 20GB
    variant page-faults on high-footprint workloads while the 24GB one
    does not).
    """

    def __init__(
        self,
        config: SystemConfig,
        capacity_bytes: int | None = None,
        counters: CounterSet | None = None,
    ) -> None:
        capacity = (
            capacity_bytes
            if capacity_bytes is not None
            else config.total_capacity_bytes
        )
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self.name = f"flat_{capacity // GB}GB" if capacity % GB == 0 else "flat"
        super().__init__(config, counters)
        # One big off-chip device with the requested capacity.
        self._device = DramDevice(
            offchip_dram(capacity),
            self.counters,
        )

    def access_timing(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> tuple[float, bool]:
        if not 0 <= address < self._capacity:
            raise ValueError(f"address {address:#x} outside flat memory")
        return self._device.access(address, now_ns, is_write), False

    def _batch_devices(self) -> tuple:
        # The flat baseline bypasses the heterogeneous pair and owns a
        # single device.
        return (self._device,)

    @property
    def os_visible_bytes(self) -> int:
        return self._capacity
