"""Heterogeneous memory architectures evaluated in the paper.

Every design implements :class:`repro.arch.base.MemoryArchitecture`:

* :class:`repro.arch.flat.FlatMemory` — the DDR-only 20GB / 24GB
  baselines of Figure 18;
* :class:`repro.arch.alloy.AlloyCache` — the latency-optimised
  direct-mapped 64B stacked-DRAM cache (Qureshi & Loh, MICRO 2012);
* :class:`repro.arch.pom.PoMArchitecture` — hardware-managed Part of
  Memory with 2KB segments, segment-restricted remapping and a shared
  competing counter (Sim et al., MICRO 2014) — the paper's baseline;
* :class:`repro.arch.cameo.CameoArchitecture` — CAMEO-style 64B
  congruence groups (Chou et al., MICRO 2014);
* :class:`repro.arch.polymorphic.PolymorphicMemory` — the Chung et al.
  patent: stacked free space used as cache, no hot-segment swapping
  (Figure 22's comparison point);
* :class:`repro.arch.static_hybrid.StaticHybridMemory` — KNL-style
  boot-time cache/memory partitioning of the stacked DRAM
  (Section II-C3's statically reconfigurable hybrid).

Chameleon and Chameleon-Opt, the paper's contribution, live in
:mod:`repro.core` and share the remap machinery in
:mod:`repro.arch.remap`.
"""

from repro.arch.base import AccessResult, MemoryArchitecture
from repro.arch.remap import GroupState, Mode, SegmentGeometry
from repro.arch.flat import FlatMemory
from repro.arch.alloy import AlloyCache
from repro.arch.pom import PoMArchitecture
from repro.arch.cameo import CameoArchitecture
from repro.arch.polymorphic import PolymorphicMemory
from repro.arch.static_hybrid import StaticHybridMemory

__all__ = [
    "AccessResult",
    "MemoryArchitecture",
    "GroupState",
    "Mode",
    "SegmentGeometry",
    "FlatMemory",
    "AlloyCache",
    "PoMArchitecture",
    "CameoArchitecture",
    "PolymorphicMemory",
    "StaticHybridMemory",
]
