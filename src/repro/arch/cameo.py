"""CAMEO: fine-grain (64B) congruence-group remapping.

Chou, Jaleel & Qureshi (MICRO 2014): like PoM, both memories are
OS-visible, but the remap granularity is a single cache line and an
accessed off-chip line is *always* migrated into the stacked slot of
its congruence group (no access-count threshold) — trading metadata
overhead and extra data movement for adaptivity.  Discussed by the
paper (Sections II-C2, V, VII) as the other end of the segment-size
trade-off; implemented here both for completeness and for the
segment-size ablation benchmark.
"""

from __future__ import annotations

from repro.config import CACHELINE_BYTES, SystemConfig
from repro.arch.pom import PoMArchitecture
from repro.stats import CounterSet


class CameoArchitecture(PoMArchitecture):
    """PoM machinery at 64B granularity with swap-on-every-miss."""

    name = "cameo"

    def __init__(self, config: SystemConfig, counters: CounterSet | None = None):
        cameo_config = config.with_segment_bytes(CACHELINE_BYTES)
        # Threshold 1: the accessed line migrates to the stacked slot
        # immediately, CAMEO's line-location-table behaviour.
        super().__init__(cameo_config, swap_threshold=1, counters=counters)

    @property
    def metadata_entries(self) -> int:
        """LLT entries required — the overhead CAMEO trades for
        adaptivity (32768x more ISA traffic per 2MB THP, Section IV)."""
        return self.geometry.num_groups
