"""Linux buffer/page-cache interplay with the ISA hooks (Section V-D3).

Linux uses otherwise-free memory as a cache for secondary storage.  The
paper's point: since buffer-cache pages are allocated and freed through
the same allocator paths as anonymous memory, their ISA-Alloc/ISA-Free
events reach the Chameleon hardware like any others — so Chameleon
never "steals" buffer-cache space for its hardware cache (the two
caches compete only through the normal allocator), and reclaiming
buffer pages under memory pressure automatically returns their segment
groups to the hardware's cache-mode pool.

This module models that machinery:

* :class:`BufferCache` — an LRU file-page cache that grows
  opportunistically into free memory and shrinks under allocator
  pressure (the Linux ``drop-behind``/reclaim behaviour);
* file reads populate it (allocating pages through the provided
  allocator, which fires ISA-Alloc via the dispatcher);
* reclaim evicts clean pages first, writes dirty ones back, and frees
  them (firing ISA-Free).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import PAGE_BYTES
from repro.osmodel.buddy import OutOfMemoryError
from repro.stats import CounterSet


@dataclass
class _CachedPage:
    physical: int
    dirty: bool = False


class BufferCache:
    """An LRU page cache for file blocks over the OS page allocator."""

    def __init__(
        self,
        allocate_page: Callable[[], int],
        free_page: Callable[[int], None],
        max_pages: int | None = None,
        counters: CounterSet | None = None,
    ) -> None:
        """``allocate_page`` returns a physical page address (raising
        :class:`OutOfMemoryError` when none is free); ``free_page``
        returns one.  Both are expected to fire the ISA hooks the same
        way anonymous allocations do (Algorithms 1-2).  ``max_pages``
        optionally caps the cache (vm.pagecache-limit style); by
        default it grows into whatever the allocator can supply."""
        if max_pages is not None and max_pages < 1:
            raise ValueError("max_pages must be positive when set")
        self._allocate = allocate_page
        self._free = free_page
        self.max_pages = max_pages
        self.counters = counters if counters is not None else CounterSet()
        self._pages: "OrderedDict[int, _CachedPage]" = OrderedDict()

    # ------------------------------------------------------------------
    # File I/O path
    # ------------------------------------------------------------------

    def read(self, file_block: int) -> bool:
        """Read one file block; returns True on a buffer-cache hit."""
        page = self._pages.get(file_block)
        if page is not None:
            self._pages.move_to_end(file_block)
            self.counters.add("buffercache.hits")
            return True
        self.counters.add("buffercache.misses")
        if self.max_pages is not None and len(self._pages) >= self.max_pages:
            self.evict(len(self._pages) - self.max_pages + 1)
        physical = self._allocate_with_reclaim()
        if physical is None:
            # No memory at all: the read bypasses the cache entirely.
            self.counters.add("buffercache.bypasses")
            return False
        self._pages[file_block] = _CachedPage(physical=physical)
        return False

    def write(self, file_block: int) -> bool:
        """Write one file block (write-back); returns True on a hit."""
        hit = self.read(file_block)
        page = self._pages.get(file_block)
        if page is not None:
            page.dirty = True
        return hit

    def _allocate_with_reclaim(self) -> Optional[int]:
        try:
            return self._allocate()
        except OutOfMemoryError:
            if not self.evict(1):
                return None
            try:
                return self._allocate()
            except OutOfMemoryError:
                return None

    # ------------------------------------------------------------------
    # Reclaim path (memory pressure from anonymous allocations)
    # ------------------------------------------------------------------

    def evict(self, pages: int) -> int:
        """Reclaim up to ``pages`` cached pages (LRU-first, clean pages
        preferred); returns how many were freed."""
        if pages <= 0:
            return 0
        freed = 0
        # Pass 1: clean pages in LRU order.
        for block in [
            b for b, p in self._pages.items() if not p.dirty
        ]:
            if freed >= pages:
                break
            self._release(block)
            freed += 1
        # Pass 2: dirty pages need a writeback first.
        while freed < pages and self._pages:
            block, page = next(iter(self._pages.items()))
            if page.dirty:
                self.counters.add("buffercache.writebacks")
            self._release(block)
            freed += 1
        return freed

    def drop_all(self) -> int:
        """`echo 3 > drop_caches`: release everything."""
        return self.evict(len(self._pages))

    def _release(self, file_block: int) -> None:
        page = self._pages.pop(file_block)
        self._free(page.physical)
        self.counters.add("buffercache.reclaimed")

    # ------------------------------------------------------------------

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    @property
    def cached_bytes(self) -> int:
        return len(self._pages) * PAGE_BYTES

    @property
    def hit_rate(self) -> float:
        hits = self.counters["buffercache.hits"]
        total = hits + self.counters["buffercache.misses"]
        return hits / total if total else 0.0
