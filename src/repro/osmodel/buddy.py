"""Buddy physical-page allocator.

A faithful functional model of the Linux zoned buddy allocator over one
contiguous physical range: per-order free lists, block splitting on
allocation, buddy coalescing on free.  Allocation order 0 is one 4KB
page; a 2MB THP is order 9.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.config import PAGE_BYTES


class OutOfMemoryError(Exception):
    """No free block large enough (the model's -ENOMEM)."""


class BuddyAllocator:
    """Buddy allocator over ``[base, base + capacity)`` physical bytes."""

    def __init__(
        self,
        capacity_bytes: int,
        base: int = 0,
        page_bytes: int = PAGE_BYTES,
    ) -> None:
        if capacity_bytes <= 0 or capacity_bytes % page_bytes:
            raise ValueError("capacity must be a positive multiple of the page size")
        if base % page_bytes:
            raise ValueError("base must be page aligned")
        self.page_bytes = page_bytes
        self.base = base
        self.capacity_bytes = capacity_bytes
        self.num_pages = capacity_bytes // page_bytes
        self.max_order = self.num_pages.bit_length() - 1
        self._free: Dict[int, Set[int]] = {
            order: set() for order in range(self.max_order + 1)
        }
        self._allocated: Dict[int, int] = {}  # page index -> order
        self._free_pages = 0
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        """Carve the capacity into maximal power-of-two blocks."""
        page = 0
        remaining = self.num_pages
        while remaining:
            order = min(remaining.bit_length() - 1, self.max_order)
            # The block must also be naturally aligned to its order.
            while order and page % (1 << order):
                order -= 1
            self._free[order].add(page)
            page += 1 << order
            remaining -= 1 << order
            self._free_pages += 1 << order

    # ------------------------------------------------------------------
    # Allocation / free
    # ------------------------------------------------------------------

    def alloc(self, order: int = 0) -> int:
        """Allocate a block of ``2**order`` pages; returns its address."""
        if not 0 <= order <= self.max_order:
            raise ValueError(f"order {order} out of range 0..{self.max_order}")
        current = order
        while current <= self.max_order and not self._free[current]:
            current += 1
        if current > self.max_order:
            raise OutOfMemoryError(
                f"no free block of order {order} "
                f"({self.free_bytes} bytes free, fragmented)"
            )
        page = min(self._free[current])
        self._free[current].remove(page)
        while current > order:
            current -= 1
            buddy = page + (1 << current)
            self._free[current].add(buddy)
        self._allocated[page] = order
        self._free_pages -= 1 << order
        return self.base + page * self.page_bytes

    def alloc_bytes(self, num_bytes: int) -> List[int]:
        """Allocate ``num_bytes`` as a list of page-sized blocks."""
        if num_bytes <= 0:
            raise ValueError("num_bytes must be positive")
        pages = -(-num_bytes // self.page_bytes)
        if pages > self._free_pages:
            raise OutOfMemoryError(
                f"requested {pages} pages, only {self._free_pages} free"
            )
        return [self.alloc(0) for _ in range(pages)]

    def free(self, address: int) -> None:
        """Free a previously allocated block, coalescing with buddies."""
        page = self._page_index(address)
        order = self._allocated.pop(page, None)
        if order is None:
            raise ValueError(f"address {address:#x} is not allocated")
        self._free_pages += 1 << order
        while order < self.max_order:
            buddy = page ^ (1 << order)
            if buddy not in self._free[order]:
                break
            self._free[order].remove(buddy)
            page = min(page, buddy)
            order += 1
        self._free[order].add(page)

    def _page_index(self, address: int) -> int:
        offset = address - self.base
        if offset < 0 or offset >= self.capacity_bytes:
            raise ValueError(f"address {address:#x} outside allocator range")
        if offset % self.page_bytes:
            raise ValueError(f"address {address:#x} is not page aligned")
        return offset // self.page_bytes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return self._free_pages

    @property
    def free_bytes(self) -> int:
        return self._free_pages * self.page_bytes

    @property
    def allocated_bytes(self) -> int:
        return self.capacity_bytes - self.free_bytes

    def is_allocated(self, address: int) -> bool:
        """Whether the page containing ``address`` is allocated."""
        offset = address - self.base
        if offset < 0 or offset >= self.capacity_bytes:
            return False
        page = offset // self.page_bytes
        # Walk down: a page is allocated iff some allocated block covers it.
        for start, order in self._allocated.items():
            if start <= page < start + (1 << order):
                return True
        return False

    def largest_free_order(self) -> int:
        """Largest order with a free block (-1 when memory is exhausted)."""
        for order in range(self.max_order, -1, -1):
            if self._free[order]:
                return order
        return -1

    def check_invariants(self) -> None:
        """Internal consistency check used by property tests."""
        counted = sum(
            len(blocks) << order for order, blocks in self._free.items()
        )
        if counted != self._free_pages:
            raise AssertionError("free page accounting diverged")
        spans: List[tuple[int, int]] = []
        for order, blocks in self._free.items():
            for start in blocks:
                if start % (1 << order):
                    raise AssertionError("misaligned free block")
                spans.append((start, start + (1 << order)))
        for start, order in self._allocated.items():
            spans.append((start, start + (1 << order)))
        spans.sort()
        cursor = 0
        for lo, hi in spans:
            if lo != cursor:
                raise AssertionError(f"gap or overlap at page {cursor}")
            cursor = hi
        if cursor != self.num_pages:
            raise AssertionError("blocks do not tile the whole range")
