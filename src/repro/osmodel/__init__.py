"""Operating-system model.

The paper's co-design hinges on the OS side: the Linux buddy allocator's
``alloc_pages`` / ``free_one_page`` routines are instrumented to issue
ISA-Alloc / ISA-Free for every hardware segment covered by the page
(Algorithms 1 and 2).  This package reproduces that substrate:

* :mod:`repro.osmodel.buddy` — a buddy physical-page allocator with
  per-order free lists and coalescing;
* :mod:`repro.osmodel.hooks` — the Algorithm 1/2 instrumentation layer
  that fans page allocations out into per-segment ISA calls;
* :mod:`repro.osmodel.vm` — per-process address spaces, first-touch
  mapping, 4KB pages and 2MB transparent huge pages, and the SSD-backed
  page-fault engine;
* :mod:`repro.osmodel.numa` — the NUMA-aware first-touch allocator over
  a fast node and a slow node (Section II-B1 / III-A1);
* :mod:`repro.osmodel.autonuma` — Linux AutoNUMA balancing with scan
  epochs, migration thresholds and the -ENOMEM capacity failure
  (Section II-B2 / III-A2);
* :mod:`repro.osmodel.longrun` — the multi-day workload-sequence model
  behind Figures 3, 4 and 5.
"""

from repro.osmodel.buddy import BuddyAllocator, OutOfMemoryError
from repro.osmodel.hooks import IsaNotifier, NullNotifier, PageHookDispatcher
from repro.osmodel.vm import AddressSpace, PageFaultEngine, VirtualMemory
from repro.osmodel.numa import FirstTouchAllocator, NumaNode
from repro.osmodel.autonuma import AutoNumaBalancer, AutoNumaConfig
from repro.osmodel.longrun import (
    LongRunSimulator,
    WorkloadPhase,
    WorkloadSpec,
)
from repro.osmodel.buffer_cache import BufferCache
from repro.osmodel.jobsched import Job, JobRecord, MemoryBoundScheduler, QueueReport

__all__ = [
    "BuddyAllocator",
    "OutOfMemoryError",
    "IsaNotifier",
    "NullNotifier",
    "PageHookDispatcher",
    "AddressSpace",
    "PageFaultEngine",
    "VirtualMemory",
    "FirstTouchAllocator",
    "NumaNode",
    "AutoNumaBalancer",
    "AutoNumaConfig",
    "LongRunSimulator",
    "WorkloadPhase",
    "WorkloadSpec",
    "BufferCache",
    "Job",
    "JobRecord",
    "MemoryBoundScheduler",
    "QueueReport",
]
