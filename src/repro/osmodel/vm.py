"""Virtual memory: address spaces, first-touch mapping, page faults.

Two concerns live here:

* :class:`AddressSpace` / :class:`VirtualMemory` — per-process virtual to
  physical mapping, allocated on first touch from a physical allocator,
  with 4KB base pages and optional 2MB transparent huge pages, wired to
  the ISA hook dispatcher (Algorithms 1-2);
* :class:`PageFaultEngine` — the DRAM<->SSD paging path for workloads
  whose footprint exceeds the OS-visible capacity, with an exact-LRU
  resident set and the Table I fault cost (100K cycles).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.config import PAGE_BYTES, PAGE_FAULT_LATENCY_CYCLES, THP_BYTES
from repro.osmodel.buddy import OutOfMemoryError
from repro.osmodel.hooks import PageHookDispatcher
from repro.stats import CounterSet
from repro.telemetry.bus import NULL_BUS, EventBus, NullBus
from repro.telemetry.events import PageFaultEvent


@dataclass
class Mapping:
    """One virtual->physical mapping."""

    virtual: int
    physical: int
    size: int


class AddressSpace:
    """One process's page table."""

    def __init__(self, pid: int, page_bytes: int = PAGE_BYTES) -> None:
        self.pid = pid
        self.page_bytes = page_bytes
        self._mappings: Dict[int, Mapping] = {}  # vpage -> Mapping
        # One-entry translation cache: consecutive accesses to the same
        # virtual page (the common case in the scalar replay loop) skip
        # the mapping lookup.  Only positive lookups are cached, so new
        # mappings become visible without invalidation; unmap drops it.
        self._cached_vpage = -1
        self._cached_mapping: Optional[Mapping] = None

    def translate(self, vaddr: int) -> Optional[int]:
        """Physical address for ``vaddr``, or None when unmapped."""
        vpage = vaddr // self.page_bytes
        if vpage == self._cached_vpage:
            mapping = self._cached_mapping
            assert mapping is not None
        else:
            mapping = self._mappings.get(vpage)
            if mapping is None:
                return None
            self._cached_vpage = vpage
            self._cached_mapping = mapping
        return mapping.physical + (vaddr - mapping.virtual)

    def map(self, vaddr: int, paddr: int, size: int) -> None:
        if size % self.page_bytes:
            raise ValueError("mapping size must be page aligned")
        first = vaddr // self.page_bytes
        for index in range(size // self.page_bytes):
            vpage = first + index
            if vpage in self._mappings:
                raise ValueError(f"vpage {vpage:#x} already mapped")
            self._mappings[vpage] = Mapping(
                virtual=first * self.page_bytes,
                physical=paddr,
                size=size,
            )

    def unmap(self, vaddr: int) -> Mapping:
        vpage = vaddr // self.page_bytes
        mapping = self._mappings.get(vpage)
        if mapping is None:
            raise KeyError(f"vaddr {vaddr:#x} not mapped")
        first = mapping.virtual // self.page_bytes
        for index in range(mapping.size // self.page_bytes):
            del self._mappings[first + index]
        self._cached_vpage = -1
        self._cached_mapping = None
        return mapping

    def mapped_bytes(self) -> int:
        return len(self._mappings) * self.page_bytes

    def mappings(self):
        """Distinct mappings (one per allocation, not per page)."""
        seen: Dict[int, Mapping] = {}
        for mapping in self._mappings.values():
            seen[mapping.virtual] = mapping
        return list(seen.values())


class VirtualMemory:
    """First-touch virtual memory over a physical allocator.

    ``allocate_backing`` is a callable so NUMA policies (first-touch on
    the fast node, AutoNUMA, Chameleon's plain buddy) can plug in their
    placement decision; it receives the allocation size and returns a
    physical address.
    """

    def __init__(
        self,
        allocate_backing: Callable[[int], int],
        free_backing: Callable[[int], None],
        dispatcher: PageHookDispatcher | None = None,
        counters: CounterSet | None = None,
        thp_enabled: bool = True,
    ) -> None:
        self._allocate = allocate_backing
        self._free = free_backing
        self.dispatcher = dispatcher
        self.counters = counters if counters is not None else CounterSet()
        self.thp_enabled = thp_enabled
        self._spaces: Dict[int, AddressSpace] = {}

    def space(self, pid: int) -> AddressSpace:
        if pid not in self._spaces:
            self._spaces[pid] = AddressSpace(pid)
        return self._spaces[pid]

    def touch(self, pid: int, vaddr: int, prefer_thp: bool = False) -> int:
        """Translate, faulting in a new page on first touch."""
        space = self.space(pid)
        paddr = space.translate(vaddr)
        if paddr is not None:
            return paddr
        size = THP_BYTES if (prefer_thp and self.thp_enabled) else PAGE_BYTES
        vbase = vaddr - vaddr % size
        try:
            physical = self._allocate(size)
        except OutOfMemoryError:
            if size == THP_BYTES:
                # THP allocation falls back to base pages, as in Linux.
                size = PAGE_BYTES
                vbase = vaddr - vaddr % size
                physical = self._allocate(size)
            else:
                raise
        space.map(vbase, physical, size)
        self.counters.add("vm.first_touches")
        self.counters.add("vm.mapped_bytes", size)
        if self.dispatcher is not None:
            self.dispatcher.page_allocated(physical, size)
        translated = space.translate(vaddr)
        assert translated is not None
        return translated

    def release(self, pid: int, vaddr: int) -> None:
        """Unmap and free the allocation containing ``vaddr``."""
        space = self.space(pid)
        mapping = space.unmap(vaddr)
        if self.dispatcher is not None:
            self.dispatcher.page_freed(mapping.physical, mapping.size)
        self._free(mapping.physical)
        self.counters.add("vm.releases")

    def release_all(self, pid: int) -> int:
        """Tear down a whole address space; returns bytes released."""
        space = self.space(pid)
        released = 0
        for mapping in space.mappings():
            space.unmap(mapping.virtual)
            if self.dispatcher is not None:
                self.dispatcher.page_freed(mapping.physical, mapping.size)
            self._free(mapping.physical)
            released += mapping.size
        self.counters.add("vm.releases")
        return released


class PageFaultEngine:
    """Exact-LRU resident-set paging model (DRAM <-> SSD).

    Models the effect Figures 4-5 quantify: when the working footprint
    exceeds OS-visible capacity, accesses to non-resident pages fault and
    cost ``fault_latency_cycles`` (Table I: 100K cycles for an SSD).
    """

    def __init__(
        self,
        capacity_bytes: int,
        page_bytes: int = PAGE_BYTES,
        fault_latency_cycles: int = PAGE_FAULT_LATENCY_CYCLES,
        counters: CounterSet | None = None,
        telemetry: EventBus | NullBus | None = None,
    ) -> None:
        if capacity_bytes < page_bytes:
            raise ValueError("capacity must hold at least one page")
        self.page_bytes = page_bytes
        self.capacity_pages = capacity_bytes // page_bytes
        self.fault_latency_cycles = fault_latency_cycles
        self.counters = counters if counters is not None else CounterSet()
        self.telemetry = telemetry if telemetry is not None else NULL_BUS
        self._resident: "OrderedDict[int, int]" = OrderedDict()  # page -> frame
        self._free_frames: list[int] = []
        self._next_frame = 0
        self._swapped_out: set[int] = set()
        # Dense page -> frame mirror of ``_resident`` (-1 when not
        # resident), kept in lock-step by every insert/evict so
        # :meth:`translate_batch` can resolve whole columns with one
        # vectorised lookup.  Grown geometrically on demand.
        self._frame_table = np.full(1024, -1, dtype=np.int64)
        # Bumped on every eviction: a batched kernel holding
        # pre-translated columns must revalidate them when the epoch
        # moves (insertions never invalidate an existing translation,
        # so they do not bump it).
        self._epoch = 0

    def _table_set(self, page: int, frame: int) -> None:
        table = self._frame_table
        if page >= table.shape[0]:
            grown = np.full(
                max(2 * (page + 1), 2 * table.shape[0]), -1, dtype=np.int64
            )
            grown[: table.shape[0]] = table
            self._frame_table = grown
            table = grown
        table[page] = frame

    def access(self, address: int) -> int:
        """Access ``address``; returns the fault cost in cycles (0 on hit)."""
        cycles, _ = self.access_translate(address)
        return cycles

    def prime(self, addresses) -> None:
        """Touch pages in order without charging faults.

        Models the application's allocation phase: the footprint is
        written once front to back, so when it exceeds capacity the
        earliest pages are already swapped out when execution starts.
        """
        for address in addresses:
            page = address // self.page_bytes
            if page in self._resident:
                self._resident.move_to_end(page)
                continue
            if len(self._resident) >= self.capacity_pages:
                victim, freed = self._resident.popitem(last=False)
                self._swapped_out.add(victim)
                self._free_frames.append(freed)
                self._frame_table[victim] = -1
                self._epoch += 1
            if self._free_frames:
                frame = self._free_frames.pop()
            else:
                frame = self._next_frame
                self._next_frame += 1
            self._resident[page] = frame
            self._table_set(page, frame)

    def access_translate(
        self, address: int, now_ns: float = 0.0
    ) -> tuple[int, int]:
        """Access ``address``; returns (fault cycles, physical address).

        Pages are assigned physical frames on fault; the frame of an
        evicted page is recycled, so the physical working set never
        exceeds the configured capacity.  ``now_ns`` only timestamps
        telemetry events; it does not affect the paging decision.
        """
        page, offset = divmod(address, self.page_bytes)
        frame = self._resident.get(page)
        if frame is not None:
            self._resident.move_to_end(page)
            self.counters.add("fault.resident_hits")
            return 0, frame * self.page_bytes + offset
        # Major faults (SSD swap-in, Table I latency) happen when the
        # page was previously swapped out, or when faulting it in evicts
        # another page (allocation under memory pressure).  A first
        # touch with free capacity is a cheap minor fault — Linux wires
        # the page without touching the SSD.
        major = page in self._swapped_out
        if len(self._resident) >= self.capacity_pages:
            victim, freed = self._resident.popitem(last=False)
            self._swapped_out.add(victim)
            self._free_frames.append(freed)
            self.counters.add("fault.evictions")
            self._frame_table[victim] = -1
            self._epoch += 1
            major = True
        if self._free_frames:
            frame = self._free_frames.pop()
        else:
            frame = self._next_frame
            self._next_frame += 1
        self._resident[page] = frame
        self._table_set(page, frame)
        bus = self.telemetry
        if bus.enabled:
            bus.emit(PageFaultEvent(time_ns=now_ns, page=page, major=major))
        if major:
            self.counters.add("fault.page_faults")
            return self.fault_latency_cycles, frame * self.page_bytes + offset
        self.counters.add("fault.minor_faults")
        return 0, frame * self.page_bytes + offset

    # -- vectorised fast path (the batched-paged kernel) ---------------

    def translate_batch(
        self, addresses: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Resolve a column of addresses against the resident set.

        Returns ``(physical, pages, n_resident)``: the translated
        prefix of ``addresses`` up to (excluding) the first lane whose
        page is not resident, the pages of that prefix, and its length.
        ``n_resident == len(addresses)`` means the whole column is
        resident.  Pure lookup — no LRU recency update, no counters, no
        events; the caller replays those effects (see
        :meth:`touch_resident` / :meth:`note_resident_hits`) to stay
        bit-identical with the scalar :meth:`access_translate` path.
        """
        pages = addresses // self.page_bytes
        table = self._frame_table
        frames = np.where(
            pages < table.shape[0],
            table[np.minimum(pages, table.shape[0] - 1)],
            -1,
        )
        missing = np.flatnonzero(frames < 0)
        n_resident = int(missing[0]) if missing.size else len(addresses)
        pages = pages[:n_resident]
        physical = frames[:n_resident] * self.page_bytes + (
            addresses[:n_resident] - pages * self.page_bytes
        )
        return physical, pages, n_resident

    def touch_resident(self, page: int) -> None:
        """Replay one resident access's LRU recency update (the
        ``move_to_end`` that :meth:`access_translate` would have done)."""
        self._resident.move_to_end(page)

    def touch_resident_many(self, pages: Iterable[int]) -> None:
        """Replay a run of deferred LRU touches in the given order
        (bulk :meth:`touch_resident` without per-page call overhead)."""
        move = self._resident.move_to_end
        for page in pages:
            move(page)

    def note_resident_hits(self, count: int) -> None:
        """Bulk-account ``count`` resident hits served off the
        vectorised path (one ``fault.resident_hits`` tick each)."""
        if count:
            self.counters.add("fault.resident_hits", count)

    def is_resident(self, page: int) -> bool:
        return page in self._resident

    def eviction_candidate(self) -> Optional[int]:
        """Page the next fault-driven eviction would swap out — the LRU
        head when the resident set is full, else ``None``."""
        if len(self._resident) < self.capacity_pages:
            return None
        return next(iter(self._resident))

    @property
    def epoch(self) -> int:
        """Eviction counter; see ``_epoch``."""
        return self._epoch

    @property
    def page_faults(self) -> int:
        return int(self.counters["fault.page_faults"])

    @property
    def resident_pages(self) -> int:
        return len(self._resident)
