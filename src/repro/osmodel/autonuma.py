"""Linux Automatic NUMA Balancing (AutoNUMA) model.

Mechanism modelled after Section II-B2 / III-A2: in every
``numa_balancing_scan_period`` epoch a sample of pages is poisoned, so
accesses manifest as NUMA hint faults classified *local* (fast node) or
*remote* (slow node).  At epoch end the balancer computes the
remote-to-local fault ratio and migrates misplaced (remote-faulted)
pages into the fast node — but only while the fast node has free space;
once full, migrations fail with -ENOMEM and, unlike on a multi-socket
machine, the task cannot be moved to the other "socket", so the hit
rate decays exactly as Figure 2c shows.

The ``numa_period_threshold`` (70/80/90% in Figure 2b) governs how
aggressively the scan period reacts: a higher threshold lets the period
shrink faster, migrating misplaced pages more rapidly.  We model that as
a per-epoch migration budget growing with the threshold's odds ratio
(see :attr:`AutoNumaConfig.migrations_per_epoch`), which reproduces the
paper's observed ordering (90% > 80% > 70% in average hit rate) and the
Figure 2c rise-peak-decay timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.stats import CounterSet, Timeline

FAST_NODE = 0
SLOW_NODE = 1


@dataclass(frozen=True)
class AutoNumaConfig:
    """Balancer knobs (Figure 2b sweeps ``threshold``)."""

    threshold: float = 0.9
    scan_period_cycles: int = 10_000_000
    #: Fraction of pages sampled (poisoned) per scan epoch.
    scan_sample_fraction: float = 0.25
    #: Base migration bandwidth, in pages per epoch, at threshold 0.5.
    #: The effective per-epoch budget grows with the threshold —
    #: ``numa_balancing_scan_period`` shrinks faster under a higher
    #: ``numa_period_threshold``, migrating misplaced pages more rapidly
    #: (Section III-A2) — as ``base_rate * threshold / (1 - threshold)``.
    migration_base_rate: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if self.scan_period_cycles <= 0:
            raise ValueError("scan period must be positive")
        if not 0.0 < self.scan_sample_fraction <= 1.0:
            raise ValueError("sample fraction must be in (0, 1]")
        if self.migration_base_rate < 1:
            raise ValueError("migration rate must be >= 1")

    @property
    def migrations_per_epoch(self) -> int:
        """Per-epoch migration budget implied by the threshold."""
        if self.threshold >= 1.0:
            return 1_000_000_000
        odds = self.threshold / (1.0 - self.threshold)
        return max(1, round(self.migration_base_rate * odds))


@dataclass
class EpochReport:
    """What one balancing epoch did."""

    epoch: int
    local_faults: int
    remote_faults: int
    migrated: int
    enomem_failures: int
    hit_rate: float

    @property
    def remote_ratio(self) -> float:
        total = self.local_faults + self.remote_faults
        return self.remote_faults / total if total else 0.0


class AutoNumaBalancer:
    """Epoch-driven page placement balancer over fast/slow nodes."""

    def __init__(
        self,
        fast_capacity_pages: int,
        config: AutoNumaConfig | None = None,
        counters: CounterSet | None = None,
    ) -> None:
        if fast_capacity_pages <= 0:
            raise ValueError("fast node needs capacity")
        self.config = config if config is not None else AutoNumaConfig()
        self.counters = counters if counters is not None else CounterSet()
        self.fast_capacity_pages = fast_capacity_pages
        self._placement: Dict[int, int] = {}
        self._fast_used = 0
        self._epoch_access: Dict[int, int] = {}
        self._epoch_local = 0
        self._epoch_remote = 0
        self._epoch_index = 0
        self.timeline = Timeline(["migrated", "hit_rate"])

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def place(self, page: int, node: int) -> None:
        """Initial allocation of ``page`` on ``node`` (first touch)."""
        if node not in (FAST_NODE, SLOW_NODE):
            raise ValueError("unknown node")
        if page in self._placement:
            raise ValueError(f"page {page} already placed")
        if node == FAST_NODE:
            if self._fast_used >= self.fast_capacity_pages:
                raise ValueError("fast node full; place on the slow node")
            self._fast_used += 1
        self._placement[page] = node

    def place_first_touch(self, page: int) -> int:
        """Place preferring the fast node, spilling when full."""
        node = (
            FAST_NODE
            if self._fast_used < self.fast_capacity_pages
            else SLOW_NODE
        )
        self.place(page, node)
        return node

    def node_of(self, page: int) -> int:
        return self._placement[page]

    def release(self, page: int) -> None:
        node = self._placement.pop(page)
        if node == FAST_NODE:
            self._fast_used -= 1

    @property
    def fast_free_pages(self) -> int:
        return self.fast_capacity_pages - self._fast_used

    # ------------------------------------------------------------------
    # Access recording / balancing
    # ------------------------------------------------------------------

    def record_access(self, page: int, count: int = 1) -> bool:
        """Record ``count`` accesses; returns True when they hit fast."""
        node = self._placement.get(page)
        if node is None:
            raise KeyError(f"page {page} was never placed")
        self._epoch_access[page] = self._epoch_access.get(page, 0) + count
        if node == FAST_NODE:
            self._epoch_local += count
            self.counters.add("autonuma.local_faults", count)
            return True
        self._epoch_remote += count
        self.counters.add("autonuma.remote_faults", count)
        return False

    def end_epoch(self) -> EpochReport:
        """Close the scan epoch: maybe migrate, then reset counters."""
        local, remote = self._epoch_local, self._epoch_remote
        total = local + remote
        hit_rate = local / total if total else 0.0
        migrated = 0
        enomem = 0

        remote_pages = [
            (count, page)
            for page, count in self._epoch_access.items()
            if self._placement[page] == SLOW_NODE
        ]
        # Hotter misplaced pages first, deterministic tie-break on page id.
        remote_pages.sort(key=lambda item: (-item[0], item[1]))
        budget = min(len(remote_pages), self.config.migrations_per_epoch)
        for count, page in remote_pages[:budget]:
            if self._fast_used >= self.fast_capacity_pages:
                enomem += 1
                self.counters.add("autonuma.enomem")
                continue
            self._placement[page] = FAST_NODE
            self._fast_used += 1
            migrated += 1
            self.counters.add("autonuma.migrations")

        report = EpochReport(
            epoch=self._epoch_index,
            local_faults=local,
            remote_faults=remote,
            migrated=migrated,
            enomem_failures=enomem,
            hit_rate=hit_rate,
        )
        self.timeline.sample(
            float(self._epoch_index), migrated=migrated, hit_rate=hit_rate
        )
        self._epoch_index += 1
        self._epoch_access.clear()
        self._epoch_local = 0
        self._epoch_remote = 0
        return report

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------

    def cumulative_hit_rate(self) -> float:
        local = self.counters["autonuma.local_faults"]
        total = local + self.counters["autonuma.remote_faults"]
        return local / total if total else 0.0
