"""NUMA nodes and the first-touch (local) allocation policy.

In the emulated single-socket heterogeneous system the stacked DRAM is
NUMA node 0 (4GB) and the off-chip DRAM node 1 (20GB), as configured
with ``numa=fake=1*4096,1*20480`` in Section III-A.  The first-touch
allocator fills the fast node before spilling to the slow node — the
behaviour whose low stacked-DRAM hit rate Figure 2a quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.osmodel.buddy import BuddyAllocator, OutOfMemoryError
from repro.stats import CounterSet


@dataclass
class NumaNode:
    """One NUMA node: a named physical range with its own buddy allocator."""

    node_id: int
    name: str
    allocator: BuddyAllocator

    @property
    def base(self) -> int:
        return self.allocator.base

    @property
    def capacity_bytes(self) -> int:
        return self.allocator.capacity_bytes

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.capacity_bytes


def make_hetero_nodes(
    fast_bytes: int, slow_bytes: int
) -> tuple[NumaNode, NumaNode]:
    """The paper's layout: fast node at [0, F), slow node at [F, F+S)."""
    fast = NumaNode(0, "stacked", BuddyAllocator(fast_bytes, base=0))
    slow = NumaNode(1, "offchip", BuddyAllocator(slow_bytes, base=fast_bytes))
    return fast, slow


class FirstTouchAllocator:
    """Linux "local"/first-touch policy over an ordered node list.

    Tasks run on the socket attached to node 0, so allocations prefer
    node 0 (the stacked DRAM) and spill to later nodes when it is full —
    producing exactly the under-utilisation pathology of Section III-A1:
    whatever happens to be touched first occupies the fast memory with
    no regard to hotness.
    """

    def __init__(
        self, nodes: List[NumaNode], counters: CounterSet | None = None
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.nodes = list(nodes)
        self.counters = counters if counters is not None else CounterSet()

    def allocate(self, size: int) -> int:
        order = self._order_for(size)
        for node in self.nodes:
            try:
                address = node.allocator.alloc(order)
            except OutOfMemoryError:
                continue
            self.counters.add(f"numa.alloc_node{node.node_id}")
            return address
        raise OutOfMemoryError(f"no node can satisfy {size} bytes")

    def free(self, address: int) -> None:
        for node in self.nodes:
            if node.contains(address):
                node.allocator.free(address)
                self.counters.add(f"numa.free_node{node.node_id}")
                return
        raise ValueError(f"address {address:#x} outside all nodes")

    def node_of(self, address: int) -> NumaNode:
        for node in self.nodes:
            if node.contains(address):
                return node
        raise ValueError(f"address {address:#x} outside all nodes")

    def _order_for(self, size: int) -> int:
        page = self.nodes[0].allocator.page_bytes
        pages = -(-size // page)
        order = max(0, (pages - 1).bit_length())
        return order

    def free_bytes(self) -> int:
        return sum(node.allocator.free_bytes for node in self.nodes)

    def fast_hit_rate(self, fast_accesses: float, total_accesses: float) -> float:
        if not total_accesses:
            return 0.0
        return fast_accesses / total_accesses
