"""Datacenter job scheduling against OS-visible memory (Section I).

The paper motivates PoM capacity with datacenter throughput: exposing
the stacked DRAM lets the scheduler admit more jobs, cutting queue
waiting time.  This module models that argument end to end:

* :class:`Job` — a submission with a declared memory demand and a
  service time;
* :class:`MemoryBoundScheduler` — FIFO-with-backfill admission against
  a fixed OS-visible capacity (jobs run concurrently while their
  declared demands fit);
* :func:`simulate_queue` — runs a submission list to completion and
  reports makespan, mean waiting time and mean turnaround — the
  quantities the paper's first bullet claims PoM improves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Job:
    """One submitted job."""

    name: str
    memory_bytes: int
    runtime_seconds: float
    submit_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("job needs memory")
        if self.runtime_seconds <= 0:
            raise ValueError("job needs runtime")
        if self.submit_seconds < 0:
            raise ValueError("submit time must be non-negative")


@dataclass
class JobRecord:
    """Lifecycle of one job through the queue."""

    job: Job
    start_seconds: float
    end_seconds: float

    @property
    def waiting_seconds(self) -> float:
        return self.start_seconds - self.job.submit_seconds

    @property
    def turnaround_seconds(self) -> float:
        return self.end_seconds - self.job.submit_seconds


@dataclass
class QueueReport:
    """Aggregate queue statistics (the Section I throughput argument)."""

    records: List[JobRecord] = field(default_factory=list)
    rejected: List[Job] = field(default_factory=list)

    @property
    def makespan_seconds(self) -> float:
        return max((r.end_seconds for r in self.records), default=0.0)

    @property
    def mean_waiting_seconds(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.waiting_seconds for r in self.records) / len(self.records)

    @property
    def mean_turnaround_seconds(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.turnaround_seconds for r in self.records) / len(
            self.records
        )


class MemoryBoundScheduler:
    """FIFO admission with backfill against an OS-visible capacity."""

    def __init__(self, capacity_bytes: int, allow_backfill: bool = True):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.allow_backfill = allow_backfill

    def simulate_queue(self, jobs: Sequence[Job]) -> QueueReport:
        """Run a submission list to completion.

        Jobs too large for the machine are rejected outright (the
        pathological page-fault scenario the paper's second bullet
        describes is modelled separately by the paging engine; here the
        scheduler refuses what cannot fit).
        """
        report = QueueReport()
        pending: List[Job] = []
        for job in sorted(jobs, key=lambda j: (j.submit_seconds, j.name)):
            if job.memory_bytes > self.capacity_bytes:
                report.rejected.append(job)
            else:
                pending.append(job)

        running: List[tuple[float, int, Job]] = []  # (end, tiebreak, job)
        used = 0
        clock = 0.0
        tiebreak = 0

        def finish_due(until: Optional[float]) -> None:
            nonlocal used, clock
            while running and (until is None or running[0][0] <= until):
                end, _, done = heapq.heappop(running)
                clock = max(clock, end)
                used -= done.memory_bytes

        while pending:
            progressed = False
            index = 0
            while index < len(pending):
                job = pending[index]
                fits = (
                    job.submit_seconds <= clock
                    and used + job.memory_bytes <= self.capacity_bytes
                )
                if fits:
                    start = clock
                    end = start + job.runtime_seconds
                    heapq.heappush(running, (end, tiebreak, job))
                    tiebreak += 1
                    used += job.memory_bytes
                    report.records.append(
                        JobRecord(job=job, start_seconds=start, end_seconds=end)
                    )
                    pending.pop(index)
                    progressed = True
                    if not self.allow_backfill:
                        break
                else:
                    if not self.allow_backfill and job.submit_seconds <= clock:
                        # Strict FIFO: the head blocks the queue.
                        break
                    index += 1
            if progressed:
                continue
            # Nothing admitted: advance time to the next event.
            next_submit = min(
                (j.submit_seconds for j in pending if j.submit_seconds > clock),
                default=None,
            )
            if running:
                next_end = running[0][0]
                if next_submit is None or next_end <= next_submit:
                    finish_due(next_end)
                    continue
            if next_submit is not None:
                clock = next_submit
                continue
            if running:
                finish_due(None)
                continue
            raise RuntimeError(
                "scheduler stalled with pending jobs and no events"
            )
        finish_due(None)
        return report
