"""Long-horizon real-system model behind Figures 3, 4 and 5.

The paper ran 12-copy rate-mode workloads sequentially for 53.8 hours on
a Xeon with 24GB DRAM and an SSD, sampling free memory with ``numastat``
every two minutes (Figure 3), then swept the OS-visible capacity from
16GB to 28GB (Figures 4-5).  This module reproduces that setup
analytically:

* each :class:`WorkloadSpec` carries the rate-mode footprint (Table II),
  a nominal fault-free duration, a page-touch rate, and a temporal
  locality factor;
* when the footprint exceeds capacity, the resident-set model yields a
  fault rate; each fault costs the SSD service time and stalls the task
  in the uninterruptible "D" state, stretching wall-clock duration and
  depressing CPU utilisation — exactly the mechanics of Section III-C.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.config import GB, MB
from repro.stats import Timeline

#: SSD page-fault service time (Table I: 100K cycles ~ 36 microseconds).
FAULT_SECONDS = 36e-6


class WorkloadPhase(enum.Enum):
    """Lifecycle of one scheduled workload."""

    ALLOCATING = "allocating"
    RUNNING = "running"
    FREEING = "freeing"


@dataclass(frozen=True)
class WorkloadSpec:
    """One 12-copy rate-mode workload.

    ``page_touch_rate`` is distinct-page accesses per second of compute
    (driven by the workload's MPKI); ``locality`` in [0, 1) is the
    fraction of touches absorbed by the resident hot set even when the
    footprint overflows capacity.
    """

    name: str
    footprint_bytes: int
    base_seconds: float
    page_touch_rate: float = 2.0e5
    locality: float = 0.6
    alloc_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.footprint_bytes <= 0:
            raise ValueError("footprint must be positive")
        if self.base_seconds <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.locality < 1.0:
            raise ValueError("locality must be in [0, 1)")
        if not 0.0 < self.alloc_fraction < 1.0:
            raise ValueError("alloc_fraction must be in (0, 1)")


@dataclass
class CapacityRunResult:
    """One workload executed under one OS-visible capacity."""

    spec: WorkloadSpec
    capacity_bytes: int
    duration_seconds: float
    page_faults: float
    cpu_utilisation: float

    @property
    def fault_millions(self) -> float:
        return self.page_faults / 1e6


class LongRunSimulator:
    """Analytic executor for workload sequences under a capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes

    # ------------------------------------------------------------------
    # Single-workload model (Figures 4 and 5)
    # ------------------------------------------------------------------

    def fault_rate_per_second(self, spec: WorkloadSpec) -> float:
        """Page faults per second of compute under this capacity."""
        overflow = spec.footprint_bytes - self.capacity_bytes
        if overflow <= 0:
            return 0.0
        miss_fraction = overflow / spec.footprint_bytes
        return spec.page_touch_rate * miss_fraction * (1.0 - spec.locality)

    def run(self, spec: WorkloadSpec) -> CapacityRunResult:
        fault_rate = self.fault_rate_per_second(spec)
        stall_per_compute_second = fault_rate * FAULT_SECONDS
        duration = spec.base_seconds * (1.0 + stall_per_compute_second)
        faults = fault_rate * spec.base_seconds
        utilisation = 1.0 / (1.0 + stall_per_compute_second)
        return CapacityRunResult(
            spec=spec,
            capacity_bytes=self.capacity_bytes,
            duration_seconds=duration,
            page_faults=faults,
            cpu_utilisation=utilisation,
        )

    # ------------------------------------------------------------------
    # Sequential schedule (Figure 3)
    # ------------------------------------------------------------------

    def free_memory_timeline(
        self,
        schedule: Sequence[WorkloadSpec],
        sample_seconds: float = 120.0,
        os_reserved_bytes: int = int(0.8 * GB),
    ) -> Timeline:
        """Free memory (MB) sampled over the sequential schedule.

        Each workload ramps its allocation linearly during its first
        ``alloc_fraction`` of runtime, holds its footprint, then frees
        everything at completion — matching the allocate-at-start /
        free-at-exit behaviour the paper observed (Section VI-B).
        """
        if sample_seconds <= 0:
            raise ValueError("sample interval must be positive")
        timeline = Timeline(["free_mb", "workload_index"])
        clock = 0.0
        usable = self.capacity_bytes - os_reserved_bytes
        for index, spec in enumerate(schedule):
            result = self.run(spec)
            duration = result.duration_seconds
            alloc_end = duration * spec.alloc_fraction
            resident_cap = min(spec.footprint_bytes, usable)
            steps = max(1, int(duration // sample_seconds))
            for step in range(steps):
                offset = step * sample_seconds
                if offset < alloc_end:
                    allocated = resident_cap * (offset / alloc_end)
                else:
                    allocated = resident_cap
                free_mb = max(0.0, (usable - allocated) / MB)
                timeline.sample(
                    clock + offset,
                    free_mb=free_mb,
                    workload_index=float(index),
                )
            clock += duration
            timeline.sample(
                clock, free_mb=usable / MB, workload_index=float(index)
            )
        return timeline

    def total_seconds(self, schedule: Sequence[WorkloadSpec]) -> float:
        return sum(self.run(spec).duration_seconds for spec in schedule)


def capacity_sweep(
    specs: Sequence[WorkloadSpec],
    capacities_bytes: Sequence[int],
) -> List[List[CapacityRunResult]]:
    """Run every spec at every capacity; rows ordered like ``specs``."""
    return [
        [LongRunSimulator(cap).run(spec) for cap in capacities_bytes]
        for spec in specs
    ]


def improvement_percent(
    baseline: CapacityRunResult, other: CapacityRunResult
) -> float:
    """Equation 1: percent execution-time improvement over ``baseline``."""
    base = baseline.duration_seconds
    return (base - other.duration_seconds) / base * 100.0
