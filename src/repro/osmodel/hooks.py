"""ISA-Alloc / ISA-Free instrumentation (Algorithms 1 and 2).

The OS memory allocator and reclamation routines are instrumented so
that every page allocation or free notifies the hardware once per
hardware *segment* covered by the page:

``numIterations = pageSize / segmentSize`` (Algorithm 1 line 17), with
one ``ISA_Alloc(segmentNum)`` per iteration, and symmetrically for
``ISA_Free`` (Algorithm 2).  When the segment is larger than the page
(e.g. 2KB segments vs 4KB pages is the paper's case, but 64B CAMEO
segments invert it), the dispatcher notifies each covered segment
exactly once per transition of the segment between fully-free and
partially-allocated, tracked with per-segment allocated-page counts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Protocol

from repro.stats import CounterSet
from repro.telemetry.bus import NULL_BUS, EventBus, NullBus
from repro.telemetry.events import IsaAllocEvent


class IsaNotifier(Protocol):
    """Hardware-side receiver of ISA-Alloc / ISA-Free."""

    def isa_alloc(self, segment_id: int) -> None:
        """The OS allocated (part of) segment ``segment_id``."""

    def isa_free(self, segment_id: int) -> None:
        """The OS freed the last allocated page of ``segment_id``."""


class NullNotifier:
    """Notifier used for architectures without ISA support (baselines)."""

    def isa_alloc(self, segment_id: int) -> None:  # noqa: D102
        pass

    def isa_free(self, segment_id: int) -> None:  # noqa: D102
        pass


class PageHookDispatcher:
    """Translates page-granularity OS events into per-segment ISA calls.

    The paper's segments (2KB) are smaller than pages (4KB/2MB), so each
    page event covers ``page_bytes // segment_bytes`` whole segments and
    maps 1:1 onto Algorithm 1/2's loop.  The dispatcher also handles the
    inverted case (segments larger than pages) by reference-counting
    pages per segment: ISA-Alloc fires when a segment gains its first
    allocated page, ISA-Free when it loses its last — the only sound
    reading of "allocated" for a multi-page segment.
    """

    def __init__(
        self,
        segment_bytes: int,
        page_bytes: int,
        notifier: IsaNotifier,
        counters: CounterSet | None = None,
        telemetry: EventBus | NullBus | None = None,
    ) -> None:
        if segment_bytes <= 0 or page_bytes <= 0:
            raise ValueError("sizes must be positive")
        if segment_bytes & (segment_bytes - 1) or page_bytes & (page_bytes - 1):
            raise ValueError("sizes must be powers of two")
        self.segment_bytes = segment_bytes
        self.page_bytes = page_bytes
        self.notifier = notifier
        self.counters = counters if counters is not None else CounterSet()
        #: OS-side view of the ISA stream (:mod:`repro.telemetry`).
        #: When the notifier is an instrumented architecture, wire the
        #: bus at *one* level only, or the stream is double-counted.
        self.telemetry = telemetry if telemetry is not None else NULL_BUS
        self._pages_per_segment = max(1, segment_bytes // page_bytes)
        self._segment_page_refs: Dict[int, int] = defaultdict(int)

    def page_allocated(self, address: int, page_bytes: int | None = None) -> None:
        """Algorithm 1: the OS allocated the page at ``address``."""
        size = page_bytes if page_bytes is not None else self.page_bytes
        self._check(address, size)
        if self.segment_bytes <= size:
            # One or more whole segments per page: the paper's loop.
            for segment_id in self._covered_segments(address, size):
                self.notifier.isa_alloc(segment_id)
                self.counters.add("isa.alloc")
                self._emit(segment_id, alloc=True)
        else:
            segment_id = address // self.segment_bytes
            pages = size // self.page_bytes
            previous = self._segment_page_refs[segment_id]
            self._segment_page_refs[segment_id] = previous + pages
            if previous == 0:
                self.notifier.isa_alloc(segment_id)
                self.counters.add("isa.alloc")
                self._emit(segment_id, alloc=True)

    def page_freed(self, address: int, page_bytes: int | None = None) -> None:
        """Algorithm 2: the OS freed the page at ``address``."""
        size = page_bytes if page_bytes is not None else self.page_bytes
        self._check(address, size)
        if self.segment_bytes <= size:
            for segment_id in self._covered_segments(address, size):
                self.notifier.isa_free(segment_id)
                self.counters.add("isa.free")
                self._emit(segment_id, alloc=False)
        else:
            segment_id = address // self.segment_bytes
            pages = size // self.page_bytes
            remaining = self._segment_page_refs[segment_id] - pages
            if remaining < 0:
                raise ValueError(
                    f"segment {segment_id} freed more pages than allocated"
                )
            self._segment_page_refs[segment_id] = remaining
            if remaining == 0:
                del self._segment_page_refs[segment_id]
                self.notifier.isa_free(segment_id)
                self.counters.add("isa.free")
                self._emit(segment_id, alloc=False)

    def _emit(self, segment_id: int, alloc: bool) -> None:
        bus = self.telemetry
        if bus.enabled:
            bus.emit(
                IsaAllocEvent(time_ns=0.0, segment=segment_id, alloc=alloc)
            )

    def _covered_segments(self, address: int, size: int):
        first = address // self.segment_bytes
        count = size // self.segment_bytes
        return range(first, first + count)

    def _check(self, address: int, size: int) -> None:
        if address < 0:
            raise ValueError("address must be non-negative")
        if size % self.page_bytes:
            raise ValueError(
                f"page size {size} not a multiple of base page "
                f"{self.page_bytes}"
            )
        if address % size:
            raise ValueError(f"address {address:#x} not aligned to {size:#x}")

    @property
    def isa_alloc_count(self) -> float:
        return self.counters["isa.alloc"]

    @property
    def isa_free_count(self) -> float:
        return self.counters["isa.free"]
