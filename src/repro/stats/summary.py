"""Aggregation helpers matching the paper's reporting conventions.

The paper reports per-workload performance as the geometric mean of
per-application IPCs (Section VI-A) and normalises to a baseline system
(Figures 18, 20, 22, 23).  Equation 1 uses percentage improvement of
geometric-mean execution time.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; every value must be positive."""
    total = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean requires positive values, got {value}")
        total += math.log(value)
        count += 1
    if not count:
        raise ValueError("geomean of an empty sequence")
    return math.exp(total / count)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; every value must be positive."""
    total = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError(f"harmonic mean requires positive values, got {value}")
        total += 1.0 / value
        count += 1
    if not count:
        raise ValueError("harmonic mean of an empty sequence")
    return count / total


def normalize_to(values: Mapping[str, float], baseline: str) -> dict[str, float]:
    """Normalise every value to ``values[baseline]`` (baseline becomes 1.0)."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from values")
    base = values[baseline]
    if base <= 0:
        raise ValueError("baseline value must be positive")
    return {name: value / base for name, value in values.items()}


def percent_delta(new: float, old: float) -> float:
    """Percentage improvement of ``new`` over ``old`` (Equation 1 form)."""
    if old == 0:
        raise ValueError("old value must be non-zero")
    return (new - old) / old * 100.0


def weighted_speedup(
    ipcs: Sequence[float], alone_ipcs: Sequence[float]
) -> float:
    """Sum of per-application IPC ratios vs. running alone."""
    if len(ipcs) != len(alone_ipcs):
        raise ValueError("IPC vectors must have equal length")
    if not ipcs:
        raise ValueError("weighted speedup of an empty workload")
    return sum(ipc / alone for ipc, alone in zip(ipcs, alone_ipcs))
