"""Statistics primitives used across the simulator.

The simulator reports everything through small, composable primitives:

* :class:`CounterSet` — named monotonically increasing counters with
  hierarchical dot-separated names and ratio helpers;
* :class:`Histogram` — fixed-bucket latency/size histograms;
* :class:`Timeline` — per-epoch series used for the timeline figures
  (Figure 2c, Figure 3);
* summary helpers (:func:`geomean`, :func:`normalize_to`) used to produce
  the paper's normalised-IPC style results.
"""

from repro.stats.counters import CounterSet
from repro.stats.histogram import Histogram
from repro.stats.timeline import Timeline
from repro.stats.summary import geomean, harmonic_mean, normalize_to, percent_delta

__all__ = [
    "CounterSet",
    "Histogram",
    "Timeline",
    "geomean",
    "harmonic_mean",
    "normalize_to",
    "percent_delta",
]
