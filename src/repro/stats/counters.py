"""Named event counters.

Every component of the simulator owns a :class:`CounterSet`.  Counters are
created lazily on first increment, names are dot-separated
(``"dram.fast.row_hits"``), and sets can be merged, snapshotted, and
diffed — the experiment runners diff per-epoch snapshots to build
timelines.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, Iterator, Mapping

#: Version of the :meth:`CounterSet.to_dict` wire format.
COUNTERS_SCHEMA_VERSION = 1


class CounterSet:
    """A bag of named, monotonically increasing numeric counters."""

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        self._counts: Dict[str, float] = defaultdict(float)
        if initial:
            for name, value in initial.items():
                self._counts[name] = float(value)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment ``name`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._counts[name] += amount

    def add_many(self, name: str, amounts: Iterable[float]) -> None:
        """Fold ``amounts`` into ``name`` one by one, left to right.

        Bulk analogue of calling :meth:`add` per element, with a single
        dict access for the whole batch.  The accumulation is a
        sequential left fold from the counter's current value, so the
        result is bit-identical to the per-element loop — the property
        the batched simulation kernel's parity guarantee rests on.
        """
        total = self._counts[name]
        for amount in amounts:
            if amount < 0:
                raise ValueError(
                    f"counter increments must be >= 0, got {amount}"
                )
            total += amount
        self._counts[name] = total

    def add_repeat(self, name: str, amount: float, count: int) -> None:
        """Apply ``count`` sequential increments of the same ``amount``.

        Equivalent to ``add_many(name, [amount] * count)`` without
        building the list; used to flush deferred constant-sized
        contributions (e.g. per-burst DRAM bus occupancy) while keeping
        the float accumulation order of the scalar path.
        """
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        if count < 0:
            raise ValueError(f"repeat count must be >= 0, got {count}")
        total = self._counts[name]
        for _ in range(count):
            total += amount
        self._counts[name] = total

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def items(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counts.items()))

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator``, 0.0 when the denominator is zero."""
        denom = self[denominator]
        return self[numerator] / denom if denom else 0.0

    def fraction_of_total(self, name: str, *names: str) -> float:
        """``name`` as a fraction of the sum of ``name`` plus ``names``."""
        total = self[name] + sum(self[other] for other in names)
        return self[name] / total if total else 0.0

    def merge(self, other: "CounterSet") -> "CounterSet":
        """Return a new set with the element-wise sum of both sets."""
        merged = CounterSet(self._counts)
        for name, value in other._counts.items():
            merged._counts[name] += value
        return merged

    def snapshot(self) -> Dict[str, float]:
        return dict(self._counts)

    def diff(self, earlier: Mapping[str, float]) -> Dict[str, float]:
        """Per-counter delta since an earlier :meth:`snapshot`."""
        out: Dict[str, float] = {}
        for name, value in self._counts.items():
            delta = value - earlier.get(name, 0.0)
            if delta:
                out[name] = delta
        return out

    def reset(self) -> None:
        self._counts.clear()

    def __eq__(self, other: object) -> bool:
        """Two sets are equal when their non-zero counts agree.

        Zero-valued entries are ignored so a counter that was
        incremented by 0 compares equal to one that was never touched —
        the distinction is invisible through every read path.
        """
        if not isinstance(other, CounterSet):
            return NotImplemented
        mine = {k: v for k, v in self._counts.items() if v}
        theirs = {k: v for k, v in other._counts.items() if v}
        return mine == theirs

    __hash__ = None  # mutable: identity hashing would violate eq

    def to_dict(self) -> Dict[str, Any]:
        """Versioned plain-dict form (the disk-cache wire format)."""
        return {
            "schema": COUNTERS_SCHEMA_VERSION,
            "counts": {k: v for k, v in self._counts.items() if v},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CounterSet":
        """Inverse of :meth:`to_dict`; rejects unknown schema versions."""
        schema = data.get("schema")
        if schema != COUNTERS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported CounterSet schema {schema!r} "
                f"(expected {COUNTERS_SCHEMA_VERSION})"
            )
        return cls(data.get("counts", {}))

    def scoped(self, prefix: str) -> "ScopedCounters":
        """A view that prepends ``prefix + '.'`` to every counter name."""
        return ScopedCounters(self, prefix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in self.items())
        return f"CounterSet({inner})"


class ScopedCounters:
    """Prefixing facade over a :class:`CounterSet`.

    Lets a sub-component increment ``"row_hits"`` while the shared set
    records ``"dram.fast.row_hits"``.
    """

    def __init__(self, parent: CounterSet, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix

    def add(self, name: str, amount: float = 1.0) -> None:
        self._parent.add(f"{self._prefix}.{name}", amount)

    def __getitem__(self, name: str) -> float:
        return self._parent[f"{self._prefix}.{name}"]

    def ratio(self, numerator: str, denominator: str) -> float:
        return self._parent.ratio(
            f"{self._prefix}.{numerator}", f"{self._prefix}.{denominator}"
        )
