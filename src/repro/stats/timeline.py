"""Per-epoch time series used for the paper's timeline figures.

Figure 2c (AutoNUMA migrations and hit rate per 10M-cycle epoch) and
Figure 3 (free memory sampled every two minutes over 53.8 hours) are both
(time, value) series with named channels; :class:`Timeline` holds any
number of aligned channels.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


class Timeline:
    """Aligned multi-channel time series sampled at explicit times."""

    def __init__(self, channels: Sequence[str]) -> None:
        if not channels:
            raise ValueError("timeline needs at least one channel")
        if len(set(channels)) != len(channels):
            raise ValueError("channel names must be unique")
        self._channels = list(channels)
        self._times: List[float] = []
        self._values: Dict[str, List[float]] = {name: [] for name in channels}

    @property
    def channels(self) -> List[str]:
        return list(self._channels)

    def sample(self, time: float, **values: float) -> None:
        """Append one sample; every channel must be supplied."""
        missing = set(self._channels) - set(values)
        extra = set(values) - set(self._channels)
        if missing or extra:
            raise ValueError(
                f"sample channels mismatch (missing={sorted(missing)}, "
                f"unknown={sorted(extra)})"
            )
        if self._times and time < self._times[-1]:
            raise ValueError("samples must be appended in time order")
        self._times.append(time)
        for name in self._channels:
            self._values[name].append(float(values[name]))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> List[float]:
        return list(self._times)

    def series(self, channel: str) -> List[float]:
        return list(self._values[channel])

    def rows(self) -> Iterable[Tuple[float, Dict[str, float]]]:
        for index, time in enumerate(self._times):
            yield time, {
                name: self._values[name][index] for name in self._channels
            }

    def last(self, channel: str) -> float:
        values = self._values[channel]
        if not values:
            raise IndexError("timeline is empty")
        return values[-1]

    def peak(self, channel: str) -> Tuple[float, float]:
        """(time, value) of the maximum sample of ``channel``."""
        values = self._values[channel]
        if not values:
            raise IndexError("timeline is empty")
        index = max(range(len(values)), key=values.__getitem__)
        return self._times[index], values[index]

    def minimum(self, channel: str) -> Tuple[float, float]:
        values = self._values[channel]
        if not values:
            raise IndexError("timeline is empty")
        index = min(range(len(values)), key=values.__getitem__)
        return self._times[index], values[index]

    def mean(self, channel: str) -> float:
        values = self._values[channel]
        return sum(values) / len(values) if values else 0.0
