"""Fixed-bucket histogram for latency and size distributions."""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

import numpy as np


class Histogram:
    """Histogram over half-open buckets ``[b[i], b[i+1])``.

    ``bounds`` are the interior bucket boundaries; samples below the first
    bound land in bucket 0, samples at or above the last bound land in the
    final (overflow) bucket.  Mean/total are tracked exactly, not from the
    bucketised values.
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = list(bounds)
        if not ordered:
            raise ValueError("histogram needs at least one bucket boundary")
        if ordered != sorted(ordered):
            raise ValueError("bucket boundaries must be sorted")
        if len(set(ordered)) != len(ordered):
            raise ValueError("bucket boundaries must be distinct")
        self._bounds: List[float] = ordered
        self._buckets: List[int] = [0] * (len(ordered) + 1)
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    @classmethod
    def linear(cls, lo: float, hi: float, num_buckets: int) -> "Histogram":
        if num_buckets < 2 or hi <= lo:
            raise ValueError("need hi > lo and at least two buckets")
        step = (hi - lo) / num_buckets
        return cls([lo + i * step for i in range(1, num_buckets)])

    def record(self, value: float, weight: int = 1) -> None:
        index = bisect.bisect_right(self._bounds, value)
        self._buckets[index] += weight
        self._count += weight
        self._total += value * weight
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def observe_array(self, values: Sequence[float]) -> None:
        """Bulk-record ``values`` (unit weight each).

        The bucket counts are accumulated with vectorised NumPy ops
        (``searchsorted(side='right')`` matches ``bisect_right`` index
        for index), while the exact running total is folded
        sequentially so the mean stays bit-identical to calling
        :meth:`record` per element — the batched simulation kernel
        relies on that parity.
        """
        if len(values) == 0:
            return
        array = np.asarray(values, dtype=np.float64)
        indices = np.searchsorted(self._bounds, array, side="right")
        for index, weight in enumerate(
            np.bincount(indices, minlength=len(self._buckets))
        ):
            self._buckets[index] += int(weight)
        self._count += len(array)
        total = self._total
        for value in values:
            total += value
        self._total = total
        lo = float(array.min())
        hi = float(array.max())
        self._min = lo if self._min is None else min(self._min, lo)
        self._max = hi if self._max is None else max(self._max, hi)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> float | None:
        return self._min

    @property
    def maximum(self) -> float | None:
        return self._max

    def buckets(self) -> List[Tuple[str, int]]:
        """(label, count) pairs, including under/overflow buckets."""
        labels = [f"<{self._bounds[0]:g}"]
        labels += [
            f"[{lo:g},{hi:g})"
            for lo, hi in zip(self._bounds, self._bounds[1:])
        ]
        labels.append(f">={self._bounds[-1]:g}")
        return list(zip(labels, self._buckets))

    def percentile(self, fraction: float) -> float:
        """Approximate percentile using bucket upper bounds."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if not self._count:
            return 0.0
        target = fraction * self._count
        running = 0
        for index, weight in enumerate(self._buckets):
            running += weight
            if running >= target:
                if index < len(self._bounds):
                    return self._bounds[index]
                return self._max if self._max is not None else self._bounds[-1]
        return self._max if self._max is not None else self._bounds[-1]
