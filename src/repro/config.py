"""System configuration for the Chameleon reproduction.

The dataclasses here mirror Table I of the paper (the simulated baseline
configuration): a 12-core out-of-order CPU with a three-level cache
hierarchy, a 4GB high-bandwidth stacked DRAM, a 20GB off-chip DRAM, and an
SSD-backed page-fault path costing 100K CPU cycles.

All capacities are expressed in bytes, all clocks in Hz, and all DRAM
timings in device clock cycles (the usual tCAS-tRCD-tRP-tRAS notation).
Helper constructors build the paper's exact configurations, including the
1:3 / 1:5 / 1:7 stacked-to-off-chip capacity ratios used in the
sensitivity studies (Figures 21 and 23).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Paper default: 2KB segments, as in the PoM baseline (Sim et al.).
DEFAULT_SEGMENT_BYTES = 2 * KB

#: CAMEO-style fine-grain segments.
CACHELINE_BYTES = 64

#: Base OS page size (4KB) and transparent huge page size (2MB).
PAGE_BYTES = 4 * KB
THP_BYTES = 2 * MB

#: Page-fault service latency in CPU cycles (Table I, SSD-backed).
PAGE_FAULT_LATENCY_CYCLES = 100_000


@dataclass(frozen=True)
class CoreConfig:
    """A single out-of-order core (Table I: 12 cores at 3.6GHz, ALPHA)."""

    frequency_hz: float = 3.6e9
    issue_width: int = 4
    #: Base cycles-per-instruction when no off-chip memory stall occurs.
    base_cpi: float = 0.40
    #: Effective memory-level parallelism: number of outstanding LLC
    #: misses whose latencies overlap.  Used by the analytic timing model.
    mlp: float = 4.0

    # The ns <-> cycle conversions below are the *only* forms used
    # throughout the simulator (engine, timing model, reporting).  They
    # deliberately keep the historical operand order — ``x / f * 1e9``
    # and ``ns * 1e-9 * f`` — so the refactor that centralised them
    # changed no result bit.

    @property
    def ns_per_instruction(self) -> float:
        """Wall time of one instruction at base CPI, in ns."""
        return self.base_cpi / self.frequency_hz * 1e9

    @property
    def ns_per_cycle(self) -> float:
        """Duration of one core clock cycle in ns."""
        return 1 / self.frequency_hz * 1e9

    def cycles_to_ns(self, cycles: float) -> float:
        """Core clock cycles -> nanoseconds."""
        return cycles / self.frequency_hz * 1e9

    def ns_to_cycles(self, ns: float) -> float:
        """Nanoseconds -> core clock cycles."""
        return ns * 1e-9 * self.frequency_hz


@dataclass(frozen=True)
class CacheLevelConfig:
    """One level of the SRAM cache hierarchy."""

    capacity_bytes: int
    associativity: int
    line_bytes: int = 64
    latency_cycles: int = 2
    shared: bool = False

    @property
    def num_sets(self) -> int:
        lines = self.capacity_bytes // self.line_bytes
        return max(1, lines // self.associativity)


@dataclass(frozen=True)
class DramTiming:
    """DRAM device timing parameters, in device clock cycles.

    Matches Table I: both memories use tCAS-tRCD-tRP-tRAS = 11-11-11-28;
    the stacked DRAM has tRFC = 138ns, the off-chip DRAM 530ns.
    """

    tCAS: int = 11
    tRCD: int = 11
    tRP: int = 11
    tRAS: int = 28
    tRFC_ns: float = 138.0
    #: Refresh interval (standard 64ms retention / 8192 rows).
    tREFI_ns: float = 7800.0
    #: Burst length in bus transfers (DDR: 8 transfers per burst).
    burst_length: int = 8

    @property
    def row_hit_cycles(self) -> int:
        """Cycles to read from an already-open row (CAS latency)."""
        return self.tCAS

    @property
    def row_miss_cycles(self) -> int:
        """Closed-row access: activate then CAS."""
        return self.tRCD + self.tCAS

    @property
    def row_conflict_cycles(self) -> int:
        """Row conflict: precharge, activate, then CAS."""
        return self.tRP + self.tRCD + self.tCAS


@dataclass(frozen=True)
class DramConfig:
    """One DRAM memory (stacked or off-chip) as in Table I."""

    name: str
    capacity_bytes: int
    bus_frequency_hz: float
    bus_width_bits: int
    channels: int
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    row_bytes: int = 2 * KB
    timing: DramTiming = field(default_factory=DramTiming)

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def peak_bandwidth_bytes_per_sec(self) -> float:
        """DDR peak bandwidth: 2 transfers per bus clock per channel."""
        per_channel = self.bus_frequency_hz * 2 * (self.bus_width_bits / 8)
        return per_channel * self.channels

    def device_cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.bus_frequency_hz * 1e9

    def burst_time_ns(self, burst_bytes: int) -> float:
        """Data-bus occupancy to transfer ``burst_bytes`` on one channel."""
        bytes_per_cycle = (self.bus_width_bits / 8) * 2  # DDR
        cycles = burst_bytes / bytes_per_cycle
        return cycles / self.bus_frequency_hz * 1e9


def stacked_dram(capacity_bytes: int = 4 * GB) -> DramConfig:
    """Table I stacked DRAM: 1.6GHz DDR (3.2GT/s), 128-bit, 2 channels."""
    return DramConfig(
        name="stacked",
        capacity_bytes=capacity_bytes,
        bus_frequency_hz=1.6e9,
        bus_width_bits=128,
        channels=2,
        timing=DramTiming(tRFC_ns=138.0),
    )


def offchip_dram(capacity_bytes: int = 20 * GB) -> DramConfig:
    """Table I off-chip DRAM: 800MHz DDR (1.6GT/s), 64-bit, 2 channels."""
    return DramConfig(
        name="offchip",
        capacity_bytes=capacity_bytes,
        bus_frequency_hz=0.8e9,
        bus_width_bits=64,
        channels=2,
        timing=DramTiming(tRFC_ns=530.0),
    )


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated system (Table I)."""

    num_cores: int = 12
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(32 * KB, 4, latency_cycles=2)
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(256 * KB, 8, latency_cycles=10)
    )
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            12 * MB, 16, latency_cycles=30, shared=True
        )
    )
    fast_mem: DramConfig = field(default_factory=stacked_dram)
    slow_mem: DramConfig = field(default_factory=offchip_dram)
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    page_bytes: int = PAGE_BYTES
    page_fault_latency_cycles: int = PAGE_FAULT_LATENCY_CYCLES

    def __post_init__(self) -> None:
        if self.fast_mem.capacity_bytes <= 0 or self.slow_mem.capacity_bytes <= 0:
            raise ValueError("memory capacities must be positive")
        if self.segment_bytes <= 0 or self.segment_bytes & (self.segment_bytes - 1):
            raise ValueError("segment_bytes must be a positive power of two")
        if self.slow_mem.capacity_bytes % self.fast_mem.capacity_bytes:
            raise ValueError(
                "slow memory capacity must be an integer multiple of fast "
                "memory capacity (segment-restricted remapping requires a "
                "whole number of slow segments per group)"
            )

    @property
    def ns_per_instruction(self) -> float:
        """Shorthand for :attr:`CoreConfig.ns_per_instruction`."""
        return self.core.ns_per_instruction

    @property
    def ns_per_cycle(self) -> float:
        """Shorthand for :attr:`CoreConfig.ns_per_cycle`."""
        return self.core.ns_per_cycle

    @property
    def capacity_ratio(self) -> int:
        """Slow:fast capacity ratio R; a segment group has R+1 segments."""
        return self.slow_mem.capacity_bytes // self.fast_mem.capacity_bytes

    @property
    def total_capacity_bytes(self) -> int:
        return self.fast_mem.capacity_bytes + self.slow_mem.capacity_bytes

    @property
    def num_fast_segments(self) -> int:
        return self.fast_mem.capacity_bytes // self.segment_bytes

    @property
    def num_slow_segments(self) -> int:
        return self.slow_mem.capacity_bytes // self.segment_bytes

    @property
    def num_segment_groups(self) -> int:
        """One group per fast segment (segment-restricted remapping)."""
        return self.num_fast_segments

    @property
    def segments_per_group(self) -> int:
        return 1 + self.capacity_ratio

    def with_segment_bytes(self, segment_bytes: int) -> "SystemConfig":
        return replace(self, segment_bytes=segment_bytes)


def paper_config(
    fast_gb: float = 4.0,
    slow_gb: float = 20.0,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
) -> SystemConfig:
    """The paper's evaluated system: 4GB stacked + 20GB off-chip (1:5)."""
    return SystemConfig(
        fast_mem=stacked_dram(int(fast_gb * GB)),
        slow_mem=offchip_dram(int(slow_gb * GB)),
        segment_bytes=segment_bytes,
    )


def ratio_config(ratio: int, total_gb: float = 24.0) -> SystemConfig:
    """Sensitivity configurations for Figures 21/23.

    ``ratio`` is the slow:fast capacity ratio.  The paper uses a constant
    24GB total: 1:3 -> 6GB+18GB, 1:5 -> 4GB+20GB, 1:7 -> 3GB+21GB.
    """
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    fast_gb = total_gb / (ratio + 1)
    slow_gb = total_gb - fast_gb
    return paper_config(fast_gb=fast_gb, slow_gb=slow_gb)


#: Scaled-down configuration used throughout tests and benchmarks so that
#: pure-Python simulation stays fast while preserving every architectural
#: ratio of the paper system (1:5 capacity ratio, 2KB segments).
def scaled_config(
    fast_mb: float = 4.0,
    ratio: int = 5,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
) -> SystemConfig:
    fast = int(fast_mb * MB)
    return SystemConfig(
        fast_mem=stacked_dram(fast),
        slow_mem=offchip_dram(fast * ratio),
        segment_bytes=segment_bytes,
    )
