"""Per-bank DRAM state: the open-row (row-buffer) state machine."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import DramTiming


class RowBufferResult(enum.Enum):
    """Outcome class of one bank access (standard open-page policy)."""

    HIT = "hit"          # row already open: CAS only
    MISS = "miss"        # bank idle/closed: ACT + CAS
    CONFLICT = "conflict"  # different row open: PRE + ACT + CAS


@dataclass
class Bank:
    """One DRAM bank under an open-page policy.

    The bank remembers which row is open and the time at which it can
    accept the next command (``ready_ns``).  ``access`` classifies the
    access, charges the appropriate timing, and leaves the new row open.
    """

    timing: DramTiming
    clock_hz: float
    open_row: int | None = None
    ready_ns: float = 0.0

    def __post_init__(self) -> None:
        # Hot-path constants: the three access classes and the tRAS
        # hold, converted to ns once (same expression as
        # ``_cycles_to_ns``, so the precomputation changes no bit).
        self._hit_ns = self._cycles_to_ns(self.timing.row_hit_cycles)
        self._miss_ns = self._cycles_to_ns(self.timing.row_miss_cycles)
        self._conflict_ns = self._cycles_to_ns(
            self.timing.row_conflict_cycles
        )
        self._tras_ns = self._cycles_to_ns(self.timing.tRAS)

    def _cycles_to_ns(self, cycles: int) -> float:
        return cycles / self.clock_hz * 1e9

    def classify(self, row: int) -> RowBufferResult:
        if self.open_row is None:
            return RowBufferResult.MISS
        if self.open_row == row:
            return RowBufferResult.HIT
        return RowBufferResult.CONFLICT

    def access(self, row: int, now_ns: float) -> tuple[float, RowBufferResult]:
        """Issue an access to ``row`` at ``now_ns``.

        Returns ``(data_ready_ns, result)``.  The command waits for the
        bank to become ready, then pays CAS / ACT+CAS / PRE+ACT+CAS.
        """
        start_ns = now_ns if now_ns > self.ready_ns else self.ready_ns
        if self.open_row is None:
            result = RowBufferResult.MISS
            latency_ns = self._miss_ns
        elif self.open_row == row:
            result = RowBufferResult.HIT
            latency_ns = self._hit_ns
        else:
            result = RowBufferResult.CONFLICT
            latency_ns = self._conflict_ns
        data_ready_ns = start_ns + latency_ns
        self.open_row = row
        # The bank can accept the next column command once the data is out;
        # tRAS constrains back-to-back row cycles, approximated by holding
        # the bank for tRAS on non-hit accesses.
        if result is RowBufferResult.HIT:
            self.ready_ns = data_ready_ns
        else:
            self.ready_ns = start_ns + self._tras_ns
        return data_ready_ns, result

    def precharge(self) -> None:
        """Close the open row (used when a refresh or scrub intervenes)."""
        self.open_row = None
