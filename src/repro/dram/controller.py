"""Heterogeneous memory front end: two devices plus swap buffers.

:class:`HeterogeneousMemory` bundles the fast (stacked) and slow
(off-chip) :class:`~repro.dram.device.DramDevice` instances behind one
interface, and implements the PoM *fast-swap* machinery the paper builds
on (Section V-D1): segments in transit between the memories are staged in
per-controller local buffers, and loads/stores to in-transit segments are
serviced from those buffers at SRAM-buffer latency instead of waiting for
the full swap to complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.dram.device import DramDevice
from repro.stats import CounterSet

#: Latency of hitting a swap-staging SRAM buffer, in nanoseconds.  The
#: buffers are small on-controller SRAM; this matches the few-cycle
#: service the fast-swap design assumes.
BUFFER_HIT_NS = 4.0


@dataclass
class TransferBuffer:
    """A local buffer holding one in-transit segment (fast-swap)."""

    segment_id: int
    dirty: bool = False
    completes_ns: float = 0.0
    touches: int = field(default=0)

    def in_flight(self, now_ns: float) -> bool:
        return now_ns < self.completes_ns


class HeterogeneousMemory:
    """The fast+slow DRAM pair with fast-swap transfer buffers."""

    def __init__(self, config: SystemConfig, counters: CounterSet | None = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.fast = DramDevice(config.fast_mem, self.counters)
        self.slow = DramDevice(config.slow_mem, self.counters)
        self._buffers: dict[int, TransferBuffer] = {}

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(
        self,
        in_fast: bool,
        device_address: int,
        now_ns: float,
        is_write: bool = False,
        segment_id: int | None = None,
    ) -> float:
        """Service a 64B access; returns latency in ns.

        ``segment_id`` (the remap-domain segment number) lets in-transit
        segments hit the fast-swap buffers.
        """
        if segment_id is not None:
            buffer = self._buffers.get(segment_id)
            # Inlined ``buffer.in_flight(now_ns)`` — one attribute
            # compare instead of a method call on the demand path.
            if buffer is not None and now_ns < buffer.completes_ns:
                buffer.touches += 1
                if is_write:
                    buffer.dirty = True
                self.counters.add("swap.buffer_hits")
                return BUFFER_HIT_NS
        device = self.fast if in_fast else self.slow
        return device.access(device_address, now_ns, is_write)

    # ------------------------------------------------------------------
    # Swap path
    # ------------------------------------------------------------------

    def start_swap(
        self,
        fast_address: int,
        slow_address: int,
        now_ns: float,
        fast_segment_id: int,
        slow_segment_id: int,
    ) -> float:
        """Swap one segment between the memories; returns completion ns.

        Both directions transfer a full segment: each device performs a
        read of its outgoing segment and a write of its incoming one
        (staged through the local buffers), so each device is charged
        two segment transfers — the bandwidth bloat that makes swaps
        expensive (the paper counts dirty cache-mode evictions as swaps
        for exactly this reason).
        """
        seg = self.config.segment_bytes
        fast_read = self.fast.transfer(fast_address, seg, now_ns)
        slow_read = self.slow.transfer(slow_address, seg, now_ns)
        fast_done = self.fast.transfer(fast_address, seg, max(fast_read, slow_read))
        slow_done = self.slow.transfer(slow_address, seg, max(fast_read, slow_read))
        completes = max(fast_done, slow_done)
        self._stage(fast_segment_id, completes)
        self._stage(slow_segment_id, completes)
        self.counters.add("swap.swaps")
        self.counters.add("swap.bytes", 4 * seg)
        return completes

    def start_fill(
        self,
        fast_address: int,
        slow_address: int,
        now_ns: float,
        slow_segment_id: int,
        writeback: bool = False,
    ) -> float:
        """Cache-mode fill: copy a slow segment into a free fast segment.

        When ``writeback`` is set the previously cached segment is first
        written back to the slow memory (dirty eviction), which costs a
        second pair of transfers — the paper accounts such evict+fill
        pairs as swaps, which :mod:`repro.core` mirrors.
        """
        seg = self.config.segment_bytes
        start = now_ns
        if writeback:
            wb_fast = self.fast.transfer(fast_address, seg, start)
            wb_slow = self.slow.transfer(slow_address, seg, start)
            start = max(wb_fast, wb_slow)
            self.counters.add("swap.writebacks")
            self.counters.add("swap.bytes", 2 * seg)
        slow_done = self.slow.transfer(slow_address, seg, start)
        fast_done = self.fast.transfer(fast_address, seg, start)
        completes = max(slow_done, fast_done)
        self._stage(slow_segment_id, completes)
        self.counters.add("swap.fills")
        self.counters.add("swap.bytes", 2 * seg)
        return completes

    def _stage(self, segment_id: int, completes_ns: float) -> None:
        self._buffers[segment_id] = TransferBuffer(
            segment_id=segment_id, completes_ns=completes_ns
        )
        # Bound the buffer map: expired entries are garbage-collected
        # opportunistically to keep the model O(1) in memory.
        if len(self._buffers) > 64:
            expired = [
                sid
                for sid, buf in self._buffers.items()
                if buf.completes_ns <= completes_ns - 1.0
            ]
            for sid in expired:
                del self._buffers[sid]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def swaps(self) -> float:
        return self.counters["swap.swaps"]

    @property
    def fills(self) -> float:
        return self.counters["swap.fills"]

    def bandwidth_ratio(self) -> float:
        """Peak fast:slow bandwidth ratio (≈4 for Table I)."""
        return (
            self.config.fast_mem.peak_bandwidth_bytes_per_sec
            / self.config.slow_mem.peak_bandwidth_bytes_per_sec
        )
