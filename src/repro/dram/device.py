"""A DRAM device: address mapping, banks, channel data buses, refresh.

The device services two kinds of traffic:

* ``access`` — a 64B demand read/write (one burst on one channel);
* ``transfer`` — a bulk multi-burst transfer used for segment swaps;
  it occupies the channel data bus back-to-back and streams through
  banks row by row, which is what makes concurrent demand accesses
  observe queueing delay (swap interference).

Refresh is modelled statistically: each access is inflated by the
device's refresh duty factor ``tRFC / tREFI``, the standard closed-form
approximation for refresh-induced unavailability.
"""

from __future__ import annotations

from repro.config import DramConfig, CACHELINE_BYTES
from repro.dram.bank import Bank, RowBufferResult
from repro.stats import CounterSet


class DramDevice:
    """One memory (stacked or off-chip) with Table I organisation."""

    def __init__(self, config: DramConfig, counters: CounterSet | None = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self._scope = f"dram.{config.name}"
        self._banks = [
            Bank(config.timing, config.bus_frequency_hz)
            for _ in range(config.total_banks)
        ]
        self._channel_free_ns = [0.0] * config.channels
        timing = config.timing
        self._refresh_factor = 1.0 + timing.tRFC_ns / timing.tREFI_ns
        # Hot-path constants: counter names (formatting them per access
        # dominated the demand path) and the fixed 64B burst time.
        self._burst_ns = config.burst_time_ns(CACHELINE_BYTES)
        scope = self._scope
        self._name_accesses = f"{scope}.accesses"
        self._name_bytes = f"{scope}.bytes"
        self._name_reads = f"{scope}.reads"
        self._name_writes = f"{scope}.writes"
        self._name_busy = f"{scope}.busy_ns"
        # Row-class counter names, plus the members themselves for
        # identity tests — both enum ``.value`` reads and enum-keyed
        # dict lookups run Python-level descriptors/hashes and showed
        # up in profiles, so the demand path branches on ``is``.
        self._name_row_hit = f"{scope}.row_hit"
        self._name_row_miss = f"{scope}.row_miss"
        self._name_row_conflict = f"{scope}.row_conflict"
        self._name_row = {
            result: f"{scope}.row_{result.value}" for result in RowBufferResult
        }
        # Inlined address-mapping constants (see ``map_address``).
        self._capacity = config.capacity_bytes
        self._channels = config.channels
        self._row_bytes = config.row_bytes
        self._banks_per_channel = (
            config.ranks_per_channel * config.banks_per_rank
        )
        # Deferred demand-access accounting (the batched kernel's bulk
        # stats mode): instead of five counter updates per access, the
        # device tallies plain ints and flushes them in bulk.  All
        # deferred quantities are integral except bus occupancy, which
        # is ``n`` repeats of the constant per-burst time — both flush
        # bit-identically (see ``flush_deferred_stats``).
        self._deferred = False
        self._pending_accesses = 0
        self._pending_reads = 0
        self._pending_writes = 0
        self._pending_row_hit = 0
        self._pending_row_miss = 0
        self._pending_row_conflict = 0

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------

    def map_address(self, address: int) -> tuple[int, int, int]:
        """Map a device-local byte address to (channel, bank, row).

        Channels interleave at cache-line granularity for bandwidth;
        banks interleave at row granularity for bank-level parallelism.
        """
        if address < 0 or address >= self.config.capacity_bytes:
            raise ValueError(
                f"address {address:#x} outside {self.config.name} device "
                f"(capacity {self.config.capacity_bytes:#x})"
            )
        line = address // CACHELINE_BYTES
        channel = line % self.config.channels
        row_global = address // self.config.row_bytes
        banks_per_channel = (
            self.config.ranks_per_channel * self.config.banks_per_rank
        )
        bank_in_channel = row_global % banks_per_channel
        bank = channel * banks_per_channel + bank_in_channel
        row = row_global // banks_per_channel
        return channel, bank, row

    # ------------------------------------------------------------------
    # Demand accesses
    # ------------------------------------------------------------------

    def access(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> float:
        """Service one 64B access; returns its latency in ns."""
        # Inlined ``map_address`` (same arithmetic, same error) — the
        # demand path is hot enough that the extra call and the config
        # attribute chains were measurable.
        if address < 0 or address >= self._capacity:
            raise ValueError(
                f"address {address:#x} outside {self.config.name} device "
                f"(capacity {self._capacity:#x})"
            )
        row_global = address // self._row_bytes
        banks_per_channel = self._banks_per_channel
        channel = (address // CACHELINE_BYTES) % self._channels
        bank = self._banks[
            channel * banks_per_channel + row_global % banks_per_channel
        ]
        row = row_global // banks_per_channel
        # Fused :meth:`Bank.access` (the reference form lives there;
        # same classification, same timing, same state updates) with
        # the row class kept as a small int — the per-access enum costs
        # (``.value`` descriptors, Python-level ``__hash__``) were
        # measurable.
        ready = bank.ready_ns
        start_ns = now_ns if now_ns > ready else ready
        open_row = bank.open_row
        if open_row == row:  # None == int is False, so HIT implies open
            data_ready_ns = start_ns + bank._hit_ns
            bank.ready_ns = data_ready_ns
            row_kind = 0
        elif open_row is None:
            data_ready_ns = start_ns + bank._miss_ns
            bank.ready_ns = start_ns + bank._tras_ns
            row_kind = 1
        else:
            data_ready_ns = start_ns + bank._conflict_ns
            bank.ready_ns = start_ns + bank._tras_ns
            row_kind = 2
        bank.open_row = row
        # The data bus is only occupied for the burst itself; bank
        # preparation (ACT/PRE) overlaps with other banks' bursts.
        burst_ns = self._burst_ns
        channel_free = self._channel_free_ns[channel]
        burst_start_ns = (
            data_ready_ns if data_ready_ns > channel_free else channel_free
        )
        finish_ns = burst_start_ns + burst_ns
        self._channel_free_ns[channel] = finish_ns
        latency_ns = (finish_ns - now_ns) * self._refresh_factor

        if self._deferred:
            self._pending_accesses += 1
            if is_write:
                self._pending_writes += 1
            else:
                self._pending_reads += 1
            if row_kind == 0:
                self._pending_row_hit += 1
            elif row_kind == 1:
                self._pending_row_miss += 1
            else:
                self._pending_row_conflict += 1
            return latency_ns
        counters = self.counters
        counters.add(self._name_accesses)
        counters.add(self._name_bytes, CACHELINE_BYTES)
        counters.add(self._name_writes if is_write else self._name_reads)
        if row_kind == 0:
            counters.add(self._name_row_hit)
        elif row_kind == 1:
            counters.add(self._name_row_miss)
        else:
            counters.add(self._name_row_conflict)
        counters.add(self._name_busy, burst_ns)
        return latency_ns

    # ------------------------------------------------------------------
    # Bulk transfers (segment swaps / cache fills)
    # ------------------------------------------------------------------

    def transfer(self, address: int, num_bytes: int, now_ns: float) -> float:
        """Stream ``num_bytes`` starting at ``address``; returns finish time.

        The transfer is issued as back-to-back cache-line bursts.  It
        holds the channel data bus, so demand accesses arriving during
        the transfer queue behind it — the swap-interference mechanism.
        """
        if num_bytes <= 0:
            raise ValueError("transfer size must be positive")
        if self._deferred:
            # Transfers share the ``busy_ns`` counter with deferred
            # demand accesses; flush the pending tallies first so the
            # float accumulation order matches the undeferred path.
            self.flush_deferred_stats()
        _, bank_index, row = self.map_address(address)
        bank = self._banks[bank_index]
        # Opening cost: the first access in the streamed region.
        data_ready_ns, result = bank.access(row, now_ns)
        # Lines interleave across channels (same mapping as demand
        # accesses), so the stream splits evenly over every channel and
        # runs at the full device rate; within each channel the open row
        # streams back-to-back (a 2KB segment is one row in Table I).
        channels = self.config.channels
        per_channel_bytes = -(-num_bytes // channels)  # ceil division
        rows_touched = max(1, -(-num_bytes // self.config.row_bytes))
        extra_opens = (rows_touched - 1) * self.config.timing.row_miss_cycles
        extra_open_ns = extra_opens / self.config.bus_frequency_hz * 1e9
        stream_ns = self.config.burst_time_ns(per_channel_bytes) + extra_open_ns
        finish_ns = data_ready_ns
        for channel in range(channels):
            burst_start_ns = max(
                data_ready_ns, self._channel_free_ns[channel]
            )
            channel_finish_ns = burst_start_ns + stream_ns
            self._channel_free_ns[channel] = channel_finish_ns
            finish_ns = max(finish_ns, channel_finish_ns)
        bank.ready_ns = max(bank.ready_ns, finish_ns)

        self.counters.add(f"{self._scope}.transfers")
        self.counters.add(f"{self._scope}.transfer_bytes", num_bytes)
        self.counters.add(self._name_bytes, num_bytes)
        self.counters.add(self._name_row[result])
        self.counters.add(self._name_busy, stream_ns * channels)
        return finish_ns

    # ------------------------------------------------------------------
    # Deferred demand-access accounting (bulk stats mode)
    # ------------------------------------------------------------------

    def begin_deferred_stats(self) -> None:
        """Start tallying demand-access counters locally instead of
        updating :attr:`counters` per access (see
        :meth:`flush_deferred_stats` for the exactness argument)."""
        self._deferred = True

    def flush_deferred_stats(self) -> None:
        """Publish the pending tallies to :attr:`counters`.

        Integral tallies (access/read/write/row-class/byte counts) are
        added in one shot — ``n`` repeated ``+1`` float additions equal
        a single ``+n`` exactly for any count below 2**53.  Bus
        occupancy is ``n`` repeats of the constant per-burst time,
        flushed as ``n`` sequential additions (:meth:`CounterSet
        .add_repeat`) because repeated float addition of a constant is
        *not* equivalent to one multiply-add.
        """
        n = self._pending_accesses
        if not n:
            return
        counters = self.counters
        counters.add(self._name_accesses, n)
        counters.add(self._name_bytes, n * CACHELINE_BYTES)
        if self._pending_reads:
            counters.add(self._name_reads, self._pending_reads)
        if self._pending_writes:
            counters.add(self._name_writes, self._pending_writes)
        if self._pending_row_hit:
            counters.add(self._name_row_hit, self._pending_row_hit)
        if self._pending_row_miss:
            counters.add(self._name_row_miss, self._pending_row_miss)
        if self._pending_row_conflict:
            counters.add(self._name_row_conflict, self._pending_row_conflict)
        counters.add_repeat(self._name_busy, self._burst_ns, n)
        self._pending_accesses = 0
        self._pending_reads = 0
        self._pending_writes = 0
        self._pending_row_hit = 0
        self._pending_row_miss = 0
        self._pending_row_conflict = 0

    def end_deferred_stats(self) -> None:
        """Flush and return to per-access counter updates."""
        self.flush_deferred_stats()
        self._deferred = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilisation(self, elapsed_ns: float) -> float:
        """Fraction of elapsed time the device's buses were busy."""
        if elapsed_ns <= 0:
            return 0.0
        busy = self.counters[f"{self._scope}.busy_ns"]
        return min(1.0, busy / (elapsed_ns * self.config.channels))

    def row_hit_rate(self) -> float:
        hits = self.counters[f"{self._scope}.row_hit"]
        total = (
            hits
            + self.counters[f"{self._scope}.row_miss"]
            + self.counters[f"{self._scope}.row_conflict"]
        )
        return hits / total if total else 0.0

    def reset_timing(self) -> None:
        """Clear bank/bus state (counters are preserved)."""
        for bank in self._banks:
            bank.open_row = None
            bank.ready_ns = 0.0
        self._channel_free_ns = [0.0] * self.config.channels
