"""A DRAM device: address mapping, banks, channel data buses, refresh.

The device services two kinds of traffic:

* ``access`` — a 64B demand read/write (one burst on one channel);
* ``transfer`` — a bulk multi-burst transfer used for segment swaps;
  it occupies the channel data bus back-to-back and streams through
  banks row by row, which is what makes concurrent demand accesses
  observe queueing delay (swap interference).

Refresh is modelled statistically: each access is inflated by the
device's refresh duty factor ``tRFC / tREFI``, the standard closed-form
approximation for refresh-induced unavailability.
"""

from __future__ import annotations

from repro.config import DramConfig, CACHELINE_BYTES
from repro.dram.bank import Bank
from repro.stats import CounterSet


class DramDevice:
    """One memory (stacked or off-chip) with Table I organisation."""

    def __init__(self, config: DramConfig, counters: CounterSet | None = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self._scope = f"dram.{config.name}"
        self._banks = [
            Bank(config.timing, config.bus_frequency_hz)
            for _ in range(config.total_banks)
        ]
        self._channel_free_ns = [0.0] * config.channels
        timing = config.timing
        self._refresh_factor = 1.0 + timing.tRFC_ns / timing.tREFI_ns

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------

    def map_address(self, address: int) -> tuple[int, int, int]:
        """Map a device-local byte address to (channel, bank, row).

        Channels interleave at cache-line granularity for bandwidth;
        banks interleave at row granularity for bank-level parallelism.
        """
        if address < 0 or address >= self.config.capacity_bytes:
            raise ValueError(
                f"address {address:#x} outside {self.config.name} device "
                f"(capacity {self.config.capacity_bytes:#x})"
            )
        line = address // CACHELINE_BYTES
        channel = line % self.config.channels
        row_global = address // self.config.row_bytes
        banks_per_channel = (
            self.config.ranks_per_channel * self.config.banks_per_rank
        )
        bank_in_channel = row_global % banks_per_channel
        bank = channel * banks_per_channel + bank_in_channel
        row = row_global // banks_per_channel
        return channel, bank, row

    # ------------------------------------------------------------------
    # Demand accesses
    # ------------------------------------------------------------------

    def access(
        self, address: int, now_ns: float, is_write: bool = False
    ) -> float:
        """Service one 64B access; returns its latency in ns."""
        channel, bank_index, row = self.map_address(address)
        bank = self._banks[bank_index]
        data_ready_ns, result = bank.access(row, now_ns)
        # The data bus is only occupied for the burst itself; bank
        # preparation (ACT/PRE) overlaps with other banks' bursts.
        burst_ns = self.config.burst_time_ns(CACHELINE_BYTES)
        burst_start_ns = max(data_ready_ns, self._channel_free_ns[channel])
        finish_ns = burst_start_ns + burst_ns
        self._channel_free_ns[channel] = finish_ns
        latency_ns = (finish_ns - now_ns) * self._refresh_factor

        self.counters.add(f"{self._scope}.accesses")
        self.counters.add(f"{self._scope}.bytes", CACHELINE_BYTES)
        self.counters.add(
            f"{self._scope}.writes" if is_write else f"{self._scope}.reads"
        )
        self.counters.add(f"{self._scope}.row_{result.value}")
        self.counters.add(f"{self._scope}.busy_ns", burst_ns)
        return latency_ns

    # ------------------------------------------------------------------
    # Bulk transfers (segment swaps / cache fills)
    # ------------------------------------------------------------------

    def transfer(self, address: int, num_bytes: int, now_ns: float) -> float:
        """Stream ``num_bytes`` starting at ``address``; returns finish time.

        The transfer is issued as back-to-back cache-line bursts.  It
        holds the channel data bus, so demand accesses arriving during
        the transfer queue behind it — the swap-interference mechanism.
        """
        if num_bytes <= 0:
            raise ValueError("transfer size must be positive")
        _, bank_index, row = self.map_address(address)
        bank = self._banks[bank_index]
        # Opening cost: the first access in the streamed region.
        data_ready_ns, result = bank.access(row, now_ns)
        # Lines interleave across channels (same mapping as demand
        # accesses), so the stream splits evenly over every channel and
        # runs at the full device rate; within each channel the open row
        # streams back-to-back (a 2KB segment is one row in Table I).
        channels = self.config.channels
        per_channel_bytes = -(-num_bytes // channels)  # ceil division
        rows_touched = max(1, -(-num_bytes // self.config.row_bytes))
        extra_opens = (rows_touched - 1) * self.config.timing.row_miss_cycles
        extra_open_ns = extra_opens / self.config.bus_frequency_hz * 1e9
        stream_ns = self.config.burst_time_ns(per_channel_bytes) + extra_open_ns
        finish_ns = data_ready_ns
        for channel in range(channels):
            burst_start_ns = max(
                data_ready_ns, self._channel_free_ns[channel]
            )
            channel_finish_ns = burst_start_ns + stream_ns
            self._channel_free_ns[channel] = channel_finish_ns
            finish_ns = max(finish_ns, channel_finish_ns)
        bank.ready_ns = max(bank.ready_ns, finish_ns)

        self.counters.add(f"{self._scope}.transfers")
        self.counters.add(f"{self._scope}.transfer_bytes", num_bytes)
        self.counters.add(f"{self._scope}.bytes", num_bytes)
        self.counters.add(f"{self._scope}.row_{result.value}")
        self.counters.add(f"{self._scope}.busy_ns", stream_ns * channels)
        return finish_ns

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilisation(self, elapsed_ns: float) -> float:
        """Fraction of elapsed time the device's buses were busy."""
        if elapsed_ns <= 0:
            return 0.0
        busy = self.counters[f"{self._scope}.busy_ns"]
        return min(1.0, busy / (elapsed_ns * self.config.channels))

    def row_hit_rate(self) -> float:
        hits = self.counters[f"{self._scope}.row_hit"]
        total = (
            hits
            + self.counters[f"{self._scope}.row_miss"]
            + self.counters[f"{self._scope}.row_conflict"]
        )
        return hits / total if total else 0.0

    def reset_timing(self) -> None:
        """Clear bank/bus state (counters are preserved)."""
        for bank in self._banks:
            bank.open_row = None
            bank.ready_ns = 0.0
        self._channel_free_ns = [0.0] * self.config.channels
