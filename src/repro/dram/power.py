"""DRAM energy estimation (the Section I cost/power argument).

The paper's third datacenter motivation is cost and power; swap-happy
designs also burn energy moving segments.  This model turns the device
counters the simulator already collects into an energy estimate, using
the standard decomposition:

* **activate/precharge energy** per row cycle (row misses and
  conflicts open a row; hits reuse it);
* **read/write energy** per byte crossing the data pins;
* **background power** (clocking, peripheral, refresh) integrated over
  elapsed time per device.

Per-bit numbers follow the well-known technology split: die-stacked
DRAM (HBM-class, short TSV interconnect) spends roughly a quarter of
the off-chip (DDR-class, board trace) energy per bit, while its
activate energy is similar.  The absolute joules are indicative; the
comparisons the bench asserts (who moves more bytes, who opens more
rows) are what the counters make exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramConfig
from repro.stats import CounterSet


@dataclass(frozen=True)
class DramPowerParams:
    """Energy parameters of one memory technology."""

    activate_nj: float           # per ACT/PRE row cycle
    transfer_pj_per_byte: float  # per byte on the data pins
    background_mw: float         # static + refresh power, whole device

    def __post_init__(self) -> None:
        if min(self.activate_nj, self.transfer_pj_per_byte) < 0:
            raise ValueError("energies must be non-negative")
        if self.background_mw < 0:
            raise ValueError("background power must be non-negative")


#: Die-stacked (HBM-class) memory: ~4pJ/bit transfer.
STACKED_POWER = DramPowerParams(
    activate_nj=1.0, transfer_pj_per_byte=32.0, background_mw=350.0
)

#: Off-chip (DDR-class) memory: ~15-20pJ/bit transfer.
OFFCHIP_POWER = DramPowerParams(
    activate_nj=1.2, transfer_pj_per_byte=130.0, background_mw=250.0
)


def params_for(config: DramConfig) -> DramPowerParams:
    """Pick technology parameters by the device's role."""
    return STACKED_POWER if config.name == "stacked" else OFFCHIP_POWER


@dataclass(frozen=True)
class EnergyReport:
    """Estimated energy of one device over a simulated interval."""

    device: str
    activate_nj: float
    transfer_nj: float
    background_nj: float

    @property
    def dynamic_nj(self) -> float:
        return self.activate_nj + self.transfer_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.background_nj

    def merge(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            device=f"{self.device}+{other.device}",
            activate_nj=self.activate_nj + other.activate_nj,
            transfer_nj=self.transfer_nj + other.transfer_nj,
            background_nj=self.background_nj + other.background_nj,
        )


class DramPowerModel:
    """Turns a device's counters into an :class:`EnergyReport`."""

    def __init__(
        self, config: DramConfig, params: DramPowerParams | None = None
    ) -> None:
        self.config = config
        self.params = params if params is not None else params_for(config)
        self._scope = f"dram.{config.name}"

    def estimate(
        self, counters: CounterSet, elapsed_ns: float
    ) -> EnergyReport:
        """Energy over an interval whose counters are in ``counters``."""
        if elapsed_ns < 0:
            raise ValueError("elapsed time must be non-negative")
        row_cycles = (
            counters[f"{self._scope}.row_miss"]
            + counters[f"{self._scope}.row_conflict"]
        )
        activate_nj = row_cycles * self.params.activate_nj
        moved_bytes = counters[f"{self._scope}.bytes"]
        transfer_nj = moved_bytes * self.params.transfer_pj_per_byte / 1000.0
        background_nj = self.params.background_mw * elapsed_ns * 1e-9
        return EnergyReport(
            device=self.config.name,
            activate_nj=activate_nj,
            transfer_nj=transfer_nj,
            background_nj=background_nj,
        )


def system_energy(
    counters: CounterSet,
    fast: DramConfig,
    slow: DramConfig,
    elapsed_ns: float,
) -> EnergyReport:
    """Combined fast+slow energy for one simulation interval."""
    fast_report = DramPowerModel(fast).estimate(counters, elapsed_ns)
    slow_report = DramPowerModel(slow).estimate(counters, elapsed_ns)
    return fast_report.merge(slow_report)
