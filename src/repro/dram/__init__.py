"""DRAM device and memory-controller timing substrate.

The paper models a 4GB stacked DRAM and a 20GB off-chip DRAM with the
Table I device timings.  This package provides:

* :class:`repro.dram.bank.Bank` — per-bank open-row state machine;
* :class:`repro.dram.device.DramDevice` — a full device (channels, ranks,
  banks) servicing 64B demand accesses and bulk segment transfers, with
  row-buffer locality, data-bus occupancy, queueing, and a statistical
  refresh penalty;
* :class:`repro.dram.controller.HeterogeneousMemory` — the pair of
  fast/slow devices plus the swap engine's local transfer buffers
  (PoM fast-swap, Section V-D1).

The model is *timestamp-driven* rather than cycle-stepped: callers present
accesses with a monotonically increasing ``now_ns`` and receive the access
latency; banks and channel buses remember when they become free, so bulk
swap traffic naturally delays subsequent demand accesses — the swap
interference effect central to the paper's PoM critique.
"""

from repro.dram.bank import Bank, RowBufferResult
from repro.dram.device import DramDevice
from repro.dram.controller import HeterogeneousMemory, TransferBuffer
from repro.dram.power import DramPowerModel, EnergyReport, system_energy

__all__ = [
    "Bank",
    "RowBufferResult",
    "DramDevice",
    "DramPowerModel",
    "EnergyReport",
    "HeterogeneousMemory",
    "TransferBuffer",
    "system_energy",
]
