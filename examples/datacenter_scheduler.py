#!/usr/bin/env python3
"""Datacenter scenario: OS-visible capacity decides how many jobs fit.

Section I motivates Part-of-Memory architectures with datacenter
throughput: exposing the stacked DRAM to the OS lets the scheduler
admit more jobs and avoids page faults for jobs that mis-declared their
footprints.  This example plays that scenario out:

1. a simple backlog of jobs with declared footprints is admitted
   against the OS-visible capacity of each memory organisation
   (a cache hides the stacked 4GB; PoM/Chameleon expose it);
2. one admitted job under-declared its footprint — on the
   capacity-limited cache organisation it thrashes the SSD, on
   Chameleon it does not;
3. Chameleon additionally uses whatever stays free as a hardware cache,
   so the lightly loaded phases run faster than plain PoM.

Run:
    python examples/datacenter_scheduler.py
"""

from dataclasses import dataclass
from typing import List

from repro.api import (
    MB,
    LongRunSimulator,
    WorkloadSpec,
    build_design,
    build_workload,
    scaled_config,
    simulate,
)


@dataclass
class Job:
    name: str
    declared_mb: float
    actual_mb: float
    base_seconds: float = 120.0


def admit(jobs: List[Job], capacity_mb: float) -> List[Job]:
    """First-fit admission against the declared footprints."""
    admitted, used = [], 0.0
    for job in jobs:
        if used + job.declared_mb <= capacity_mb:
            admitted.append(job)
            used += job.declared_mb
    return admitted


def main() -> None:
    config = scaled_config(fast_mb=4.0)
    total_mb = config.total_capacity_bytes / MB
    cache_visible_mb = config.slow_mem.capacity_bytes / MB

    backlog = [
        Job("render-A", declared_mb=8, actual_mb=8),
        Job("etl-B", declared_mb=6, actual_mb=7.5),  # under-declared!
        Job("train-C", declared_mb=5, actual_mb=5),
        Job("index-D", declared_mb=4, actual_mb=4),
    ]

    print("== 1. admission: OS-visible capacity ==")
    for label, capacity in (
        (f"DRAM cache   ({cache_visible_mb:.0f}MB visible)", cache_visible_mb),
        (f"PoM/Chameleon ({total_mb:.0f}MB visible)", total_mb),
    ):
        admitted = admit(backlog, capacity)
        print(
            f"  {label}: admits {len(admitted)}/{len(backlog)} jobs "
            f"({', '.join(job.name for job in admitted)})"
        )

    print("\n== 2. the under-declared job (etl-B) ==")
    for label, capacity_mb in (
        ("DRAM cache", cache_visible_mb),
        ("PoM/Chameleon", total_mb),
    ):
        # Admission packed jobs by declared sizes; compute the slack
        # actually available to etl-B under each organisation.
        other = sum(j.actual_mb for j in backlog if j.name != "etl-B")
        available = capacity_mb - min(other, capacity_mb - 1)
        spec = WorkloadSpec(
            name="etl-B",
            footprint_bytes=int(7.5 * MB),
            base_seconds=120.0,
            page_touch_rate=5e4,
            locality=0.6,
        )
        run = LongRunSimulator(int(max(1.0, available) * MB)).run(spec)
        print(
            f"  {label:<14}: {available:5.1f}MB left for a 7.5MB job -> "
            f"{run.page_faults:8.0f} faults, "
            f"CPU util {run.cpu_utilisation:6.1%}, "
            f"runtime {run.duration_seconds:7.1f}s"
        )

    print("\n== 3. a lightly loaded phase (free space as cache) ==")
    # Only half the memory is allocated: Chameleon harvests the rest.
    workload = build_workload(
        "bwaves", config=config, footprint_override_fraction=0.5
    )
    for label in ("Alloy-Cache", "PoM", "Chameleon-Opt"):
        arch = build_design(label, config)
        result = simulate(
            design=arch,
            workload=workload,
            accesses_per_core=1500,
            warmup_per_core=1500,
        )
        cache = (
            f", {result.cache_mode_fraction:.0%} groups caching"
            if result.cache_mode_fraction is not None
            else ""
        )
        print(
            f"  {arch.name:<14}: hit {result.fast_hit_rate:6.1%}, "
            f"geomean IPC {result.geomean_ipc:.4f}{cache}"
        )

    print(
        "\nPoM capacity admits more jobs and absorbs mis-declared "
        "footprints; Chameleon keeps cache-like speed when memory is "
        "not fully committed."
    )


if __name__ == "__main__":
    main()
