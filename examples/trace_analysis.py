#!/usr/bin/env python3
"""Trace tooling tour: synthesise, persist, characterise, filter.

Shows the substrate pipeline underneath the experiments:

1. synthesise a Table II benchmark's access stream and measure that it
   hits its catalogue targets (MPKI, write mix, spatial runs);
2. round-trip it through the gzip trace format;
3. filter it through the L1/L2/L3 hierarchy and compare pre- vs
   post-hierarchy profiles (the caches strip short-range reuse);
4. replay a sharing-heavy variant through the MESI-coherent hierarchy
   and count the coherence traffic rate-mode workloads avoid.

Everything imports from the stable :mod:`repro.api` facade.

Run:
    python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.api import (
    CacheHierarchy,
    CoherentHierarchy,
    benchmark,
    build_workload,
    characterize,
    read_trace,
    scaled_config,
    write_trace,
)


def main() -> None:
    config = scaled_config()
    spec = benchmark("GemsFDTD")
    workload = build_workload(spec, config=config)

    # 1. Synthesise and characterise.
    records = list(workload.generators()[0].stream(20_000))
    profile = characterize(records)
    print(f"== {spec.name} synthetic stream ==")
    print(f"  {profile.summary()}")
    print(
        f"  catalogue targets: MPKI {spec.llc_mpki}, writes "
        f"{spec.write_fraction:.0%}, run {spec.run_length} lines"
    )

    # 2. Round-trip through the trace format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gems.trace.gz"
        write_trace(path, records)
        replayed = list(read_trace(path))
        size_kb = path.stat().st_size / 1024
        print(
            f"\n== trace file round-trip ==\n"
            f"  {len(replayed):,} records, {size_kb:.0f}KB gzip, "
            f"lossless: {replayed == records}"
        )

    # 3. Filter through the cache hierarchy.
    hierarchy = CacheHierarchy(config, num_cores=1)
    misses = list(hierarchy.filter_stream(0, records))
    post = characterize(misses)
    print("\n== after the L1/L2/L3 hierarchy ==")
    print(f"  {post.summary()}")
    print(
        f"  the hierarchy absorbed "
        f"{1 - len(misses) / len(records):.1%} of accesses and cut "
        f"page reuse from {profile.reuse_fraction:.1%} to "
        f"{post.reuse_fraction:.1%}"
    )

    # 4. Coherence traffic under sharing.
    coherent = CoherentHierarchy(config, num_cores=4)
    shared_lines = 64
    for round_index in range(50):
        for core in range(4):
            for line in range(shared_lines):
                coherent.access(
                    core,
                    0x200000 + line * 64,
                    is_write=(core == round_index % 4 and line % 4 == 0),
                )
    counters = coherent.counters
    print("\n== MESI traffic under a shared hot region (4 cores) ==")
    print(
        f"  invalidations {counters['mesi.invalidations']:.0f}, "
        f"downgrades {counters['mesi.downgrades']:.0f}, "
        f"ownership writebacks "
        f"{counters['mesi.ownership_writebacks']:.0f}"
    )
    print(
        "  (the paper's rate-mode workloads use disjoint footprints, so "
        "their coherence traffic is zero)"
    )


if __name__ == "__main__":
    main()
