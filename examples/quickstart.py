#!/usr/bin/env python3
"""Quickstart: simulate one workload on Chameleon and its baselines.

Builds the paper's evaluated system at laptop scale (every Table I
ratio preserved), places a 12-copy rate-mode `mcf` workload on it, and
compares the Part-of-Memory baseline, Chameleon, and Chameleon-Opt —
the Section VI-B experiment in miniature, written entirely against the
stable :mod:`repro.api` facade (docs/API.md).

Run:
    python examples/quickstart.py
"""

from repro import api


def main() -> None:
    # The paper's system, proportionally scaled: 4MB stacked DRAM +
    # 20MB off-chip DRAM, 2KB segments, 1:5 capacity ratio.
    config = api.scaled_config(fast_mb=4.0)
    print(
        f"system: {config.fast_mem.capacity_bytes >> 20}MB stacked + "
        f"{config.slow_mem.capacity_bytes >> 20}MB off-chip, "
        f"{config.num_segment_groups} segment groups of "
        f"{config.segments_per_group} x {config.segment_bytes}B segments"
    )

    # A Table II workload: 12 copies of mcf (59.8 LLC-MPKI, 19.65GB
    # footprint on the paper's 24GB machine), scattered over physical
    # memory like a long-running system would.
    workload = api.build_workload("mcf", config=config)
    print(
        f"workload: {workload.name} x{workload.num_copies}, "
        f"footprint {workload.footprint_bytes >> 20}MB "
        f"({workload.occupancy:.0%} of OS-visible memory)\n"
    )

    print(
        f"{'design':<16} {'stacked hit':>12} {'geomean IPC':>12} "
        f"{'swaps':>8} {'AMAT [ns]':>10} {'cache-mode':>11}"
    )
    for label in ("PoM", "Chameleon", "Chameleon-Opt"):
        result = api.simulate(
            design=label,
            workload=workload,
            config=config,
            accesses_per_core=2000,
            warmup_per_core=2000,
        )
        cache_fraction = (
            f"{result.cache_mode_fraction:.1%}"
            if result.cache_mode_fraction is not None
            else "-"
        )
        print(
            f"{label:<16} {result.fast_hit_rate:>11.1%} "
            f"{result.geomean_ipc:>12.4f} {result.swaps:>8.0f} "
            f"{result.average_latency_ns:>10.0f} {cache_fraction:>11}"
        )

    print(
        "\nChameleon converts OS-free segment groups into a hardware "
        "cache: fewer swaps, higher stacked hit rate, higher IPC."
    )


if __name__ == "__main__":
    main()
