#!/usr/bin/env python3
"""Drive the simulation service end to end: boot, simulate, coalesce,
drain, restart, resume.

Starts ``python -m repro.experiments serve`` as a subprocess, then
walks the service's whole lifecycle with the blocking
:class:`repro.serve.Client`:

1. ``POST /v1/simulate`` one cell and check the response matches a
   direct in-process :func:`repro.api.simulate` of the same cell;
2. fire several identical concurrent requests and show coalescing —
   one executor cell, byte-identical response bodies;
3. run a small ``POST /v1/sweep`` grid (warm cells answer from the
   result cache without a worker);
4. SIGTERM the server mid-queue, restart it on the same cache
   directory, and watch the checkpointed job finish under its old id.

Run (fast — tiny per-core access counts):
    python examples/serve_client.py
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import api  # noqa: E402
from repro.serve import Client  # noqa: E402

#: One cheap cell: ~tens of ms of simulated work.
SCALE = {
    "fast_mb": 1.0,
    "accesses_per_core": 300,
    "warmup_per_core": 300,
    "num_copies": 4,
}


def start_server(cache_dir: Path, *, hold: bool = False) -> tuple:
    """Boot a serve subprocess; returns (process, port)."""
    argv = [
        sys.executable, "-m", "repro.experiments", "serve",
        "--port", "0", "--cache-dir", str(cache_dir),
    ]
    if hold:
        argv.append("--hold")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(REPO),
        env=env,
    )
    line = proc.stdout.readline()  # "[serve] listening on http://host:port"
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"server failed to boot: {line!r}")
    return proc, int(match.group(1))


def stop_server(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    return out


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    cache_dir = workdir / "cache"

    # ------------------------------------------------------------------
    # 1. One cell over HTTP == the same cell in-process.
    # ------------------------------------------------------------------
    proc, port = start_server(cache_dir)
    client = Client(port=port)
    print(f"server up on port {port}: {client.healthz()['status']}")

    cell = {**SCALE, "design": "Chameleon", "workload": "mcf"}
    served = client.simulate(cell)
    direct = api.simulate(
        design="Chameleon",
        workload="mcf",
        config=api.scaled_config(fast_mb=SCALE["fast_mb"]),
        accesses_per_core=SCALE["accesses_per_core"],
        warmup_per_core=SCALE["warmup_per_core"],
        num_copies=SCALE["num_copies"],
    )
    assert served["result"] == direct.to_dict(), "served != direct simulate"
    print(f"simulate Chameleon/mcf -> geomean IPC {direct.geomean_ipc:.3f} "
          "(matches in-process api.simulate)")

    # ------------------------------------------------------------------
    # 2. Coalescing: concurrent duplicates share one executor cell.
    # ------------------------------------------------------------------
    dup = {**SCALE, "design": "Chameleon", "workload": "bwaves",
           "wait": True}
    raws = [None] * 4

    def post(i):
        raws[i] = client.request("POST", "/v1/simulate", dup)[2]

    threads = [threading.Thread(target=post, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(raws)) == 1, "coalesced responses differ"
    snapshot = client.metrics()
    print(f"coalescing: 4 concurrent POSTs -> "
          f"{snapshot['requests']['coalesced']} coalesced, "
          f"byte-identical bodies")

    # ------------------------------------------------------------------
    # 3. A sweep grid; the warm cells never touch a worker.
    # ------------------------------------------------------------------
    grid = client.sweep({**SCALE, "designs": ["Chameleon", "PoM"],
                         "workloads": ["mcf", "bwaves"]})
    warm = client.metrics()
    print(f"sweep 2x2 -> {len(grid['results'])} cells "
          f"(cache_hit_ratio {warm['cache_hit_ratio']:.2f}, "
          f"p50 {warm['latency']['p50_ms']:.0f}ms)")
    out = stop_server(proc)
    print(f"first server drained cleanly: {out.strip().splitlines()[-1]}")

    # ------------------------------------------------------------------
    # 4. Drain and resume: --hold queues without dispatching, SIGTERM
    #    checkpoints the queue, a restart serves it to completion.
    # ------------------------------------------------------------------
    proc, port = start_server(cache_dir, hold=True)
    holding = Client(port=port)
    queued = holding.simulate(
        {**SCALE, "design": "PoM", "workload": "comd", "wait": False}
    )
    job_id = queued["job"]
    print(f"held server queued job {job_id}")
    stop_server(proc)
    checkpoint = cache_dir / "serve-queue.jsonl"
    assert checkpoint.exists(), "drain did not checkpoint the queue"
    print(f"SIGTERM checkpointed the queue -> {checkpoint.name}")

    proc, port = start_server(cache_dir)
    resumed = Client(port=port)
    done = resumed.wait_job(job_id, timeout=120)
    assert done["status"] == "done", f"resumed job ended {done['status']}"
    assert not checkpoint.exists(), "checkpoint not consumed on resume"
    print(f"restarted server finished checkpointed job {job_id}: "
          f"status={done['status']}")
    stop_server(proc)
    print("\nserve lifecycle complete: simulate, coalesce, sweep, "
          "drain, resume all verified")


if __name__ == "__main__":
    main()
