#!/usr/bin/env python3
"""Watch segment groups flip between PoM and cache mode live.

The paper's workloads allocate everything up front, so Figure 16's mode
distribution is static during measurement.  This example shows the
*dynamic* behaviour the co-design enables: a workload that allocates,
computes, and frees in phases, with Chameleon-Opt converting the freed
space into cache within the same run — the ISA-Alloc/ISA-Free
transition machinery of Figures 8-14 exercised end to end.

Everything reported here is rendered from the telemetry event stream
(docs/TELEMETRY.md): an ``EventLog`` drained per phase for the
transition counts, and a ``TimelineRecorder`` folding the engine's
epoch samples into the closing per-epoch table.

Run:
    python examples/mode_timeline.py
"""

from collections import Counter

from repro.api import (
    EventBus,
    EventLog,
    TimelineRecorder,
    build_design,
    build_workload,
    scaled_config,
    simulate,
)


def phase(label, arch, log, workload=None, accesses=1200):
    """Run one phase, then report it from the drained event stream."""
    if workload is not None:
        result = simulate(
            design=arch,
            workload=workload,
            accesses_per_core=accesses,
            warmup_per_core=0,
            apply_isa=False,  # allocations are driven explicitly below
            telemetry=arch.telemetry,
        )
        hit = f"hit {result.fast_hit_rate:6.1%}"
    else:
        hit = " " * 10
    cache_fraction, pom_fraction = arch.mode_distribution()
    print(
        f"  {label:<34} {hit}  cache-mode {cache_fraction:6.1%} / "
        f"PoM-mode {pom_fraction:6.1%}"
    )

    counts = Counter()
    for event in log.drain():
        kind = event.kind
        if kind == "mode_transition":
            counts[f"-> {event.mode}"] += 1
        elif kind == "segment_swap":
            counts[f"{event.reason} swaps"] += 1
        elif kind == "isa_alloc":
            counts["isa allocs" if event.alloc else "isa frees"] += 1
    if counts:
        summary = ", ".join(
            f"{count} {name}" for name, count in sorted(counts.items())
        )
        print(f"    {'events:':<12} {summary}")


def main() -> None:
    config = scaled_config(fast_mb=4.0)
    arch = build_design("Chameleon-Opt", config)

    # One bus, three consumers: the raw log (drained per phase), the
    # epoch timeline, and the architecture itself as emitter — wired
    # before the first ISA storm so allocation traffic is captured too.
    bus = EventBus()
    log = bus.subscribe(EventLog())
    recorder = bus.subscribe(TimelineRecorder())
    arch.telemetry = bus

    # Two co-resident tenants with different lifetimes and disjoint
    # physical footprints.
    tenant_a = build_workload(
        "bwaves", config=config, footprint_override_fraction=0.45, seed=1
    )
    tenant_b = build_workload(
        "GemsFDTD",
        config=config,
        footprint_override_fraction=0.45,
        seed=2,
        exclude_segments=set(tenant_a.segments),
    )

    print("Chameleon-Opt mode distribution over a tenant lifecycle:\n")

    # Phase 1: tenant A allocates and runs; more than half of memory is
    # free, so most groups cache.
    tenant_a.apply_allocations(arch)
    phase("A allocated (45% occupancy)", arch, log, tenant_a)

    # Phase 2: tenant B arrives; memory is now ~90% full and far fewer
    # groups keep a free segment to cache with.
    tenant_b.apply_allocations(arch)
    phase("A + B allocated (90% occupancy)", arch, log, tenant_b)

    # Phase 3: tenant A finishes and frees its pages (ISA-Free storm);
    # Chameleon-Opt proactively remaps and re-enters cache mode.
    tenant_a.release_allocations(arch)
    phase("A freed, B still running", arch, log, tenant_b)

    # Phase 4: tenant B finishes too; the machine is idle and every
    # touched group offers its stacked slot as cache again.
    tenant_b.release_allocations(arch)
    phase("all freed", arch, log)

    # The engine emitted ~20 EpochSamples per measured phase; the
    # recorder folded the structural stream into per-epoch channels.
    timeline = recorder.timeline
    print(f"\nPer-epoch timeline ({recorder.epochs} epochs recorded):")
    print(
        f"  {'epoch':>5} {'hit rate':>9} {'swaps':>6} "
        f"{'to_cache':>9} {'to_pom':>7}"
    )
    step = max(1, recorder.epochs // 12)
    for index in range(0, recorder.epochs, step):
        print(
            f"  {index + 1:>5} "
            f"{timeline.series('fast_hit_rate')[index]:>9.1%} "
            f"{timeline.series('swaps')[index]:>6.0f} "
            f"{timeline.series('to_cache')[index]:>9.0f} "
            f"{timeline.series('to_pom')[index]:>7.0f}"
        )


if __name__ == "__main__":
    main()
