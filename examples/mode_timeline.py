#!/usr/bin/env python3
"""Watch segment groups flip between PoM and cache mode live.

The paper's workloads allocate everything up front, so Figure 16's mode
distribution is static during measurement.  This example shows the
*dynamic* behaviour the co-design enables: a workload that allocates,
computes, and frees in phases, with Chameleon-Opt converting the freed
space into cache within the same run — the ISA-Alloc/ISA-Free
transition machinery of Figures 8-14 exercised end to end.

Run:
    python examples/mode_timeline.py
"""

from repro import (
    ChameleonOptArchitecture,
    benchmark,
    build_workload,
    scaled_config,
    simulate,
)


def phase(label, arch, workload=None, accesses=1200):
    """Run one phase and report the mode distribution afterwards."""
    if workload is not None:
        result = simulate(
            arch,
            workload,
            accesses_per_core=accesses,
            warmup_per_core=0,
            apply_isa=False,  # allocations are driven explicitly below
        )
        hit = f"hit {result.fast_hit_rate:6.1%}"
    else:
        hit = " " * 10
    cache_fraction, pom_fraction = arch.mode_distribution()
    print(
        f"  {label:<34} {hit}  cache-mode {cache_fraction:6.1%} / "
        f"PoM-mode {pom_fraction:6.1%}"
    )


def main() -> None:
    config = scaled_config(fast_mb=4.0)
    arch = ChameleonOptArchitecture(config)

    # Two co-resident tenants with different lifetimes and disjoint
    # physical footprints.
    tenant_a = build_workload(
        config, benchmark("bwaves"), footprint_override_fraction=0.45, seed=1
    )
    tenant_b = build_workload(
        config,
        benchmark("GemsFDTD"),
        footprint_override_fraction=0.45,
        seed=2,
        exclude_segments=set(tenant_a.segments),
    )

    isa_totals = {"alloc": 0.0, "free": 0.0, "remap": 0.0}

    def note_isa():
        # simulate() resets architecture counters at its warmup
        # boundary, so ISA activity is banked right after each storm.
        isa_totals["alloc"] += arch.counters["isa.alloc_seen"]
        isa_totals["free"] += arch.counters["isa.free_seen"]
        isa_totals["remap"] += arch.counters[
            "chameleon_opt.proactive_remaps"
        ]
        arch.counters.reset()

    print("Chameleon-Opt mode distribution over a tenant lifecycle:\n")

    # Phase 1: tenant A allocates and runs; more than half of memory is
    # free, so most groups cache.
    tenant_a.apply_allocations(arch)
    note_isa()
    phase("A allocated (45% occupancy)", arch, tenant_a)

    # Phase 2: tenant B arrives; memory is now ~90% full and far fewer
    # groups keep a free segment to cache with.
    tenant_b.apply_allocations(arch)
    note_isa()
    phase("A + B allocated (90% occupancy)", arch, tenant_b)

    # Phase 3: tenant A finishes and frees its pages (ISA-Free storm);
    # Chameleon-Opt proactively remaps and re-enters cache mode.
    tenant_a.release_allocations(arch)
    note_isa()
    phase("A freed, B still running", arch, tenant_b)

    # Phase 4: tenant B finishes too; the machine is idle and every
    # touched group offers its stacked slot as cache again.
    tenant_b.release_allocations(arch)
    note_isa()
    phase("all freed", arch)

    print(
        f"\nISA events seen: {isa_totals['alloc']:.0f} allocs, "
        f"{isa_totals['free']:.0f} frees, "
        f"{isa_totals['remap']:.0f} proactive remaps"
    )


if __name__ == "__main__":
    main()
