#!/usr/bin/env python3
"""Capacity planning: how much DRAM does this machine actually need?

Section III-C shows that insufficient OS-visible capacity is
catastrophic (SSD thrashing, CPUs stuck in the uninterruptible "D"
state) while over-provisioning is wasted money.  Section I argues PoM
architectures let a 4GB-stacked + 12GB-off-chip machine replace a
4GB + 16GB one.  This example reproduces that planning exercise with
the long-run model behind Figures 4 and 5.

Run:
    python examples/capacity_planning.py
"""

from repro.api import (
    GB,
    LongRunSimulator,
    WorkloadSpec,
    benchmark,
    improvement_percent,
)

#: The 12 workloads on Figure 4's X axis.
FIG4_WORKLOADS = (
    "bwaves", "leslie3d", "GemsFDTD", "lbm", "mcf", "hpccg",
    "SP", "stream", "cloverleaf", "comd", "miniFE", "cactusADM",
)

#: Capacities swept in Figures 4 and 5 (GB).
CAPACITIES_GB = (16, 18, 20, 22, 24, 26, 28)


def longrun_spec(name: str, base_seconds: float = 3600.0) -> WorkloadSpec:
    """A long-run spec from the Table II catalogue: the page-touch
    rate scales with memory intensity (LLC-MPKI)."""
    spec = benchmark(name)
    return WorkloadSpec(
        name=name,
        footprint_bytes=int(spec.footprint_gb * GB),
        base_seconds=base_seconds,
        page_touch_rate=4.0e5 + 2.0e4 * spec.llc_mpki,
        locality=0.6,
    )


def main() -> None:
    specs = [longrun_spec(name, base_seconds=3600.0) for name in FIG4_WORKLOADS]

    print("== capacity sweep (Figure 4/5 reproduction) ==")
    print(
        f"{'capacity':>9} {'avg improvement':>16} {'avg CPU util':>13} "
        f"{'total faults [M]':>17}"
    )
    baselines = [LongRunSimulator(16 * GB).run(spec) for spec in specs]
    chosen_gb = None
    for gb in CAPACITIES_GB:
        simulator = LongRunSimulator(int(gb * GB))
        runs = [simulator.run(spec) for spec in specs]
        improvement = sum(
            improvement_percent(base, run)
            for base, run in zip(baselines, runs)
        ) / len(runs)
        utilisation = sum(r.cpu_utilisation for r in runs) / len(runs)
        faults = sum(r.page_faults for r in runs) / 1e6
        marker = ""
        if chosen_gb is None and faults == 0.0:
            chosen_gb = gb
            marker = "  <- smallest fault-free capacity"
        print(
            f"{gb:>7}GB {improvement:>15.1f}% {utilisation:>12.1%} "
            f"{faults:>17.2f}{marker}"
        )

    assert chosen_gb is not None
    print(
        f"\nThe workload mix needs {chosen_gb}GB of OS-visible memory; "
        "beyond that, performance saturates (paper: 75.4% improvement "
        "at 24GB, flat at 26/28GB)."
    )

    print("\n== the PoM cost argument (Section I) ==")
    # A cache organisation hides the stacked 4GB: to present 24GB to
    # the OS it must buy 24GB of off-chip DRAM.  A PoM organisation
    # reaches the same 24GB with only 20GB off-chip.
    stacked_gb = 4
    print(
        f"  DRAM cache   : {chosen_gb}GB off-chip + {stacked_gb}GB "
        f"stacked (hidden)  -> {chosen_gb + stacked_gb}GB purchased"
    )
    print(
        f"  PoM/Chameleon: {chosen_gb - stacked_gb}GB off-chip + "
        f"{stacked_gb}GB stacked (visible) -> {chosen_gb}GB purchased"
    )
    print(
        f"  saving: {stacked_gb}GB of off-chip DRAM per node at equal "
        "OS-visible capacity"
    )


if __name__ == "__main__":
    main()
