"""Shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` to build an editable wheel; this
offline environment lacks it, so ``python setup.py develop`` provides
the equivalent editable install.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
