"""Tests for the MESI coherence layer (Table I)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import scaled_config
from repro.cachesim.coherence import CoherentHierarchy, MesiState


@pytest.fixture
def hierarchy():
    return CoherentHierarchy(scaled_config(), num_cores=4)


ADDR = 0x4000


class TestMesiTransitions:
    def test_first_read_loads_exclusive(self, hierarchy):
        hierarchy.access(0, ADDR)
        assert hierarchy.state_of(ADDR) is MesiState.EXCLUSIVE
        assert hierarchy.sharers_of(ADDR) == {0}

    def test_second_reader_shares(self, hierarchy):
        hierarchy.access(0, ADDR)
        hierarchy.access(1, ADDR)
        assert hierarchy.state_of(ADDR) is MesiState.SHARED
        assert hierarchy.sharers_of(ADDR) == {0, 1}

    def test_write_takes_modified(self, hierarchy):
        hierarchy.access(0, ADDR, is_write=True)
        assert hierarchy.state_of(ADDR) is MesiState.MODIFIED
        assert hierarchy.sharers_of(ADDR) == {0}

    def test_write_invalidates_sharers(self, hierarchy):
        hierarchy.access(0, ADDR)
        hierarchy.access(1, ADDR)
        hierarchy.access(2, ADDR, is_write=True)
        assert hierarchy.sharers_of(ADDR) == {2}
        assert hierarchy.counters["mesi.invalidations"] == 2
        # The invalidated cores' private copies are gone.
        assert not hierarchy.l1[0].lookup(ADDR)
        assert not hierarchy.l1[1].lookup(ADDR)

    def test_invalidated_core_misses_privately(self, hierarchy):
        hierarchy.access(0, ADDR)
        hierarchy.access(1, ADDR, is_write=True)
        # Core 0 must reload (L3 still has the line, so no memory trip).
        miss, memory = hierarchy.access(0, ADDR)
        assert not miss
        assert hierarchy.state_of(ADDR) is MesiState.SHARED

    def test_read_downgrades_modified_owner(self, hierarchy):
        hierarchy.access(0, ADDR, is_write=True)
        hierarchy.access(1, ADDR)
        assert hierarchy.state_of(ADDR) is MesiState.SHARED
        assert hierarchy.counters["mesi.downgrades"] == 1
        assert hierarchy.counters["mesi.ownership_writebacks"] == 1

    def test_write_after_write_moves_ownership(self, hierarchy):
        hierarchy.access(0, ADDR, is_write=True)
        hierarchy.access(1, ADDR, is_write=True)
        assert hierarchy.state_of(ADDR) is MesiState.MODIFIED
        assert hierarchy.sharers_of(ADDR) == {1}
        assert hierarchy.counters["mesi.ownership_writebacks"] == 1

    def test_silent_write_hit_in_modified(self, hierarchy):
        hierarchy.access(0, ADDR, is_write=True)
        before = hierarchy.counters.snapshot()
        hierarchy.access(0, ADDR, is_write=True)
        delta = hierarchy.counters.diff(before)
        assert not any(key.startswith("mesi.") for key in delta)

    def test_untouched_line_invalid(self, hierarchy):
        assert hierarchy.state_of(0x9999) is MesiState.INVALID

    def test_core_range_checked(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.access(99, ADDR)

    def test_disjoint_footprints_have_no_coherence_traffic(self, hierarchy):
        # The paper's rate-mode workloads touch disjoint pages: MESI
        # stays silent.
        for core in range(4):
            for index in range(50):
                hierarchy.access(
                    core, 0x100000 * (core + 1) + index * 64, index % 3 == 0
                )
        assert hierarchy.counters["mesi.invalidations"] == 0
        assert hierarchy.counters["mesi.downgrades"] == 0


class TestMesiProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # core
                st.integers(min_value=0, max_value=15),  # line index
                st.booleans(),                           # write?
            ),
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_directory_invariants_under_random_sharing(self, events):
        hierarchy = CoherentHierarchy(scaled_config(), num_cores=4)
        for core, line, write in events:
            hierarchy.access(core, line * 64, write)
            hierarchy.validate()
        # Every directory entry's sharers actually are caches that may
        # hold the line (weak check: no sharer set exceeds core count).
        for line in range(16):
            sharers = hierarchy.sharers_of(line * 64)
            assert len(sharers) <= 4

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_single_writer_multiple_readers(self, events):
        hierarchy = CoherentHierarchy(scaled_config(), num_cores=4)
        for core, write in events:
            hierarchy.access(core, ADDR, write)
            state = hierarchy.state_of(ADDR)
            sharers = hierarchy.sharers_of(ADDR)
            if state is MesiState.MODIFIED:
                assert len(sharers) == 1  # single-writer invariant
            hierarchy.validate()
