"""The conformance subsystem: canonical digests, the golden store,
sampling, the check runner's verdicts, the fuzz generator, and the
CLI exit codes — including the mandated regression test that an
injected digest mismatch makes ``check`` exit non-zero.
"""

import json
import shutil
from pathlib import Path

import pytest

import repro
from repro.check import (
    GOLDEN_BLESSED,
    GOLDEN_MATCH,
    GOLDEN_MISMATCH,
    REPORT_SCHEMA_VERSION,
    GoldenRecord,
    GoldenStore,
    canonical_json_bytes,
    cell_key,
    conformance_grid,
    events_digest,
    generate_cases,
    payload_digest,
    result_digest,
    run_check,
    sample_cells,
    scale_identity,
)
from repro.check.fuzz import ACCESSES_RANGE, COPIES_CHOICES, FAST_MB_CHOICES
from repro.experiments.__main__ import main
from repro.experiments.designs import REGISTRY
from repro.experiments.runner import SMOKE_SCALE
from tests.conftest import tiny_scale

COMMITTED_GOLDENS = Path(__file__).parent / "goldens"

TINY = tiny_scale(accesses=60, num_copies=1)


class _FakeResult:
    def __init__(self, payload):
        self.payload = payload

    def to_dict(self):
        return self.payload


class TestCanonicalDigests:
    def test_key_order_never_leaks(self):
        assert canonical_json_bytes({"b": 1, "a": 2}) == canonical_json_bytes(
            {"a": 2, "b": 1}
        )
        assert payload_digest({"b": 1, "a": 2}) == payload_digest(
            {"a": 2, "b": 1}
        )

    def test_value_changes_change_the_digest(self):
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})
        assert payload_digest({"a": 1.0}) != payload_digest({"a": 1.0000001})

    def test_result_digest_accepts_object_or_mapping(self):
        payload = {"x": 3, "hit_rate": 0.5}
        assert result_digest(_FakeResult(payload)) == result_digest(payload)

    def test_events_digest_is_order_sensitive(self):
        a = {"kind": "epoch", "epoch": 0}
        b = {"kind": "epoch", "epoch": 1}
        assert events_digest([a, b]) != events_digest([b, a])

    def test_infrastructure_events_are_transparent(self):
        semantic = [{"kind": "epoch", "epoch": 0}]
        noisy = [
            {"kind": "arena", "action": "attach"},
            semantic[0],
            {"kind": "job_retry", "attempt": 2},
            {"kind": "serve", "action": "admit"},
        ]
        assert events_digest(noisy) == events_digest(semantic)

    def test_empty_stream_digest_is_stable(self):
        assert events_digest([]) == events_digest(
            [{"kind": "arena", "action": "attach"}]
        )


class TestGoldenStore:
    def test_put_get_round_trip(self, runtime_dirs):
        store = GoldenStore(runtime_dirs.goldens)
        record = store.put(TINY, "PoM", "mcf", "a" * 64, "b" * 64, "initial")
        loaded = store.get(TINY, "PoM", "mcf")
        assert loaded == record
        assert loaded.note == "initial"
        assert loaded.recorded_version == repro.__version__
        assert len(store) == 1

    def test_blessing_requires_a_note(self, runtime_dirs):
        store = GoldenStore(runtime_dirs.goldens)
        with pytest.raises(ValueError, match="note"):
            store.put(TINY, "PoM", "mcf", "a" * 64, "b" * 64, "  ")

    def test_missing_cell_is_none_damage_raises(self, runtime_dirs):
        store = GoldenStore(runtime_dirs.goldens)
        assert store.get(TINY, "PoM", "mcf") is None
        store.put(TINY, "PoM", "mcf", "a" * 64, "b" * 64, "x")
        path = store.path_for(TINY, "PoM", "mcf")
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            store.get(TINY, "PoM", "mcf")

    def test_key_is_version_independent(self, runtime_dirs, monkeypatch):
        """The store's whole point: a version bump must NOT retire a
        golden (the result cache does the opposite on purpose)."""
        store = GoldenStore(runtime_dirs.goldens)
        store.put(TINY, "PoM", "mcf", "a" * 64, "b" * 64, "recorded at 1.5")
        before = cell_key(TINY, "PoM", "mcf")
        monkeypatch.setattr(repro, "__version__", "99.0.0")
        assert cell_key(TINY, "PoM", "mcf") == before
        survived = store.get(TINY, "PoM", "mcf")
        assert survived is not None
        assert survived.recorded_version != "99.0.0"

    def test_key_distinguishes_cell_and_scale_but_not_siblings(self):
        base = cell_key(TINY, "PoM", "mcf")
        assert base != cell_key(TINY, "Chameleon", "mcf")
        assert base != cell_key(TINY, "PoM", "bwaves")
        assert base != cell_key(tiny_scale(accesses=61, num_copies=1),
                                "PoM", "mcf")
        # Sweep siblings never affect a cell's own result.
        sibling = tiny_scale(
            accesses=60, num_copies=1, benchmarks=("mcf", "bwaves")
        )
        assert base == cell_key(sibling, "PoM", "mcf")
        assert "benchmarks" not in scale_identity(TINY)

    def test_record_schema_gate(self):
        with pytest.raises(ValueError, match="unsupported golden schema"):
            GoldenRecord.from_dict({"schema": None})


class TestSampling:
    def test_grid_covers_full_registry(self):
        grid = conformance_grid(SMOKE_SCALE)
        assert len(grid) == len(REGISTRY.labels()) * len(
            SMOKE_SCALE.benchmarks
        )

    def test_sample_is_deterministic_subset_in_grid_order(self):
        grid = conformance_grid(SMOKE_SCALE)
        a = sample_cells(SMOKE_SCALE, 6, seed=0)
        assert a == sample_cells(SMOKE_SCALE, 6, seed=0)
        assert a != sample_cells(SMOKE_SCALE, 6, seed=1)
        assert len(a) == 6
        assert [c for c in grid if c in a] == a

    def test_zero_or_oversized_sample_is_the_whole_grid(self):
        grid = conformance_grid(SMOKE_SCALE)
        assert sample_cells(SMOKE_SCALE, 0, seed=0) == grid
        assert sample_cells(SMOKE_SCALE, 10_000, seed=0) == grid


def quiet(_line):
    pass


class TestRunCheck:
    """Fast-path (``deep=False``) bless/verify cycles at a tiny scale."""

    def test_bless_then_verify_passes(self, runtime_dirs):
        blessed = run_check(
            TINY, bless=True, note="initial tiny goldens",
            goldens_dir=runtime_dirs.goldens, deep=False, echo=quiet,
        )
        assert blessed.passed
        assert all(c.golden_status == GOLDEN_BLESSED for c in blessed.cells)
        assert len(blessed.cells) == len(conformance_grid(TINY))

        verified = run_check(
            TINY, sample=0, goldens_dir=runtime_dirs.goldens,
            deep=False, fuzz=0, echo=quiet,
        )
        assert verified.passed
        assert all(c.golden_status == GOLDEN_MATCH for c in verified.cells)

    def test_tampered_golden_is_a_mismatch(self, runtime_dirs):
        run_check(
            TINY, bless=True, note="initial", deep=False,
            goldens_dir=runtime_dirs.goldens, echo=quiet,
        )
        store = GoldenStore(runtime_dirs.goldens)
        victim = store.path_for(TINY, "PoM", "mcf")
        data = json.loads(victim.read_text())
        data["result_digest"] = "0" * 64
        victim.write_text(json.dumps(data))

        report = run_check(
            TINY, sample=0, goldens_dir=runtime_dirs.goldens,
            deep=False, fuzz=0, echo=quiet,
        )
        assert not report.passed
        bad = [c for c in report.cells if c.golden_status == GOLDEN_MISMATCH]
        assert [(c.design, c.workload) for c in bad] == [("PoM", "mcf")]
        assert "re-blessed" in bad[0].golden_detail

    def test_verify_without_goldens_is_an_error(self, runtime_dirs):
        report = run_check(
            TINY, goldens_dir=runtime_dirs.goldens, deep=False, echo=quiet,
        )
        assert not report.passed
        assert "no goldens" in report.error

    def test_bless_without_note_is_an_error(self, runtime_dirs):
        report = run_check(
            TINY, bless=True, goldens_dir=runtime_dirs.goldens,
            deep=False, echo=quiet,
        )
        assert "--note" in report.error
        assert not report.passed

    def test_report_schema_and_write(self, runtime_dirs):
        report = run_check(
            TINY, bless=True, note="n", deep=False,
            goldens_dir=runtime_dirs.goldens, echo=quiet,
        )
        wire = report.to_dict()
        assert wire["schema"] == REPORT_SCHEMA_VERSION
        assert wire["version"] == repro.__version__
        assert wire["summary"]["passed"] is True
        assert wire["scale"] == scale_identity(TINY)
        out = report.write(runtime_dirs.scratch / "CHECK_report.json")
        assert json.loads(out.read_text()) == wire


class TestFuzzGenerator:
    def test_seeded_and_bounded(self):
        cases = generate_cases(7, 12)
        assert cases == generate_cases(7, 12)
        assert cases != generate_cases(8, 12)
        names = set(REGISTRY.labels())
        for case in cases:
            assert case.design in names
            assert case.scale.fast_mb in FAST_MB_CHOICES
            assert case.scale.num_copies in COPIES_CHOICES
            assert (
                ACCESSES_RANGE[0]
                <= case.scale.accesses_per_core
                < ACCESSES_RANGE[1]
            )
            assert 0 <= case.scale.warmup_per_core < (
                case.scale.accesses_per_core
            )
            assert case.scale.benchmarks == (case.workload,)


class TestCheckCli:
    def test_bless_without_note_is_usage_error(self, capsys):
        assert main(["check", "--bless"]) == 2
        assert "--note" in capsys.readouterr().err

    def test_injected_mismatch_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        """The acceptance regression test: tamper one committed golden
        digest and the full CLI (deep oracle included) must exit 1."""
        tampered = tmp_path / "goldens"
        shutil.copytree(COMMITTED_GOLDENS, tampered)
        (victim_design, victim_workload) = sample_cells(
            SMOKE_SCALE, 1, seed=0
        )[0]
        victim = GoldenStore(tampered).path_for(
            SMOKE_SCALE, victim_design, victim_workload
        )
        data = json.loads(victim.read_text())
        data["result_digest"] = "0" * 64
        victim.write_text(json.dumps(data))

        monkeypatch.chdir(tmp_path)
        code = main(
            ["check", "--sample", "1", "--seed", "0", "--fuzz", "0",
             "--goldens", str(tampered)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        report = json.loads((tmp_path / "CHECK_report.json").read_text())
        assert report["summary"]["cells_failed"] == 1

    @pytest.mark.slow
    def test_check_passes_against_committed_goldens(
        self, tmp_path, monkeypatch, capsys
    ):
        """End-to-end PASS against the real committed store, report
        written where --out says."""
        out = tmp_path / "CHECK_report.json"
        code = main(
            ["check", "--sample", "2", "--seed", "0", "--fuzz", "1",
             "--goldens", str(COMMITTED_GOLDENS), "--out", str(out)]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["summary"]["passed"] is True
        assert report["summary"]["paths"] >= 2
