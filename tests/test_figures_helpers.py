"""Tests for experiment figure helpers and result plumbing."""

import pytest

from repro.config import scaled_config
from repro.cpu import CoreRunStats, MulticoreModel
from repro.experiments.figures import FigureResult, _mean
from repro.experiments.reporting import format_comparison
from repro.sim.engine import SimulationResult
from repro.stats import CounterSet


class TestFigureResult:
    def test_render_includes_title_and_rows(self):
        figure = FigureResult(
            "Figure X", ["a", "b"], [["r1", 1.0], ["r2", 2.0]], {}
        )
        text = figure.render()
        assert text.startswith("Figure X")
        assert "r1" in text and "r2" in text

    def test_mean_helper(self):
        assert _mean([1.0, 3.0]) == 2.0
        assert _mean([]) == 0.0

    def test_format_comparison(self):
        line = format_comparison("opt vs pom", 7.7, 11.6)
        assert "+7.7%" in line and "+11.6%" in line


class TestSimulationResult:
    def make(self):
        config = scaled_config()
        model = MulticoreModel(config)
        stats = CoreRunStats(
            instructions=1000, memory_accesses=10, memory_latency_ns=500.0
        )
        perf = model.summarize("wl", [stats])
        return config, SimulationResult(
            workload="wl",
            architecture="pom",
            performance=perf,
            fast_hit_rate=0.8,
            average_latency_ns=50.0,
            swaps=3.0,
            page_faults=0,
            counters=CounterSet(),
        )

    def test_geomean_property(self):
        _, result = self.make()
        assert result.geomean_ipc == result.performance.geomean_ipc

    def test_latency_cycles_conversion(self):
        config, result = self.make()
        cycles = result.average_latency_cycles(config)
        assert cycles == pytest.approx(
            50e-9 * config.core.frequency_hz
        )

    def test_cache_mode_fraction_default_none(self):
        _, result = self.make()
        assert result.cache_mode_fraction is None
