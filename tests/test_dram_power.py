"""Tests for the DRAM energy model."""

import pytest

from repro.config import MB, scaled_config, stacked_dram, offchip_dram
from repro.dram.device import DramDevice
from repro.dram.power import (
    DramPowerModel,
    DramPowerParams,
    EnergyReport,
    OFFCHIP_POWER,
    STACKED_POWER,
    params_for,
    system_energy,
)
from repro.stats import CounterSet


class TestParams:
    def test_stacked_cheaper_per_byte(self):
        assert (
            STACKED_POWER.transfer_pj_per_byte
            < OFFCHIP_POWER.transfer_pj_per_byte
        )

    def test_params_for_by_role(self):
        assert params_for(stacked_dram(4 * MB)) is STACKED_POWER
        assert params_for(offchip_dram(4 * MB)) is OFFCHIP_POWER

    def test_validation(self):
        with pytest.raises(ValueError):
            DramPowerParams(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            DramPowerParams(1.0, 1.0, -1.0)


class TestEstimation:
    def test_idle_device_burns_only_background(self):
        model = DramPowerModel(stacked_dram(4 * MB))
        report = model.estimate(CounterSet(), elapsed_ns=1e6)
        assert report.dynamic_nj == 0.0
        assert report.background_nj > 0.0

    def test_transfer_energy_scales_with_bytes(self):
        counters = CounterSet({"dram.stacked.bytes": 1000})
        double = CounterSet({"dram.stacked.bytes": 2000})
        model = DramPowerModel(stacked_dram(4 * MB))
        a = model.estimate(counters, 0.0)
        b = model.estimate(double, 0.0)
        assert b.transfer_nj == pytest.approx(2 * a.transfer_nj)

    def test_row_cycles_charge_activates(self):
        counters = CounterSet(
            {"dram.stacked.row_miss": 3, "dram.stacked.row_conflict": 2}
        )
        model = DramPowerModel(stacked_dram(4 * MB))
        report = model.estimate(counters, 0.0)
        assert report.activate_nj == pytest.approx(
            5 * STACKED_POWER.activate_nj
        )

    def test_row_hits_are_free_of_activates(self):
        counters = CounterSet({"dram.stacked.row_hit": 100})
        model = DramPowerModel(stacked_dram(4 * MB))
        assert model.estimate(counters, 0.0).activate_nj == 0.0

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            DramPowerModel(stacked_dram(4 * MB)).estimate(CounterSet(), -1.0)

    def test_live_device_counters_flow_through(self):
        counters = CounterSet()
        device = DramDevice(stacked_dram(4 * MB), counters)
        for index in range(100):
            device.access(index * 64, index * 10.0)
        report = DramPowerModel(device.config).estimate(counters, 1000.0)
        assert report.transfer_nj > 0
        assert report.total_nj > report.dynamic_nj

    def test_merge_accumulates(self):
        a = EnergyReport("fast", 1.0, 2.0, 3.0)
        b = EnergyReport("slow", 10.0, 20.0, 30.0)
        merged = a.merge(b)
        assert merged.total_nj == pytest.approx(66.0)


class TestDesignComparison:
    def test_fewer_swaps_means_less_movement_energy(self):
        """Chameleon-Opt's swap reduction shows up directly as energy."""
        from repro.arch import PoMArchitecture
        from repro.core import ChameleonOptArchitecture
        from repro.sim import simulate
        from repro.workloads import benchmark, build_workload

        config = scaled_config(fast_mb=1.0)
        workload = build_workload(config, benchmark("bwaves"), num_copies=4)
        reports = {}
        for arch in (PoMArchitecture(config), ChameleonOptArchitecture(config)):
            simulate(
                arch, workload, accesses_per_core=600, warmup_per_core=600
            )
            reports[arch.name] = system_energy(
                arch.counters, config.fast_mem, config.slow_mem, 1e6
            )
        assert (
            reports["chameleon_opt"].transfer_nj
            <= reports["pom"].transfer_nj * 1.05
        )
