"""Tests for the baseline architectures: flat, Alloy, PoM, CAMEO,
Polymorphic Memory."""

import pytest

from repro.config import CACHELINE_BYTES, MB, scaled_config
from repro.arch import (
    AlloyCache,
    CameoArchitecture,
    FlatMemory,
    PoMArchitecture,
    PolymorphicMemory,
)
from repro.arch.remap import Mode


@pytest.fixture
def config():
    return scaled_config(fast_mb=1.0)


def seg_addr(arch, group, local, offset=0):
    segment = arch.geometry.segment_at(group, local)
    return segment * arch.geometry.segment_bytes + offset


class TestFlatMemory:
    def test_visible_capacity(self, config):
        flat = FlatMemory(config, capacity_bytes=5 * MB)
        assert flat.os_visible_bytes == 5 * MB

    def test_default_capacity_is_total(self, config):
        assert FlatMemory(config).os_visible_bytes == config.total_capacity_bytes

    def test_never_fast_hits(self, config):
        flat = FlatMemory(config)
        result = flat.access(0, 0.0)
        assert not result.fast_hit
        assert flat.fast_hit_rate == 0.0

    def test_out_of_range_rejected(self, config):
        flat = FlatMemory(config, capacity_bytes=1 * MB)
        with pytest.raises(ValueError):
            flat.access(1 * MB, 0.0)

    def test_invalid_capacity(self, config):
        with pytest.raises(ValueError):
            FlatMemory(config, capacity_bytes=0)


class TestAlloyCache:
    def test_visible_capacity_excludes_stacked(self, config):
        alloy = AlloyCache(config)
        assert alloy.os_visible_bytes == config.slow_mem.capacity_bytes

    def test_miss_then_hit(self, config):
        alloy = AlloyCache(config)
        first = alloy.access(0x1000, 0.0)
        assert not first.fast_hit
        second = alloy.access(0x1000, 1e5)
        assert second.fast_hit

    def test_direct_mapped_conflict(self, config):
        alloy = AlloyCache(config)
        stride = config.fast_mem.capacity_bytes  # same set, distinct tags
        alloy.access(0, 0.0)
        alloy.access(stride, 1e5)  # evicts the first line
        result = alloy.access(0, 2e5)
        assert not result.fast_hit

    def test_line_granularity(self, config):
        alloy = AlloyCache(config)
        alloy.access(0, 0.0)
        assert alloy.access(32, 1e5).fast_hit  # same 64B line
        assert not alloy.access(64, 2e5).fast_hit  # next line misses

    def test_dirty_writeback_counted(self, config):
        alloy = AlloyCache(config)
        stride = config.fast_mem.capacity_bytes
        alloy.access(0, 0.0, is_write=True)
        alloy.access(stride, 1e5)
        assert alloy.counters["alloy.writebacks"] == 1

    def test_isa_hooks_are_noops(self, config):
        alloy = AlloyCache(config)
        alloy.isa_alloc(0)
        alloy.isa_free(0)
        assert alloy.counters["isa.alloc_seen"] == 0

    def test_hit_rate_tracks(self, config):
        alloy = AlloyCache(config)
        alloy.access(0, 0.0)
        alloy.access(0, 1e5)
        assert alloy.cache_hit_rate == pytest.approx(0.5)


class TestPoM:
    def test_visible_capacity_is_total(self, config):
        assert PoMArchitecture(config).os_visible_bytes == (
            config.total_capacity_bytes
        )

    def test_fast_segment_hits_natively(self, config):
        pom = PoMArchitecture(config)
        result = pom.access(seg_addr(pom, 0, 0), 0.0)
        assert result.fast_hit

    def test_swap_after_threshold(self, config):
        pom = PoMArchitecture(config, swap_threshold=4)
        address = seg_addr(pom, 0, 2)
        for i in range(3):
            pom.access(address, i * 1e5)
        assert pom.swap_count == 0
        pom.access(address, 4e5)
        assert pom.swap_count == 1
        # The hot segment now resides in the stacked slot.
        assert pom.access(address, 5e5).fast_hit

    def test_swap_restores_on_competition(self, config):
        pom = PoMArchitecture(config, swap_threshold=2, swap_cooldown=0)
        a = seg_addr(pom, 0, 1)
        b = seg_addr(pom, 0, 2)
        for i in range(40):
            pom.access(a if (i // 4) % 2 == 0 else b, i * 1e5)
        assert pom.swap_count >= 2
        pom.group_state(0).validate()

    def test_cooldown_suppresses_pingpong(self, config):
        eager = PoMArchitecture(config, swap_threshold=2, swap_cooldown=0)
        cooled = PoMArchitecture(config, swap_threshold=2, swap_cooldown=64)
        for i in range(120):
            local = 1 + (i % 2)
            eager.access(seg_addr(eager, 0, local), i * 1e5)
            cooled.access(seg_addr(cooled, 0, local), i * 1e5)
        assert cooled.swap_count <= eager.swap_count

    def test_counter_is_free_space_agnostic(self, config):
        # PoM swaps unallocated (garbage) segments too: no ISA calls
        # were made, yet the swap machinery runs.
        pom = PoMArchitecture(config, swap_threshold=2)
        address = seg_addr(pom, 3, 4)
        for i in range(8):
            pom.access(address, i * 1e5)
        assert pom.swap_count >= 1

    def test_invalid_threshold(self, config):
        with pytest.raises(ValueError):
            PoMArchitecture(config, swap_threshold=0)

    def test_invalid_cooldown(self, config):
        with pytest.raises(ValueError):
            PoMArchitecture(config, swap_cooldown=-1)


class TestCameo:
    def test_uses_cacheline_segments(self, config):
        cameo = CameoArchitecture(config)
        assert cameo.geometry.segment_bytes == CACHELINE_BYTES

    def test_metadata_entries_count(self, config):
        cameo = CameoArchitecture(config)
        assert cameo.metadata_entries == (
            config.fast_mem.capacity_bytes // CACHELINE_BYTES
        )

    def test_swaps_eagerly(self, config):
        cameo = CameoArchitecture(config)
        nf = cameo.geometry.num_fast_segments
        address = (nf + 5) * CACHELINE_BYTES  # off-chip line
        for i in range(80):
            cameo.access(address, i * 1e4)
            if cameo.swap_count:
                break
        assert cameo.swap_count >= 1

    def test_more_adaptive_than_pom_at_line_granularity(self, config):
        # A single hot line: CAMEO migrates it within the cooldown-free
        # threshold-1 window, PoM needs 2KB-segment counter wins.
        cameo = CameoArchitecture(config)
        nf = cameo.geometry.num_fast_segments
        address = (nf + 9) * CACHELINE_BYTES
        for i in range(200):
            result = cameo.access(address, i * 1e4)
        assert result.fast_hit


class TestPolymorphicMemory:
    def test_boot_groups_cache(self, config):
        poly = PolymorphicMemory(config)
        assert poly.group_state(0).mode is Mode.CACHE

    def test_stacked_alloc_goes_static(self, config):
        poly = PolymorphicMemory(config)
        poly.isa_alloc(poly.geometry.segment_at(0, 0))
        assert poly.group_state(0).mode is Mode.POM

    def test_static_groups_never_swap(self, config):
        poly = PolymorphicMemory(config)
        poly.isa_alloc(poly.geometry.segment_at(0, 0))
        address = seg_addr(poly, 0, 3)
        for i in range(100):
            result = poly.access(address, i * 1e4)
        assert not result.fast_hit
        assert poly.swap_count == 0

    def test_free_stacked_slot_caches(self, config):
        poly = PolymorphicMemory(config)
        address = seg_addr(poly, 0, 2)
        poly.access(address, 0.0)
        assert poly.access(address, 1e5).fast_hit
        assert poly.counters["polymorphic.cache_hits"] >= 1

    def test_stacked_alloc_stops_caching(self, config):
        poly = PolymorphicMemory(config)
        address = seg_addr(poly, 0, 2)
        poly.access(address, 0.0)
        poly.isa_alloc(poly.geometry.segment_at(0, 0))
        result = poly.access(address, 1e6)
        assert not result.fast_hit

    def test_free_reenables_caching(self, config):
        poly = PolymorphicMemory(config)
        stacked = poly.geometry.segment_at(0, 0)
        poly.isa_alloc(stacked)
        poly.isa_free(stacked)
        assert poly.group_state(0).mode is Mode.CACHE

    def test_cache_mode_fraction(self, config):
        poly = PolymorphicMemory(config)
        poly.isa_alloc(poly.geometry.segment_at(0, 0))
        poly.group_state(1)  # untouched group stays cache mode
        assert poly.cache_mode_fraction() == pytest.approx(0.5)
