"""Tests for trace records, file round-trip, and stream utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.trace import (
    AccessRecord,
    interleave,
    read_trace,
    take,
    truncate_instructions,
    write_trace,
)


records_strategy = st.lists(
    st.builds(
        AccessRecord,
        address=st.integers(min_value=0, max_value=2**40),
        is_write=st.booleans(),
        icount_gap=st.integers(min_value=0, max_value=10_000),
    ),
    max_size=200,
)


class TestAccessRecord:
    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            AccessRecord(address=-1)

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            AccessRecord(address=0, icount_gap=-1)

    def test_shifted(self):
        record = AccessRecord(100, True, 7)
        shifted = record.shifted(28)
        assert shifted == AccessRecord(128, True, 7)

    def test_frozen(self):
        record = AccessRecord(0)
        with pytest.raises(AttributeError):
            record.address = 5


class TestTraceIo:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.gz"
        records = [
            AccessRecord(0x1000, False, 3),
            AccessRecord(0x2040, True, 0),
        ]
        assert write_trace(path, records) == 2
        assert list(read_trace(path)) == records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.gz"
        write_trace(path, [])
        assert list(read_trace(path)) == []

    def test_rejects_bad_header(self, tmp_path):
        import gzip

        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("not-a-trace\n")
        with pytest.raises(ValueError):
            list(read_trace(path))

    def test_rejects_malformed_record(self, tmp_path):
        import gzip

        path = tmp_path / "malformed.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-trace-v1\n")
            handle.write("deadbeef 1\n")
        with pytest.raises(ValueError):
            list(read_trace(path))

    @given(records_strategy)
    def test_round_trip_property(self, records):
        import io
        import gzip as gz

        # Round-trip through an in-memory temporary file.
        import tempfile, os

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.gz")
            write_trace(path, records)
            assert list(read_trace(path)) == records


class TestStreams:
    def test_take_limits(self):
        records = [AccessRecord(i) for i in range(10)]
        assert len(list(take(records, 3))) == 3

    def test_take_zero(self):
        assert list(take([AccessRecord(0)], 0)) == []

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            list(take([], -1))

    def test_truncate_instructions(self):
        records = [AccessRecord(i, icount_gap=10) for i in range(10)]
        kept = list(truncate_instructions(records, 35))
        assert len(kept) == 3  # 10+10+10 <= 35, fourth would exceed

    def test_truncate_exact_boundary(self):
        records = [AccessRecord(i, icount_gap=10) for i in range(4)]
        kept = list(truncate_instructions(records, 40))
        assert len(kept) == 4

    def test_interleave_orders_by_instruction_progress(self):
        fast_miss = [AccessRecord(i, icount_gap=1) for i in range(3)]
        slow_miss = [AccessRecord(100 + i, icount_gap=10) for i in range(3)]
        merged = list(interleave([fast_miss, slow_miss]))
        # The low-gap core issues its three accesses before the other
        # core's second access (progress 1,2,3 < 20).
        first_four_cores = [core for core, _ in merged[:4]]
        assert first_four_cores.count(0) == 3

    def test_interleave_preserves_all_records(self):
        streams = [
            [AccessRecord(i, icount_gap=3) for i in range(5)],
            [AccessRecord(100 + i, icount_gap=7) for i in range(4)],
        ]
        merged = list(interleave(streams))
        assert len(merged) == 9
        assert sorted(r.address for _, r in merged) == sorted(
            r.address for s in streams for r in s
        )

    def test_interleave_empty_streams(self):
        assert list(interleave([[], []])) == []

    @given(
        st.lists(
            st.lists(
                st.builds(
                    AccessRecord,
                    address=st.integers(min_value=0, max_value=1000),
                    icount_gap=st.integers(min_value=1, max_value=50),
                ),
                max_size=20,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_interleave_per_core_order_preserved(self, streams):
        merged = list(interleave(streams))
        for core_id, stream in enumerate(streams):
            replayed = [r for core, r in merged if core == core_id]
            assert replayed == stream
