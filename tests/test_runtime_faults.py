"""Deterministic fault injection, retry/timeout tolerance, graceful
degradation, and checkpoint/resume for the sweep runtime.

The load-bearing property, checked across both simulation kernels
(PoM sweeps run batched, Alloy-Cache runs scalar): **any** fault plan
the executor is provisioned to survive yields results byte-equal
(``to_dict()``) to a fault-free serial run.  Faults may cost retries
and wall-clock, never bits.

Every executor here passes an explicit ``faults=`` argument so the
suite stays meaningful when CI layers its own ``$REPRO_FAULTS`` plan
over the whole test run (the fault-matrix job).
"""

import pickle
import random

import pytest

from repro.experiments import SMOKE_SCALE
from repro.experiments.designs import REGISTRY
from repro.runtime import (
    FAULT_CORRUPT,
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_HANG,
    FaultPlan,
    InjectedFault,
    JobTimeoutError,
    ResultCache,
    SweepExecutor,
    SweepJobError,
    SweepJournal,
    WorkerCrashError,
    apply_fault,
)
from tests.conftest import tiny_scale

# One design per kernel: PoM sweeps use the batched replay kernel,
# Alloy-Cache the scalar one — equality must hold under both.
DESIGNS = ("PoM", "Alloy-Cache")

TINY = tiny_scale(benchmarks=("mcf", "comd"))

# Wall-clock budget for one *healthy* TINY cell, with headroom for a
# loaded CI box; injected hangs sleep far longer, so the timeout still
# fires only for them.
TIMEOUT = 5.0
HANG = 60.0


def run_plain(scale=TINY, designs=DESIGNS):
    executor = SweepExecutor(jobs=1, faults=None)
    return {
        cell: r.to_dict()
        for cell, r in executor.run(scale, designs).items()
    }


@pytest.fixture(scope="module")
def reference():
    """Fault-free serial results for the TINY grid, as wire dicts."""
    return run_plain()


class TestFaultPlanSpec:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7,crash=3,hang=1,error=2,corrupt=1,"
            "retries=4,timeout=5,hang-seconds=0.5"
        )
        assert plan == FaultPlan(
            seed=7,
            crashes=3,
            hangs=1,
            errors=2,
            corrupt=1,
            retries=4,
            timeout=5.0,
            hang_seconds=0.5,
        )
        assert plan.total == 7

    def test_parse_accepts_plural_and_underscore_keys(self):
        plan = FaultPlan.parse("crashes=1, hangs = 2,hang_seconds=3")
        assert (plan.crashes, plan.hangs, plan.hang_seconds) == (1, 2, 3.0)

    @pytest.mark.parametrize(
        "spec",
        ["crash", "explode=1", "crash=two", "=3", "crash=1;hang=2"],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=-1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=3,error=2,retries=1")
        plan = FaultPlan.from_env()
        assert plan == FaultPlan(seed=3, errors=2, retries=1)
        monkeypatch.setenv("REPRO_FAULTS", "  ")
        assert FaultPlan.from_env() is None
        monkeypatch.delenv("REPRO_FAULTS")
        assert FaultPlan.from_env() is None

    def test_executor_adopts_env_plan(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "seed=1,error=1,retries=7,timeout=11"
        )
        executor = SweepExecutor(jobs=1)
        assert executor.faults == FaultPlan(
            seed=1, errors=1, retries=7, timeout=11.0
        )
        assert executor.retries == 7
        assert executor.timeout == 11.0
        # Explicit arguments beat the plan's suggestions.
        explicit = SweepExecutor(jobs=1, retries=0, timeout=2.0)
        assert explicit.retries == 0
        assert explicit.timeout == 2.0


class TestFaultAssignment:
    GRID = [(d, w) for d in DESIGNS for w in TINY.benchmarks]

    def test_same_seed_same_assignment(self):
        plan = FaultPlan(seed=11, crashes=1, hangs=1, errors=1)
        assert plan.materialise(self.GRID) == plan.materialise(self.GRID)

    def test_assignment_ignores_cell_order_and_duplicates(self, rng):
        plan = FaultPlan(seed=11, crashes=2, errors=1)
        shuffled = list(self.GRID)
        rng.shuffle(shuffled)
        assert plan.materialise(shuffled + shuffled) == plan.materialise(
            self.GRID
        )

    def test_at_most_one_fault_per_cell_and_truncation(self):
        plan = FaultPlan(seed=0, crashes=3, hangs=3, errors=3, corrupt=3)
        assignment = plan.materialise(self.GRID)
        assert len(assignment) == len(self.GRID)  # 12 wanted, 4 cells
        assert set(assignment) <= set(self.GRID)

    def test_counts_respected_when_grid_is_large_enough(self):
        grid = [(d, f"w{i}") for d in DESIGNS for i in range(10)]
        plan = FaultPlan(seed=5, crashes=2, hangs=1, errors=3, corrupt=1)
        kinds = list(plan.materialise(grid).values())
        assert kinds.count(FAULT_CRASH) == 2
        assert kinds.count(FAULT_HANG) == 1
        assert kinds.count(FAULT_ERROR) == 3
        assert kinds.count(FAULT_CORRUPT) == 1


class TestApplyFault:
    def test_error_raises_injected_fault(self):
        with pytest.raises(InjectedFault):
            apply_fault(FAULT_ERROR, serial=True)

    def test_serial_crash_becomes_worker_crash_error(self):
        with pytest.raises(WorkerCrashError):
            apply_fault(FAULT_CRASH, serial=True)

    def test_serial_hang_becomes_timeout_error(self):
        with pytest.raises(JobTimeoutError):
            apply_fault(FAULT_HANG, serial=True)

    def test_pooled_hang_just_sleeps(self):
        apply_fault(FAULT_HANG, serial=False, hang_seconds=0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            apply_fault("meltdown", serial=True)


class TestSweepJobError:
    def test_pickle_round_trip_keeps_context(self):
        err = SweepJobError("PoM", "mcf", 3, InjectedFault("boom"))
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, SweepJobError)
        assert (clone.design, clone.workload, clone.attempts) == (
            "PoM", "mcf", 3,
        )
        assert isinstance(clone.cause, InjectedFault)
        assert "PoM/mcf" in str(clone)


@pytest.mark.slow
class TestByteEquality:
    """Property-based (seeded stdlib ``random``): random tolerable
    plans never change a single bit of the sweep results.

    Marked ``slow``: the acceptance sweep and the pooled plans are the
    longest cells in the tree; the fault-matrix CI job opts back in.
    """

    @pytest.mark.parametrize("case", range(4))
    def test_random_worker_fault_plans(self, case, reference, session_seed):
        rng = random.Random(f"{session_seed}:fault-plan:{case}")
        plan = FaultPlan(
            seed=rng.randrange(1 << 16),
            crashes=rng.randint(0, 2),
            hangs=rng.randint(0, 1),
            errors=rng.randint(0, 2),
            hang_seconds=HANG,
        )
        jobs = rng.choice((1, 2))
        executor = SweepExecutor(
            jobs=jobs,
            faults=plan,
            retries=max(1, plan.total),
            timeout=TIMEOUT,
            backoff=0.0,
        )
        results = executor.run(TINY, DESIGNS)
        assert {c: r.to_dict() for c, r in results.items()} == reference
        fired = min(plan.total, len(reference))
        assert executor.metrics.failures == fired
        assert executor.metrics.retries == fired

    @pytest.mark.parametrize("case", range(3))
    def test_random_corruption_with_warm_cache(
        self, case, reference, tmp_path, session_seed
    ):
        rng = random.Random(f"{session_seed}:fault-corrupt:{case}")
        plan = FaultPlan(
            seed=rng.randrange(1 << 16), corrupt=rng.randint(1, 2)
        )
        cache = ResultCache(tmp_path)
        warmup = SweepExecutor(jobs=1, cache=cache, faults=None)
        warmup.run(TINY, DESIGNS)

        executor = SweepExecutor(
            jobs=rng.choice((1, 2)),
            cache=ResultCache(tmp_path),
            faults=plan,
            retries=plan.total,
            backoff=0.0,
        )
        results = executor.run(TINY, DESIGNS)
        assert {c: r.to_dict() for c, r in results.items()} == reference
        # Exactly the corrupted entries were re-simulated; the rest
        # were served from disk.
        assert executor.cache.stats.corrupt == plan.corrupt
        assert executor.metrics.simulated == plan.corrupt
        assert executor.metrics.disk_hits == len(reference) - plan.corrupt

    def test_acceptance_plan_on_fig15_smoke_sweep(self, tmp_path):
        """The ISSUE acceptance bar: >=3 crashes + 1 hang + 1 corrupt
        entry on a SMOKE_SCALE fig15 sweep, byte-equal to fault-free
        serial."""
        designs = REGISTRY.figure_labels("fig15")
        reference = run_plain(SMOKE_SCALE, designs)
        plan = FaultPlan(
            seed=42, crashes=3, hangs=1, corrupt=1, hang_seconds=HANG
        )
        # Pre-seed the one entry the plan will corrupt, so the corrupt
        # fault has a victim while every other cell still simulates
        # (and can crash/hang) rather than hitting the cache.
        grid = [(d, w) for d in designs for w in SMOKE_SCALE.benchmarks]
        (corrupt_cell,) = [
            cell
            for cell, kind in plan.materialise(grid).items()
            if kind == FAULT_CORRUPT
        ]
        cache = ResultCache(tmp_path)
        seed_result = SweepExecutor(jobs=1, faults=None).run(
            SMOKE_SCALE, (corrupt_cell[0],)
        )[corrupt_cell]
        cache.put(SMOKE_SCALE, *corrupt_cell, seed_result)

        executor = SweepExecutor(
            jobs=3,
            cache=ResultCache(tmp_path),
            faults=plan,
            retries=4,
            timeout=TIMEOUT,
            backoff=0.0,
        )
        results = executor.run(SMOKE_SCALE, designs)
        assert {c: r.to_dict() for c, r in results.items()} == reference
        assert executor.metrics.crashes == 3
        assert executor.metrics.timeouts == 1
        assert executor.cache.stats.corrupt == 1


class TestTimeoutsAndDegradation:
    @pytest.mark.slow
    def test_pooled_hang_is_killed_and_retried(self, reference):
        plan = FaultPlan(seed=8, hangs=1, hang_seconds=HANG)
        executor = SweepExecutor(
            jobs=2, faults=plan, retries=1, timeout=1.5, backoff=0.0
        )
        results = executor.run(TINY, DESIGNS)
        assert {c: r.to_dict() for c, r in results.items()} == reference
        assert executor.metrics.timeouts == 1
        assert executor.metrics.retries == 1

    def test_exhausted_timeout_surfaces_job_context(self):
        plan = FaultPlan(seed=8, hangs=1)
        executor = SweepExecutor(
            jobs=1, faults=plan, retries=0, backoff=0.0
        )
        with pytest.raises(SweepJobError) as excinfo:
            executor.run(TINY, DESIGNS)
        assert isinstance(excinfo.value.__cause__, JobTimeoutError)

    def test_repeated_crashes_degrade_to_serial(self, reference):
        plan = FaultPlan(seed=4, crashes=3)
        executor = SweepExecutor(
            jobs=2,
            faults=plan,
            retries=3,
            timeout=TIMEOUT,
            backoff=0.0,
            degrade_after=2,
        )
        results = executor.run(TINY, DESIGNS)
        assert executor.metrics.degraded
        assert "degraded=serial" in executor.metrics.summary()
        assert executor.metrics.crashes == 3
        assert {c: r.to_dict() for c, r in results.items()} == reference


class _Abort(BaseException):
    """Simulated kill signal: not an Exception, so nothing but the
    executor's journal-preserving cleanup may swallow it."""


def _abort_after(n):
    def on_cell(stat, done, total):
        if done == n:
            raise _Abort()

    return on_cell


class TestJournalResume:
    def test_kill_and_resume_replays_only_missing_cells(
        self, tmp_path, reference
    ):
        interrupted = SweepExecutor(
            jobs=1,
            faults=None,
            journal_dir=tmp_path,
            on_cell=_abort_after(2),
        )
        with pytest.raises(_Abort):
            interrupted.run(TINY, DESIGNS)
        journal = SweepJournal.for_sweep(tmp_path, TINY, DESIGNS)
        assert journal.exists

        resumed = SweepExecutor(jobs=1, faults=None, journal_dir=tmp_path)
        results = resumed.run(TINY, DESIGNS)
        assert resumed.metrics.resumed == 2
        assert resumed.metrics.simulated == len(reference) - 2
        assert "resumed=2" in resumed.metrics.summary()
        assert {c: r.to_dict() for c, r in results.items()} == reference
        # A completed sweep deletes its journal …
        assert not journal.exists
        # … so a third run re-simulates everything (no cache here).
        fresh = SweepExecutor(jobs=1, faults=None, journal_dir=tmp_path)
        fresh.run(TINY, DESIGNS)
        assert fresh.metrics.resumed == 0

    def test_torn_trailing_line_is_ignored(self, tmp_path, reference):
        interrupted = SweepExecutor(
            jobs=1,
            faults=None,
            journal_dir=tmp_path,
            on_cell=_abort_after(2),
        )
        with pytest.raises(_Abort):
            interrupted.run(TINY, DESIGNS)
        journal = SweepJournal.for_sweep(tmp_path, TINY, DESIGNS)
        # A kill mid-append leaves a torn half-record at the tail.
        with journal.path.open("ab") as handle:
            handle.write(b'{"kind": "cell", "design": "PoM", "work')

        resumed = SweepExecutor(jobs=1, faults=None, journal_dir=tmp_path)
        results = resumed.run(TINY, DESIGNS)
        assert resumed.metrics.resumed == 2
        assert {c: r.to_dict() for c, r in results.items()} == reference

    def test_foreign_journal_content_is_discarded(
        self, tmp_path, reference
    ):
        journal = SweepJournal.for_sweep(tmp_path, TINY, DESIGNS)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal.path.write_text(
            '{"kind": "sweep", "identity": {"something": "else"}}\n'
        )
        executor = SweepExecutor(jobs=1, faults=None, journal_dir=tmp_path)
        results = executor.run(TINY, DESIGNS)
        assert executor.metrics.resumed == 0
        assert executor.metrics.simulated == len(reference)
        assert {c: r.to_dict() for c, r in results.items()} == reference

    def test_journal_files_are_sweep_specific(self, tmp_path):
        a = SweepJournal.for_sweep(tmp_path, TINY, DESIGNS)
        b = SweepJournal.for_sweep(tmp_path, TINY, DESIGNS[:1])
        c = SweepJournal.for_sweep(tmp_path, SMOKE_SCALE, DESIGNS)
        assert len({a.path, b.path, c.path}) == 3
        assert all(p.path.name.startswith("sweep-") for p in (a, b, c))

    def test_resume_composes_with_faults(self, tmp_path, reference):
        """Interrupt a *faulted* sweep, resume under the same plan:
        still byte-equal, still only the missing cells replayed."""
        plan = FaultPlan(seed=6, errors=2)
        interrupted = SweepExecutor(
            jobs=1,
            faults=plan,
            retries=2,
            backoff=0.0,
            journal_dir=tmp_path,
            on_cell=_abort_after(2),
        )
        with pytest.raises(_Abort):
            interrupted.run(TINY, DESIGNS)
        resumed = SweepExecutor(
            jobs=1,
            faults=plan,
            retries=2,
            backoff=0.0,
            journal_dir=tmp_path,
        )
        results = resumed.run(TINY, DESIGNS)
        assert resumed.metrics.resumed == 2
        assert {c: r.to_dict() for c, r in results.items()} == reference


class TestRetryTelemetry:
    def test_retry_events_reach_the_parent_bus(self):
        from repro.telemetry import EventBus, EventLog

        bus = EventBus()
        log = bus.subscribe(EventLog())
        plan = FaultPlan(seed=5, errors=1)
        executor = SweepExecutor(
            jobs=1, faults=plan, retries=1, backoff=0.0, telemetry=bus
        )
        executor.run(TINY, DESIGNS)
        retries = [e for e in log.events if e.kind == "job_retry"]
        assert len(retries) == 1
        event = retries[0]
        assert (event.design, event.workload) in [
            (d, w) for d in DESIGNS for w in TINY.benchmarks
        ]
        assert event.attempt == 2
        assert event.reason == "error"
        # Cell streams stay pure: no retry events inside captures.
        assert all(
            e.kind != "job_retry"
            for stream in executor.events.values()
            for e in stream
        )
