"""Tests for the buddy physical-page allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import KB, MB, PAGE_BYTES
from repro.osmodel import BuddyAllocator, OutOfMemoryError


class TestBuddyBasics:
    def test_alloc_returns_aligned_addresses(self):
        buddy = BuddyAllocator(1 * MB)
        for order in range(4):
            address = buddy.alloc(order)
            assert address % (PAGE_BYTES << order) == 0
            buddy.free(address)

    def test_alloc_free_restores_capacity(self):
        buddy = BuddyAllocator(1 * MB)
        before = buddy.free_bytes
        address = buddy.alloc(3)
        assert buddy.free_bytes == before - (PAGE_BYTES << 3)
        buddy.free(address)
        assert buddy.free_bytes == before

    def test_distinct_allocations_do_not_overlap(self):
        buddy = BuddyAllocator(256 * KB)
        blocks = [(buddy.alloc(1), PAGE_BYTES << 1) for _ in range(16)]
        spans = sorted(blocks)
        for (a, size_a), (b, _) in zip(spans, spans[1:]):
            assert a + size_a <= b

    def test_exhaustion_raises(self):
        buddy = BuddyAllocator(64 * KB)
        for _ in range(16):
            buddy.alloc(0)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(0)

    def test_coalescing_rebuilds_max_order(self):
        buddy = BuddyAllocator(1 * MB)
        addresses = [buddy.alloc(0) for _ in range(256)]
        for address in addresses:
            buddy.free(address)
        assert buddy.largest_free_order() == buddy.max_order

    def test_fragmentation_limits_large_orders(self):
        buddy = BuddyAllocator(64 * KB)  # 16 pages
        held = [buddy.alloc(0) for _ in range(16)]
        # Free every other page: 8 pages free but no order-1 block.
        for address in held[::2]:
            buddy.free(address)
        assert buddy.free_pages == 8
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(1)

    def test_double_free_rejected(self):
        buddy = BuddyAllocator(64 * KB)
        address = buddy.alloc(0)
        buddy.free(address)
        with pytest.raises(ValueError):
            buddy.free(address)

    def test_free_unallocated_rejected(self):
        buddy = BuddyAllocator(64 * KB)
        with pytest.raises(ValueError):
            buddy.free(0)

    def test_free_unaligned_rejected(self):
        buddy = BuddyAllocator(64 * KB)
        with pytest.raises(ValueError):
            buddy.free(123)

    def test_base_offset(self):
        base = 16 * MB
        buddy = BuddyAllocator(64 * KB, base=base)
        address = buddy.alloc(0)
        assert address >= base
        buddy.free(address)

    def test_alloc_bytes(self):
        buddy = BuddyAllocator(64 * KB)
        pages = buddy.alloc_bytes(10 * 1024)
        assert len(pages) == 3  # ceil(10KB / 4KB)

    def test_alloc_bytes_overflow(self):
        buddy = BuddyAllocator(16 * KB)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc_bytes(1 * MB)

    def test_is_allocated(self):
        buddy = BuddyAllocator(64 * KB)
        address = buddy.alloc(1)
        assert buddy.is_allocated(address)
        assert buddy.is_allocated(address + PAGE_BYTES)
        buddy.free(address)
        assert not buddy.is_allocated(address)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BuddyAllocator(0)
        with pytest.raises(ValueError):
            BuddyAllocator(PAGE_BYTES + 1)
        with pytest.raises(ValueError):
            BuddyAllocator(64 * KB, base=100)

    def test_invalid_order(self):
        buddy = BuddyAllocator(64 * KB)
        with pytest.raises(ValueError):
            buddy.alloc(-1)
        with pytest.raises(ValueError):
            buddy.alloc(buddy.max_order + 1)


@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocs (by order) and frees (by index)."""
    steps = draw(st.integers(min_value=1, max_value=60))
    script = []
    live = 0
    for _ in range(steps):
        if live and draw(st.booleans()):
            script.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            script.append(("alloc", draw(st.integers(0, 3))))
            live += 1
    return script


class TestBuddyProperties:
    @given(alloc_free_script())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_under_random_scripts(self, script):
        buddy = BuddyAllocator(512 * KB)
        live = []
        for action, value in script:
            if action == "alloc":
                try:
                    live.append((buddy.alloc(value), value))
                except OutOfMemoryError:
                    pass
            else:
                if live:
                    address, _ = live.pop(value % len(live))
                    buddy.free(address)
            buddy.check_invariants()
        expected_free = buddy.num_pages - sum(1 << order for _, order in live)
        assert buddy.free_pages == expected_free

    @given(st.integers(min_value=1, max_value=6))
    def test_full_drain_and_refill(self, order):
        buddy = BuddyAllocator(256 * KB)
        addresses = []
        while True:
            try:
                addresses.append(buddy.alloc(order))
            except OutOfMemoryError:
                break
        assert buddy.free_pages < (1 << order)
        for address in addresses:
            buddy.free(address)
        buddy.check_invariants()
        assert buddy.free_pages == buddy.num_pages
