"""Shared fixtures and helpers for the whole suite (docs/TESTING.md).

Centralises what the runtime/arena/serve suites used to re-declare
ad hoc: the canonical tiny execution scales, deterministic RNG
seeding, and the temporary cache/journal/golden directory layout a
sweep-runtime test needs.  Test modules import the helpers as
``from tests.conftest import tiny_scale`` (the ``tests`` package has an
``__init__.py`` precisely so this works) and take the fixtures by name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Sequence

import pytest

from repro.experiments.runner import Scale

#: One seed for the whole session: every derived RNG is a pure
#: function of this and a stable per-test key, so a failure replays
#: exactly — no wall clock, no hash randomisation, no test-order
#: dependence.
SESSION_SEED = 1729


def tiny_scale(
    accesses: int = 120,
    warmup: int | None = None,
    num_copies: int = 2,
    fast_mb: float = 1.0,
    benchmarks: Sequence[str] = ("mcf",),
    seed: int = 0,
) -> Scale:
    """The canonical small test scale (warmup defaults to ``accesses``).

    Every suite that needs a sub-second cell builds it through here so
    "tiny" means one thing across the test tree.
    """
    return Scale(
        fast_mb=fast_mb,
        accesses_per_core=accesses,
        warmup_per_core=accesses if warmup is None else warmup,
        num_copies=num_copies,
        benchmarks=tuple(benchmarks),
        seed=seed,
    )


#: The default two-workload tiny grid (arena/check suites).
TINY_SCALE = tiny_scale(benchmarks=("mcf", "bwaves"))


def scale_request_kwargs(scale: Scale) -> Dict[str, Any]:
    """``Scale`` → the serve wire-format scale fields (the kwargs a
    :class:`repro.serve.SimRequest` takes besides design/workload)."""
    return {
        "fast_mb": scale.fast_mb,
        "accesses_per_core": scale.accesses_per_core,
        "warmup_per_core": scale.warmup_per_core,
        "num_copies": scale.num_copies,
    }


@pytest.fixture(scope="session")
def session_seed() -> int:
    """The session's deterministic base RNG seed."""
    return SESSION_SEED


@pytest.fixture
def rng(session_seed: int, request: pytest.FixtureRequest) -> random.Random:
    """A per-test deterministic RNG, derived from the session seed and
    the test's node id (string seeding is hash-randomisation-proof)."""
    return random.Random(f"{session_seed}:{request.node.nodeid}")


@dataclass(frozen=True)
class RuntimeDirs:
    """The on-disk surfaces a sweep-runtime test touches, pre-made
    and isolated per test."""

    cache: Path
    journal: Path
    goldens: Path
    scratch: Path


@pytest.fixture
def runtime_dirs(tmp_path: Path) -> RuntimeDirs:
    """Separate cache/journal/golden/scratch dirs under ``tmp_path``
    (sharing one directory hides key collisions between subsystems)."""
    dirs = RuntimeDirs(
        cache=tmp_path / "cache",
        journal=tmp_path / "journal",
        goldens=tmp_path / "goldens",
        scratch=tmp_path / "scratch",
    )
    for path in (dirs.cache, dirs.journal, dirs.goldens, dirs.scratch):
        path.mkdir()
    return dirs


@pytest.fixture
def isolated_cache_dir(
    monkeypatch: pytest.MonkeyPatch, tmp_path: Path
) -> Path:
    """Point ``$REPRO_CACHE_DIR`` at a per-test directory so CLI runs
    without ``--cache-dir`` never touch the user's home."""
    path = tmp_path / "default-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(path))
    return path
