"""Tests for trace characterisation and its CLI."""

import pytest

from repro.config import scaled_config
from repro.trace import AccessRecord, write_trace
from repro.trace.__main__ import main as trace_main
from repro.trace.stats import characterize
from repro.workloads import benchmark, build_workload


class TestCharacterize:
    def test_empty_stream(self):
        profile = characterize([])
        assert profile.accesses == 0
        assert profile.mpki == 0.0

    def test_counts_and_mpki(self):
        records = [AccessRecord(i * 4096, icount_gap=100) for i in range(10)]
        profile = characterize(records)
        assert profile.accesses == 10
        assert profile.instructions == 1000
        assert profile.mpki == pytest.approx(10.0)

    def test_write_fraction(self):
        records = [
            AccessRecord(0, is_write=(i % 4 == 0)) for i in range(100)
        ]
        profile = characterize(records)
        assert profile.write_fraction == pytest.approx(0.25)

    def test_footprint_page_granular(self):
        records = [AccessRecord(page * 4096) for page in range(7)]
        profile = characterize(records)
        assert profile.distinct_pages == 7
        assert profile.footprint_bytes == 7 * 4096

    def test_sequential_run_length(self):
        # Two runs of 5 sequential lines each.
        records = [AccessRecord(i * 64) for i in range(5)]
        records += [AccessRecord(0x100000 + i * 64) for i in range(5)]
        profile = characterize(records)
        assert profile.mean_run_length == pytest.approx(5.0)

    def test_random_pattern_run_length_one(self):
        records = [AccessRecord(i * 640) for i in range(20)]  # stride 10
        profile = characterize(records)
        assert profile.mean_run_length == pytest.approx(1.0)

    def test_skew_detection(self):
        hot = [AccessRecord(0)] * 90
        cold = [AccessRecord(page * 4096) for page in range(1, 11)]
        profile = characterize(hot + cold)
        assert profile.top_decile_share > 0.8

    def test_reuse_fraction(self):
        records = [AccessRecord(0), AccessRecord(64), AccessRecord(4096)]
        profile = characterize(records)
        # Second access to page 0 is a reuse; the others are first
        # touches.
        assert profile.reuse_fraction == pytest.approx(1 / 3)

    def test_synthetic_matches_catalogue_mpki(self):
        config = scaled_config()
        spec = benchmark("GemsFDTD")
        workload = build_workload(config, spec)
        profile = characterize(workload.generators()[0].stream(5000))
        assert profile.mpki == pytest.approx(spec.llc_mpki, rel=0.1)
        assert profile.write_fraction == pytest.approx(
            spec.write_fraction, abs=0.15
        )


class TestTraceCli:
    def test_characterise_file(self, tmp_path, capsys):
        path = tmp_path / "t.gz"
        write_trace(path, [AccessRecord(i * 64, icount_gap=10) for i in range(50)])
        assert trace_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "MPKI" in out

    def test_synthesise_benchmark(self, capsys):
        assert trace_main(["--benchmark", "mcf", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "MPKI" in out

    def test_requires_input(self, capsys):
        assert trace_main([]) == 2
        assert "error" in capsys.readouterr().err
