"""Tests for the cross-group shared-pool extension (Section VI-G)."""

import pytest

from repro.config import scaled_config
from repro.arch.remap import Mode
from repro.core import ChameleonSharedPool


@pytest.fixture
def arch():
    return ChameleonSharedPool(scaled_config(fast_mb=1.0), swap_threshold=2)


def members_of(arch, group):
    return [
        arch.geometry.segment_at(group, local)
        for local in range(arch.geometry.segments_per_group)
    ]


def address_of(arch, segment):
    return segment * arch.geometry.segment_bytes


def fill_group(arch, group):
    for member in members_of(arch, group):
        arch.isa_alloc(member)


class TestBorrowing:
    def test_full_group_borrows_idle_donor_slot(self, arch):
        fill_group(arch, 0)  # donee: fully allocated, PoM mode
        # Group 1 stays untouched: cache mode, >= 2 free segments.
        assert arch.group_state(0).mode is Mode.POM
        # Two competing hot segments: the main counter captures one in
        # the group's own stacked slot; the runner-up lands in the
        # borrowed slot.
        hot = members_of(arch, 0)[2]
        warm = members_of(arch, 0)[3]
        hot_hit = warm_hit = False
        for i in range(120):
            hot_hit = arch.access(address_of(arch, hot), i * 2e5).fast_hit
            warm_hit = arch.access(
                address_of(arch, warm), i * 2e5 + 1e5
            ).fast_hit
            if hot_hit and warm_hit:
                break
        assert arch.counters["shared_pool.borrows"] >= 1
        assert arch.counters["shared_pool.borrow_hits"] >= 1
        # With one segment in the group's own stacked slot and one in
        # the borrowed slot, both competitors end up fast.
        assert hot_hit and warm_hit

    def test_no_donor_no_borrow(self, arch):
        # Allocate everything: no group has >= 2 free segments.
        for group in range(arch.geometry.num_groups):
            fill_group(arch, group)
        target = members_of(arch, 0)[2]
        for i in range(20):
            arch.access(address_of(arch, target), i * 1e5)
        assert arch.counters["shared_pool.borrows"] == 0

    def test_donor_with_single_free_segment_not_eligible(self, arch):
        fill_group(arch, 0)
        # Group 1: allocate all but one -> exactly 1 free: not a donor.
        for group in range(1, arch.geometry.num_groups):
            members = members_of(arch, group)
            for member in members[:-1]:
                arch.isa_alloc(member)
        target = members_of(arch, 0)[2]
        for i in range(20):
            arch.access(address_of(arch, target), i * 1e5)
        assert arch.counters["shared_pool.borrows"] == 0

    def test_revocation_on_donor_allocation(self, arch):
        fill_group(arch, 0)
        hot = members_of(arch, 0)[2]
        warm = members_of(arch, 0)[3]
        for i in range(120):
            arch.access(address_of(arch, hot), i * 2e5)
            arch.access(address_of(arch, warm), i * 2e5 + 1e5)
            if arch.active_borrows:
                break
        assert arch.active_borrows == 1
        target = warm
        donor_group = arch._borrows[0].donor_group
        # The donor's own stacked segment gets allocated: donor caches
        # for itself or leaves cache mode -> borrow must be revoked.
        fill_group(arch, donor_group)
        arch.access(address_of(arch, target), 1e8)
        assert arch.counters["shared_pool.revocations"] >= 1

    def test_borrow_hits_count_as_fast(self, arch):
        fill_group(arch, 0)
        target = members_of(arch, 0)[2]
        baseline_hits = arch.counters["arch.fast_hits"]
        for i in range(60):
            arch.access(address_of(arch, target), i * 1e5)
        assert arch.counters["arch.fast_hits"] > baseline_hits

    def test_inherits_opt_behaviour_for_cache_groups(self, arch):
        members = members_of(arch, 3)
        arch.isa_alloc(members[1])
        arch.access(address_of(arch, members[1]), 0.0)
        assert arch.group_state(3).cached == 1
