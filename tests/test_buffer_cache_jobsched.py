"""Tests for the buffer cache (Section V-D3) and job scheduler
(Section I) OS substrates."""

import pytest

from repro.config import KB, MB, PAGE_BYTES
from repro.osmodel import BuddyAllocator
from repro.osmodel.buffer_cache import BufferCache
from repro.osmodel.hooks import PageHookDispatcher
from repro.osmodel.jobsched import Job, MemoryBoundScheduler


class RecordingNotifier:
    def __init__(self):
        self.allocs = []
        self.frees = []

    def isa_alloc(self, segment_id):
        self.allocs.append(segment_id)

    def isa_free(self, segment_id):
        self.frees.append(segment_id)


def make_cache(capacity_pages=8):
    buddy = BuddyAllocator(capacity_pages * PAGE_BYTES)
    notifier = RecordingNotifier()
    dispatcher = PageHookDispatcher(2 * KB, PAGE_BYTES, notifier)

    def allocate():
        address = buddy.alloc(0)
        dispatcher.page_allocated(address)
        return address

    def free(address):
        dispatcher.page_freed(address)
        buddy.free(address)

    cache = BufferCache(allocate, free)
    return cache, buddy, notifier


class TestBufferCache:
    def test_miss_then_hit(self):
        cache, _, _ = make_cache()
        assert not cache.read(7)
        assert cache.read(7)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_reads_fire_isa_alloc(self):
        cache, _, notifier = make_cache()
        cache.read(1)
        # Section V-D3: buffer-cache pages notify hardware like any
        # other allocation.
        assert len(notifier.allocs) == PAGE_BYTES // (2 * KB)

    def test_eviction_fires_isa_free(self):
        cache, _, notifier = make_cache()
        cache.read(1)
        cache.evict(1)
        assert notifier.frees

    def test_grows_into_free_memory(self):
        cache, buddy, _ = make_cache(capacity_pages=8)
        for block in range(8):
            cache.read(block)
        assert cache.cached_pages == 8
        assert buddy.free_pages == 0

    def test_self_reclaims_under_its_own_pressure(self):
        cache, _, _ = make_cache(capacity_pages=4)
        for block in range(10):
            cache.read(block)
        # The cache never exceeds physical memory; oldest blocks left.
        assert cache.cached_pages == 4
        assert not cache.read(0)  # evicted long ago
        assert cache.read(9)

    def test_reclaim_returns_memory_to_allocator(self):
        cache, buddy, _ = make_cache(capacity_pages=8)
        for block in range(8):
            cache.read(block)
        freed = cache.evict(3)
        assert freed == 3
        assert buddy.free_pages == 3

    def test_dirty_pages_write_back_on_reclaim(self):
        cache, _, _ = make_cache(capacity_pages=2)
        cache.write(1)
        cache.write(2)
        cache.evict(2)
        assert cache.counters["buffercache.writebacks"] == 2

    def test_clean_pages_evicted_before_dirty(self):
        cache, _, _ = make_cache(capacity_pages=4)
        cache.write(1)   # dirty
        cache.read(2)    # clean
        cache.read(3)    # clean
        cache.evict(2)
        # Dirty block 1 survives; clean 2 and 3 went first.
        assert cache.read(1)
        assert cache.counters["buffercache.writebacks"] == 0

    def test_drop_all(self):
        cache, buddy, _ = make_cache(capacity_pages=6)
        for block in range(5):
            cache.read(block)
        assert cache.drop_all() == 5
        assert cache.cached_pages == 0
        assert buddy.free_pages == 6

    def test_bypass_when_no_memory_at_all(self):
        buddy = BuddyAllocator(2 * PAGE_BYTES)

        def allocate():
            return buddy.alloc(0)

        cache = BufferCache(allocate, buddy.free)
        held = [buddy.alloc(0), buddy.alloc(0)]  # exhaust externally
        assert not cache.read(1)
        assert cache.counters["buffercache.bypasses"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferCache(lambda: 0, lambda a: None, max_pages=0)

    def test_max_pages_cap(self):
        cache, buddy, _ = make_cache(capacity_pages=8)
        cache.max_pages = 3
        for block in range(6):
            cache.read(block)
        assert cache.cached_pages <= 3
        assert buddy.free_pages >= 5


class TestJobScheduler:
    def test_all_jobs_fit_run_concurrently(self):
        scheduler = MemoryBoundScheduler(10 * MB)
        jobs = [Job(f"j{i}", 2 * MB, 100.0) for i in range(5)]
        report = scheduler.simulate_queue(jobs)
        assert report.makespan_seconds == pytest.approx(100.0)
        assert report.mean_waiting_seconds == pytest.approx(0.0)

    def test_capacity_serialises_queue(self):
        scheduler = MemoryBoundScheduler(4 * MB)
        jobs = [Job(f"j{i}", 2 * MB, 100.0) for i in range(4)]
        report = scheduler.simulate_queue(jobs)
        assert report.makespan_seconds == pytest.approx(200.0)
        assert report.mean_waiting_seconds > 0.0

    def test_more_visible_memory_cuts_waiting_time(self):
        # The Section I claim: PoM capacity (24 units) vs cache-visible
        # capacity (20 units) admits more jobs concurrently.
        jobs = [Job(f"j{i}", 6 * MB, 100.0) for i in range(8)]
        cache_like = MemoryBoundScheduler(20 * MB).simulate_queue(jobs)
        pom_like = MemoryBoundScheduler(24 * MB).simulate_queue(jobs)
        assert (
            pom_like.mean_waiting_seconds < cache_like.mean_waiting_seconds
        )
        assert pom_like.makespan_seconds <= cache_like.makespan_seconds

    def test_oversized_job_rejected(self):
        scheduler = MemoryBoundScheduler(4 * MB)
        report = scheduler.simulate_queue([Job("huge", 8 * MB, 10.0)])
        assert [job.name for job in report.rejected] == ["huge"]
        assert not report.records

    def test_backfill_lets_small_jobs_pass(self):
        scheduler = MemoryBoundScheduler(4 * MB, allow_backfill=True)
        jobs = [
            Job("big-1", 3 * MB, 100.0, submit_seconds=0.0),
            Job("big-2", 3 * MB, 100.0, submit_seconds=0.0),
            Job("small", 1 * MB, 10.0, submit_seconds=0.0),
        ]
        report = scheduler.simulate_queue(jobs)
        small = next(r for r in report.records if r.job.name == "small")
        assert small.start_seconds == pytest.approx(0.0)

    def test_strict_fifo_blocks_behind_head(self):
        scheduler = MemoryBoundScheduler(4 * MB, allow_backfill=False)
        jobs = [
            Job("big-1", 3 * MB, 100.0),
            Job("big-2", 3 * MB, 100.0),
            Job("small", 1 * MB, 10.0),
        ]
        report = scheduler.simulate_queue(jobs)
        small = next(r for r in report.records if r.job.name == "small")
        assert small.start_seconds >= 100.0

    def test_submission_times_respected(self):
        scheduler = MemoryBoundScheduler(4 * MB)
        report = scheduler.simulate_queue(
            [Job("late", 1 * MB, 10.0, submit_seconds=50.0)]
        )
        record = report.records[0]
        assert record.start_seconds == pytest.approx(50.0)
        assert record.waiting_seconds == pytest.approx(0.0)

    def test_turnaround_includes_waiting(self):
        scheduler = MemoryBoundScheduler(2 * MB)
        jobs = [Job("a", 2 * MB, 10.0), Job("b", 2 * MB, 10.0)]
        report = scheduler.simulate_queue(jobs)
        b = next(r for r in report.records if r.job.name == "b")
        assert b.turnaround_seconds == pytest.approx(20.0)

    def test_job_validation(self):
        with pytest.raises(ValueError):
            Job("x", 0, 1.0)
        with pytest.raises(ValueError):
            Job("x", 1, 0.0)
        with pytest.raises(ValueError):
            MemoryBoundScheduler(0)
