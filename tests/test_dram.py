"""Tests for the DRAM substrate (banks, devices, hetero front end)."""

import pytest

from repro.config import MB, scaled_config, stacked_dram, offchip_dram, DramTiming
from repro.dram import Bank, DramDevice, HeterogeneousMemory, RowBufferResult
from repro.dram.controller import BUFFER_HIT_NS
from repro.stats import CounterSet


def make_device(capacity_mb=4, fast=True):
    config = stacked_dram(capacity_mb * MB) if fast else offchip_dram(capacity_mb * MB)
    return DramDevice(config)


class TestBank:
    def setup_method(self):
        self.bank = Bank(DramTiming(), clock_hz=1.6e9)

    def test_first_access_is_miss(self):
        _, result = self.bank.access(row=0, now_ns=0.0)
        assert result is RowBufferResult.MISS

    def test_same_row_hits(self):
        self.bank.access(0, 0.0)
        _, result = self.bank.access(0, 1000.0)
        assert result is RowBufferResult.HIT

    def test_different_row_conflicts(self):
        self.bank.access(0, 0.0)
        _, result = self.bank.access(1, 1000.0)
        assert result is RowBufferResult.CONFLICT

    def test_hit_faster_than_miss_faster_than_conflict(self):
        hit_bank = Bank(DramTiming(), 1.6e9)
        hit_bank.access(0, 0.0)
        hit_done, _ = hit_bank.access(0, 1000.0)

        miss_bank = Bank(DramTiming(), 1.6e9)
        miss_done, _ = miss_bank.access(0, 1000.0)

        conflict_bank = Bank(DramTiming(), 1.6e9)
        conflict_bank.access(1, 0.0)
        conflict_done, _ = conflict_bank.access(0, 1000.0)

        assert hit_done < miss_done < conflict_done

    def test_busy_bank_delays_access(self):
        done_first, _ = self.bank.access(0, 0.0)
        done_second, _ = self.bank.access(1, 0.0)
        assert done_second > done_first

    def test_precharge_closes_row(self):
        self.bank.access(0, 0.0)
        self.bank.precharge()
        _, result = self.bank.access(0, 1000.0)
        assert result is RowBufferResult.MISS


class TestDramDevice:
    def test_address_out_of_range_rejected(self):
        device = make_device()
        with pytest.raises(ValueError):
            device.access(4 * MB, 0.0)
        with pytest.raises(ValueError):
            device.access(-1, 0.0)

    def test_channel_interleave_at_line_granularity(self):
        device = make_device()
        channel0, _, _ = device.map_address(0)
        channel1, _, _ = device.map_address(64)
        assert channel0 != channel1

    def test_same_row_addresses_share_bank(self):
        device = make_device()
        _, bank_a, row_a = device.map_address(0)
        _, bank_b, row_b = device.map_address(128)
        assert (bank_a, row_a) == (bank_b, row_b)

    def test_latency_positive_and_finite(self):
        device = make_device()
        latency = device.access(0, 0.0)
        assert 0 < latency < 1e4

    def test_row_hit_cheaper_than_cold_access(self):
        device = make_device()
        cold = device.access(0, 0.0)
        hit = device.access(0, 1e6)
        assert hit < cold

    def test_counters_track_reads_and_writes(self):
        counters = CounterSet()
        device = DramDevice(stacked_dram(4 * MB), counters)
        device.access(0, 0.0, is_write=False)
        device.access(64, 0.0, is_write=True)
        assert counters["dram.stacked.reads"] == 1
        assert counters["dram.stacked.writes"] == 1
        assert counters["dram.stacked.bytes"] == 128

    def test_fast_device_faster_than_slow_under_load(self):
        fast = make_device(4, fast=True)
        slow = make_device(4, fast=False)
        fast_total = sum(fast.access(i * 64 % (4 * MB), i * 2.0) for i in range(200))
        slow_total = sum(slow.access(i * 64 % (4 * MB), i * 2.0) for i in range(200))
        assert fast_total < slow_total

    def test_transfer_occupies_channels(self):
        device = make_device()
        finish = device.transfer(0, 2048, 0.0)
        # A demand access right after the transfer waits for the bus.
        latency = device.access(0, 0.0)
        assert latency >= finish * 0.5

    def test_transfer_size_validation(self):
        with pytest.raises(ValueError):
            make_device().transfer(0, 0, 0.0)

    def test_transfer_counters(self):
        counters = CounterSet()
        device = DramDevice(stacked_dram(4 * MB), counters)
        device.transfer(0, 2048, 0.0)
        assert counters["dram.stacked.transfers"] == 1
        assert counters["dram.stacked.transfer_bytes"] == 2048

    def test_row_hit_rate_reporting(self):
        device = make_device()
        device.access(0, 0.0)
        device.access(0, 1e6)
        assert device.row_hit_rate() == pytest.approx(0.5)

    def test_reset_timing_clears_state(self):
        device = make_device()
        device.access(0, 0.0)
        device.reset_timing()
        _, result_class = (
            device.access(0, 0.0),
            None,
        )
        # After reset the row is closed again: same latency as cold.
        fresh = make_device()
        assert device.row_hit_rate() < 1.0
        assert fresh.access(0, 0.0) > 0

    def test_monotonic_arrivals_bounded_latency(self):
        device = make_device()
        latencies = [
            device.access((i * 64) % (4 * MB), i * 10.0) for i in range(1000)
        ]
        assert max(latencies) < 1000.0


class TestHeterogeneousMemory:
    def setup_method(self):
        self.config = scaled_config()
        self.memory = HeterogeneousMemory(self.config)

    def test_bandwidth_ratio_is_four(self):
        assert self.memory.bandwidth_ratio() == pytest.approx(4.0)

    def test_access_routes_to_devices(self):
        fast_latency = self.memory.access(True, 0, 0.0)
        slow_latency = self.memory.access(False, 0, 0.0)
        assert fast_latency > 0 and slow_latency > 0

    def test_swap_counts_and_bytes(self):
        seg = self.config.segment_bytes
        self.memory.start_swap(0, 0, 0.0, fast_segment_id=0, slow_segment_id=10)
        assert self.memory.swaps == 1
        assert self.memory.counters["swap.bytes"] == 4 * seg

    def test_fill_cheaper_than_swap(self):
        a = HeterogeneousMemory(self.config)
        b = HeterogeneousMemory(self.config)
        swap_done = a.start_swap(0, 0, 0.0, 0, 10)
        fill_done = b.start_fill(0, 0, 0.0, slow_segment_id=10)
        assert fill_done < swap_done

    def test_dirty_fill_costs_like_swap(self):
        clean = HeterogeneousMemory(self.config)
        dirty = HeterogeneousMemory(self.config)
        clean_done = clean.start_fill(0, 0, 0.0, 10, writeback=False)
        dirty_done = dirty.start_fill(0, 0, 0.0, 10, writeback=True)
        assert dirty_done > clean_done
        assert dirty.counters["swap.writebacks"] == 1

    def test_in_transit_access_hits_buffer(self):
        self.memory.start_swap(0, 0, 0.0, fast_segment_id=0, slow_segment_id=10)
        latency = self.memory.access(False, 0, 1.0, segment_id=10)
        assert latency == BUFFER_HIT_NS
        assert self.memory.counters["swap.buffer_hits"] == 1

    def test_buffer_expires_after_completion(self):
        completes = self.memory.start_swap(0, 0, 0.0, 0, 10)
        latency = self.memory.access(False, 0, completes + 1.0, segment_id=10)
        assert latency != BUFFER_HIT_NS

    def test_buffer_write_marks_dirty(self):
        self.memory.start_swap(0, 0, 0.0, 0, 10)
        self.memory.access(False, 0, 1.0, is_write=True, segment_id=10)
        buffer = self.memory._buffers[10]
        assert buffer.dirty
