"""The public API surface resolves and is importable as documented,
and the :mod:`repro.api` facade matches its frozen snapshot.

The ``FROZEN_SURFACE`` snapshot below is the compatibility contract of
docs/API.md: changing any name or signature in ``repro.api`` fails
this suite on purpose.  If the change is intentional, it needs a
deprecation cycle (warn one minor release before removing/changing),
an entry in docs/API.md, and only then an update to the snapshot.
"""

import importlib
import inspect
import shutil
import subprocess
import sys

import pytest

import repro
from repro import api


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert major.isdigit() and minor.isdigit() and patch.isdigit()

    @pytest.mark.parametrize(
        "module",
        [
            "repro.config",
            "repro.stats",
            "repro.dram",
            "repro.cachesim",
            "repro.cpu",
            "repro.trace",
            "repro.osmodel",
            "repro.arch",
            "repro.core",
            "repro.workloads",
            "repro.sim",
            "repro.experiments",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.config",
            "repro.dram.device",
            "repro.cachesim.coherence",
            "repro.osmodel.buddy",
            "repro.arch.pom",
            "repro.core.chameleon",
            "repro.core.chameleon_opt",
            "repro.workloads.synthetic",
            "repro.sim.engine",
        ],
    )
    def test_key_modules_have_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 80

    def test_readme_quickstart_names_exist(self):
        # The README's quickstart imports must stay valid.
        from repro import (
            ChameleonOptArchitecture,
            PoMArchitecture,
            benchmark,
            build_workload,
            scaled_config,
            simulate,
        )

        assert callable(simulate) and callable(build_workload)

    def test_api_reexported_from_package_root(self):
        assert repro.api is api
        assert "api" in repro.__all__


def _describe(name: str) -> str:
    """One-line shape of an exported name: kind plus call signature."""
    obj = getattr(api, name)
    if inspect.isfunction(obj):
        return f"function{inspect.signature(obj)}"
    if inspect.isclass(obj):
        try:
            sig = str(inspect.signature(obj))
        except (ValueError, TypeError):
            sig = "(...)"
        return f"class{sig}"
    return f"constant:{type(obj).__name__}"


#: The frozen v3 surface: every ``repro.api`` export and, for
#: callables, its exact signature (names, order, kinds, defaults,
#: annotations).  Regenerate a candidate with ``_describe`` only as
#: the last step of a deliberate, documented surface change.
FROZEN_SURFACE = {
    "API_VERSION": "constant:int",
    "BenchmarkSpec": "class(name: 'str', suite: 'str', llc_mpki: 'float', footprint_gb: 'float', zipf_alpha: 'float', run_length: 'int', write_fraction: 'float', working_set_fraction: 'float' = 0.15, tail_fraction: 'float' = 0.05, phase_accesses: 'int' = 8000, churn: 'float' = 0.1) -> None",
    "CATEGORIES": "constant:tuple",
    "CacheHierarchy": "class(config: 'SystemConfig', num_cores: 'int | None' = None, counters: 'CounterSet | None' = None) -> 'None'",
    "CoherentHierarchy": "class(config: 'SystemConfig', num_cores: 'int | None' = None, counters: 'CounterSet | None' = None) -> 'None'",
    "DesignSpec": "class(label: 'str', factory: 'DesignFactory', category: 'str', figures: 'Tuple[str, ...]' = ()) -> None",
    "EventBus": "class() -> 'None'",
    "EventLog": "class(limit: 'Optional[int]' = None) -> 'None'",
    "GB": "constant:int",
    "KB": "constant:int",
    "LongRunSimulator": "class(capacity_bytes: 'int') -> 'None'",
    "MB": "constant:int",
    "MemoryArchitecture": "class(config: 'SystemConfig', counters: 'CounterSet | None' = None, telemetry: 'EventBus | NullBus | None' = None)",
    "MultiprogramWorkload": "class(config: 'SystemConfig', spec: 'BenchmarkSpec', num_copies: 'int', segments: 'List[int]', per_core_segments: 'List[List[int]]', seed: 'int' = 0, trace: 'CompiledTrace | None' = None) -> None",
    "ServeClient": "class(host: 'str' = '127.0.0.1', port: 'int' = 8642, *, timeout: 'float' = 300.0) -> 'None'",
    "SimRequest": "class(design: 'str', workload: 'str', fast_mb: 'float' = 4.0, ratio: 'int' = 5, accesses_per_core: 'int' = 1500, warmup_per_core: 'int' = 1500, num_copies: 'int' = 12, seed: 'int' = 0, client: 'str' = 'anon', priority: 'int' = 0) -> None",
    "Scale": "class(fast_mb: 'float' = 4.0, ratio: 'int' = 5, accesses_per_core: 'int' = 1500, warmup_per_core: 'int' = 1500, num_copies: 'int' = 12, benchmarks: 'Tuple[str, ...]' = ('bwaves', 'lbm', 'cactusADM', 'leslie3d', 'mcf', 'GemsFDTD', 'SP', 'stream', 'cloverleaf', 'comd', 'miniAMR', 'hpccg', 'miniFE', 'miniGhost'), seed: 'int' = 0) -> None",
    "SimulationResult": "class(workload: 'str', architecture: 'str', performance: 'WorkloadPerformance', fast_hit_rate: 'float', average_latency_ns: 'float', swaps: 'float', page_faults: 'int', counters: 'CounterSet', cache_mode_fraction: 'Optional[float]' = None) -> None",
    "SweepMetrics": "class(jobs: 'int' = 1, cells: 'List[CellStat]' = <factory>, wall_seconds: 'float' = 0.0, sweeps: 'int' = 0, crashes: 'int' = 0, timeouts: 'int' = 0, errors: 'int' = 0, retries: 'int' = 0, degraded: 'bool' = False, arena_bytes: 'int' = 0, arena_hits: 'int' = 0, kernels: 'Dict[str, int]' = <factory>) -> None",
    "SweepOutcome": "class(results: 'Mapping[Tuple[str, str], SimulationResult]', metrics: 'SweepMetrics', events: 'Mapping[Tuple[str, str], List[TelemetryEvent]]' = <factory>) -> None",
    "SweepRequest": "class(designs: 'Tuple[str, ...]', workloads: 'Tuple[str, ...]', fast_mb: 'float' = 4.0, ratio: 'int' = 5, accesses_per_core: 'int' = 1500, warmup_per_core: 'int' = 1500, num_copies: 'int' = 12, seed: 'int' = 0, client: 'str' = 'anon', priority: 'int' = 0) -> None",
    "SystemConfig": "class(num_cores: 'int' = 12, core: 'CoreConfig' = <factory>, l1: 'CacheLevelConfig' = <factory>, l2: 'CacheLevelConfig' = <factory>, l3: 'CacheLevelConfig' = <factory>, fast_mem: 'DramConfig' = <factory>, slow_mem: 'DramConfig' = <factory>, segment_bytes: 'int' = 2048, page_bytes: 'int' = 4096, page_fault_latency_cycles: 'int' = 100000) -> None",
    "TimelineRecorder": "class() -> 'None'",
    "WorkloadSpec": "class(name: 'str', footprint_bytes: 'int', base_seconds: 'float', page_touch_rate: 'float' = 200000.0, locality: 'float' = 0.6, alloc_fraction: 'float' = 0.05) -> None",
    "__version__": "constant:str",
    "benchmark": "function(name: 'str') -> 'BenchmarkSpec'",
    "build_design": "function(label: 'str', config: 'Optional[SystemConfig]' = None) -> 'MemoryArchitecture'",
    "build_workload": "function(name: 'Union[str, BenchmarkSpec]', *, config: 'Optional[SystemConfig]' = None, num_copies: 'int' = 12, scattered: 'bool' = True, seed: 'int' = 0, footprint_override_fraction: 'Optional[float]' = None, exclude_segments: 'Optional[set]' = None) -> 'MultiprogramWorkload'",
    "characterize": "function(records: 'Iterable[AccessRecord]', page_bytes: 'int' = 4096) -> 'TraceProfile'",
    "designs": "function(*, figure: 'Optional[str]' = None, category: 'Optional[str]' = None) -> 'Tuple[DesignSpec, ...]'",
    "improvement_percent": "function(baseline: 'CapacityRunResult', other: 'CapacityRunResult') -> 'float'",
    "read_trace": "function(path: 'str | Path') -> 'Iterator[AccessRecord]'",
    "scaled_config": "function(*, fast_mb: 'float' = 4.0, ratio: 'int' = 5, segment_bytes: 'int' = 2048) -> 'SystemConfig'",
    "simulate": "function(*, design: 'Union[str, MemoryArchitecture]', workload: 'Union[str, MultiprogramWorkload]', config: 'Optional[SystemConfig]' = None, accesses_per_core: 'int' = 2000, warmup_per_core: 'Optional[int]' = None, num_copies: 'int' = 12, seed: 'int' = 0, kernel: 'str' = 'auto', apply_isa: 'bool' = True, telemetry: 'Optional[EventBus]' = None) -> 'SimulationResult'",
    "sweep": "function(*, designs: 'Optional[Sequence[str]]' = None, scale: 'Optional[Scale]' = None, jobs: 'int' = 1, cache_dir: 'Optional[Union[str, Path]]' = None, audit: 'bool' = False, arena: 'bool' = True, arena_budget: 'Optional[int]' = None, timeout: 'Optional[float]' = None, retries: 'Optional[int]' = None) -> 'SweepOutcome'",
    "workloads": "function() -> 'Tuple[BenchmarkSpec, ...]'",
    "write_trace": "function(path: 'str | Path', records: 'Iterable[AccessRecord]') -> 'int'",
}


class TestFrozenApiSurface:
    def test_all_is_sorted_and_complete(self):
        assert list(api.__all__) == sorted(api.__all__)
        assert set(api.__all__) == set(FROZEN_SURFACE)

    def test_api_version(self):
        assert api.API_VERSION == 3

    @pytest.mark.parametrize("name", sorted(FROZEN_SURFACE))
    def test_name_matches_snapshot(self, name):
        assert _describe(name) == FROZEN_SURFACE[name], (
            f"repro.api.{name} changed shape; public-surface changes "
            "need a deprecation cycle (docs/API.md) before the "
            "snapshot may be updated"
        )

    def test_no_extra_public_names(self):
        # Nothing importable-looking leaks beyond __all__ (helpers are
        # underscore-prefixed; re-exported module objects are fine to
        # reach but are not part of the contract).
        public = {
            name
            for name, obj in vars(api).items()
            if not name.startswith("_") and not inspect.ismodule(obj)
        }
        contract = set(api.__all__)
        # Internal names used by the facade implementation itself,
        # plus typing/stdlib imports at module scope:
        allowed_extras = {
            "DEFAULT_SEGMENT_BYTES",
            "REGISTRY",
            "ResultCache",
            "SweepExecutor",
            "TABLE2_BENCHMARKS",
            "TelemetryEvent",
            "Dict", "List", "Mapping", "Optional", "Path", "Sequence",
            "Tuple", "Union", "annotations", "dataclass", "field",
        }
        assert public - contract <= allowed_extras


class TestApiTypeChecks:
    def test_py_typed_marker_ships(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()

    @pytest.mark.skipif(
        shutil.which("mypy") is None, reason="mypy not installed"
    )
    def test_facade_passes_mypy_strict(self):
        from pathlib import Path

        api_path = Path(api.__file__)
        proc = subprocess.run(
            [
                "mypy",
                "--strict",
                "--follow-imports=silent",
                str(api_path),
            ],
            capture_output=True,
            text=True,
            cwd=str(api_path.parent.parent.parent),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
