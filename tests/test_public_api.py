"""The public API surface resolves and is importable as documented."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert major.isdigit() and minor.isdigit() and patch.isdigit()

    @pytest.mark.parametrize(
        "module",
        [
            "repro.config",
            "repro.stats",
            "repro.dram",
            "repro.cachesim",
            "repro.cpu",
            "repro.trace",
            "repro.osmodel",
            "repro.arch",
            "repro.core",
            "repro.workloads",
            "repro.sim",
            "repro.experiments",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.config",
            "repro.dram.device",
            "repro.cachesim.coherence",
            "repro.osmodel.buddy",
            "repro.arch.pom",
            "repro.core.chameleon",
            "repro.core.chameleon_opt",
            "repro.workloads.synthetic",
            "repro.sim.engine",
        ],
    )
    def test_key_modules_have_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 80

    def test_readme_quickstart_names_exist(self):
        # The README's quickstart imports must stay valid.
        from repro import (
            ChameleonOptArchitecture,
            PoMArchitecture,
            benchmark,
            build_workload,
            scaled_config,
            simulate,
        )

        assert callable(simulate) and callable(build_workload)
