"""Tests for the basic Chameleon co-design (Figures 8-11).

The transition tests mirror the paper's worked examples: Figure 9
(ISA-Alloc of the stacked segment) and Figure 11 (ISA-Free of a
remapped stacked segment).
"""

import pytest

from repro.config import scaled_config
from repro.arch.remap import Mode
from repro.core import ChameleonArchitecture


@pytest.fixture
def config():
    return scaled_config(fast_mb=1.0)


@pytest.fixture
def arch(config):
    return ChameleonArchitecture(config)


def group_members(arch, group):
    """OS segment ids of a group's members, local order."""
    return [
        arch.geometry.segment_at(group, local)
        for local in range(arch.geometry.segments_per_group)
    ]


def address_of(arch, segment, offset=0):
    return segment * arch.geometry.segment_bytes + offset


class TestBootState:
    def test_groups_boot_in_cache_mode_with_clear_abv(self, arch):
        state = arch.group_state(0)
        assert state.mode is Mode.CACHE
        assert not any(state.abv)
        assert state.cached is None


class TestIsaAllocTransitions:
    def test_offchip_alloc_keeps_mode(self, arch):
        members = group_members(arch, 0)
        arch.isa_alloc(members[1])
        state = arch.group_state(0)
        assert state.mode is Mode.CACHE  # flow 1-2-4-5
        assert state.abv[1]

    def test_stacked_alloc_caching_nothing_enters_pom(self, arch):
        # Figure 9: tag bits 00, nothing cached -> straight to PoM mode.
        members = group_members(arch, 0)
        arch.isa_alloc(members[0])
        state = arch.group_state(0)
        assert state.mode is Mode.POM
        assert state.abv[0]
        assert arch.counters["chameleon.to_pom"] == 1

    def test_stacked_alloc_evicts_clean_cached_segment(self, arch):
        members = group_members(arch, 0)
        arch.isa_alloc(members[1])
        # Read-only access caches segment local 1 (clean).
        arch.access(address_of(arch, members[1]), 0.0, is_write=False)
        assert arch.group_state(0).cached == 1
        swaps_before = arch.swap_count
        arch.isa_alloc(members[0])
        state = arch.group_state(0)
        assert state.mode is Mode.POM
        assert state.cached is None
        # Clean eviction: no writeback swap charged.
        assert arch.swap_count == swaps_before

    def test_stacked_alloc_writes_back_dirty_cached_segment(self, arch):
        members = group_members(arch, 0)
        arch.isa_alloc(members[1])
        arch.access(address_of(arch, members[1]), 0.0, is_write=True)
        assert arch.group_state(0).dirty
        arch.isa_alloc(members[0])
        assert arch.counters["chameleon.dirty_evictions"] >= 1

    def test_security_clear_on_transition(self, arch):
        members = group_members(arch, 0)
        arch.isa_alloc(members[0])
        assert arch.counters["chameleon.segments_cleared"] >= 1


class TestIsaFreeTransitions:
    def test_offchip_free_keeps_mode(self, arch):
        members = group_members(arch, 0)
        for member in members:
            arch.isa_alloc(member)
        assert arch.group_state(0).mode is Mode.POM
        arch.isa_free(members[2])
        state = arch.group_state(0)
        assert state.mode is Mode.POM  # basic design: off-chip free ignored
        assert not state.abv[2]

    def test_stacked_free_not_remapped_enters_cache(self, arch):
        members = group_members(arch, 0)
        arch.isa_alloc(members[0])
        arch.isa_free(members[0])
        state = arch.group_state(0)
        assert state.mode is Mode.CACHE
        assert not state.abv[0]
        assert state.seg_at[0] == 0  # tags back to 00

    def test_stacked_free_remapped_swaps_back_first(self, arch):
        # Figure 11: the stacked segment was hot-swapped off-chip; the
        # free must proactively restore it to slot 0.
        members = group_members(arch, 0)
        for member in members:
            arch.isa_alloc(member)
        # Hammer an off-chip member until the competing counter swaps it
        # into the stacked slot.
        target = members[3]
        for i in range(200):
            arch.access(address_of(arch, target), float(i) * 1e4)
            if arch.group_state(0).slot_of[3] == 0:
                break
        state = arch.group_state(0)
        assert state.slot_of[0] != 0, "precondition: local 0 displaced"
        swaps_before = arch.counters["chameleon.restore_swaps"]
        arch.isa_free(members[0])
        state = arch.group_state(0)
        assert state.mode is Mode.CACHE
        assert state.seg_at[0] == 0  # restored to slot 0 before freeing
        assert arch.counters["chameleon.restore_swaps"] == swaps_before + 1


class TestCacheModeDemandPath:
    def test_miss_then_hit(self, arch):
        members = group_members(arch, 0)
        arch.isa_alloc(members[1])
        first = arch.access(address_of(arch, members[1]), 0.0)
        assert not first.fast_hit
        second = arch.access(address_of(arch, members[1]), 1e5)
        assert second.fast_hit
        assert arch.counters["chameleon.cache_hits"] >= 1

    def test_fill_on_first_access_no_threshold(self, arch):
        members = group_members(arch, 0)
        arch.isa_alloc(members[1])
        arch.access(address_of(arch, members[1]), 0.0)
        assert arch.group_state(0).cached == 1
        assert arch.counters["chameleon.fills"] == 1

    def test_pom_mode_group_uses_competing_counter(self, arch):
        members = group_members(arch, 0)
        for member in members:
            arch.isa_alloc(member)
        # In PoM mode no cache fills may happen.
        arch.access(address_of(arch, members[1]), 0.0)
        assert arch.counters["chameleon.fills"] == 0

    def test_protect_policy_resists_pingpong(self, config):
        arch = ChameleonArchitecture(config, fill_policy="protect")
        members = group_members(arch, 0)
        arch.isa_alloc(members[1])
        arch.isa_alloc(members[2])
        # Alternate single accesses between two hot segments; the
        # incumbent keeps hitting so it must never be evicted.
        arch.access(address_of(arch, members[1]), 0.0)
        fills_after_first = arch.counters["chameleon.fills"]
        for i in range(20):
            arch.access(address_of(arch, members[1]), 1e4 * (i + 1))
            arch.access(address_of(arch, members[2]), 1e4 * (i + 1) + 5e3)
        assert arch.counters["chameleon.fills"] == fills_after_first

    def test_always_policy_fills_every_miss(self, config):
        arch = ChameleonArchitecture(config, fill_policy="always")
        members = group_members(arch, 0)
        arch.isa_alloc(members[1])
        arch.isa_alloc(members[2])
        for i in range(6):
            arch.access(address_of(arch, members[1]), 1e5 * i)
            arch.access(address_of(arch, members[2]), 1e5 * i + 5e4)
        assert arch.counters["chameleon.fills"] >= 10

    def test_invalid_fill_policy_rejected(self, config):
        with pytest.raises(ValueError):
            ChameleonArchitecture(config, fill_policy="bogus")

    def test_dirty_fill_eviction_counts_as_swap(self, config):
        arch = ChameleonArchitecture(config, fill_policy="always")
        members = group_members(arch, 0)
        arch.isa_alloc(members[1])
        arch.isa_alloc(members[2])
        arch.access(address_of(arch, members[1]), 0.0, is_write=True)
        swaps_before = arch.swap_count
        arch.access(address_of(arch, members[2]), 1e6)
        assert arch.swap_count == swaps_before + 1


class TestModeDistribution:
    def test_empty_distribution_is_all_cache(self, arch):
        assert arch.mode_distribution() == (1.0, 0.0)

    def test_distribution_tracks_allocations(self, arch):
        members0 = group_members(arch, 0)
        members1 = group_members(arch, 1)
        arch.isa_alloc(members0[0])  # group 0 -> PoM
        arch.isa_alloc(members1[1])  # group 1 stays cache
        cache_fraction, pom_fraction = arch.mode_distribution()
        assert cache_fraction == pytest.approx(0.5)
        assert pom_fraction == pytest.approx(0.5)

    def test_full_alloc_free_round_trip(self, arch):
        members = group_members(arch, 7)
        for member in members:
            arch.isa_alloc(member)
        assert arch.group_state(7).mode is Mode.POM
        for member in members:
            arch.isa_free(member)
        state = arch.group_state(7)
        assert state.mode is Mode.CACHE
        assert not any(state.abv)
        state.validate()
