"""Smoke tests for the runnable examples.

The heavyweight examples (full-scale simulations) are compile-checked;
the analytic one runs end to end.
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "datacenter_scheduler.py",
        "capacity_planning.py",
        "mode_timeline.py",
        "serve_client.py",
    } <= names


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "datacenter_scheduler.py",
        "capacity_planning.py",
        "mode_timeline.py",
        "serve_client.py",
    ],
)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)


def test_capacity_planning_runs(capsys):
    # Purely analytic: fast enough to execute in the unit suite.
    runpy.run_path(str(EXAMPLES / "capacity_planning.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "capacity sweep" in out
    assert "24GB" in out
    assert "smallest fault-free capacity" in out
