"""Tests for the experiment runners (smoke scale)."""

import pytest

from repro.experiments import SMOKE_SCALE, Scale, format_series, format_table
from repro.experiments.figures import (
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_fig21,
    run_fig22,
    run_fig23,
)
from repro.experiments.longrun_figures import run_fig3, run_fig4, run_fig5
from repro.experiments.os_figures import run_fig2a, run_fig2b, run_fig2c
from repro.experiments.overhead import run_overhead_analysis
from repro.experiments.designs import REGISTRY
from repro.experiments.runner import clear_sweep_cache, run_design_sweep
from repro.experiments.tables import run_table1, run_table2


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_downsamples(self):
        times = list(range(100))
        text = format_series(times, {"v": times}, max_points=10)
        assert len(text.splitlines()) <= 13

    def test_format_series_length_check(self):
        with pytest.raises(ValueError):
            format_series([1, 2], {"v": [1]})


class TestRunnerInfra:
    def test_scale_config_ratio(self):
        assert SMOKE_SCALE.config().capacity_ratio == 5

    def test_with_ratio_preserves_total(self):
        base = SMOKE_SCALE.config().total_capacity_bytes
        for ratio in (3, 7):
            scaled = SMOKE_SCALE.with_ratio(ratio)
            assert scaled.config().total_capacity_bytes == pytest.approx(
                base, rel=0.01
            )
            assert scaled.config().capacity_ratio == ratio

    def test_design_registry_covers_paper(self):
        for label in (
            "baseline_20GB_DDR3",
            "Alloy-Cache",
            "PoM",
            "Chameleon",
            "Chameleon-Opt",
            "Polymorphic",
            "CAMEO",
            "numaAware",
        ):
            assert label in REGISTRY

    def test_sweep_keys_and_cache(self):
        clear_sweep_cache()
        results = run_design_sweep(SMOKE_SCALE, ("PoM",))
        assert set(results) == {
            ("PoM", name) for name in SMOKE_SCALE.benchmarks
        }
        again = run_design_sweep(SMOKE_SCALE, ("PoM",))
        first = results[("PoM", "mcf")]
        assert again[("PoM", "mcf")] is first  # memoised

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            run_design_sweep(SMOKE_SCALE, ("NotADesign",))


class TestMainFigures:
    def test_fig15_hit_rate_ordering(self):
        result = run_fig15(SMOKE_SCALE)
        summary = result.summary
        assert summary["Alloy-Cache"] < summary["PoM"]
        assert summary["PoM"] <= summary["Chameleon-Opt"] + 1.0
        assert "Average" in result.render()

    def test_fig16_opt_dominates(self):
        result = run_fig16(SMOKE_SCALE)
        assert result.summary["Chameleon-Opt"] > result.summary["Chameleon"]

    def test_fig17_swap_reduction(self):
        result = run_fig17(SMOKE_SCALE)
        assert result.summary["PoM"] == pytest.approx(1.0)
        assert result.summary["Chameleon-Opt"] <= result.summary["Chameleon"]
        assert result.summary["Chameleon"] <= 1.05

    def test_fig18_baseline_normalisation(self):
        result = run_fig18(SMOKE_SCALE)
        assert result.summary["baseline_20GB_DDR3"] == pytest.approx(1.0)
        # The capacity-unconstrained baseline beats the faulting one.
        assert result.summary["baseline_24GB_DDR3"] > 1.0

    def test_fig19_latency_positive(self):
        result = run_fig19(SMOKE_SCALE)
        for design, value in result.summary.items():
            assert value > 0

    def test_fig21_cache_fraction_grows_with_ratio(self):
        result = run_fig21(SMOKE_SCALE, ratios=(3, 7))
        assert result.summary["1:7"] > result.summary["1:3"]

    def test_fig22_polymorphic_compared(self):
        result = run_fig22(SMOKE_SCALE)
        assert "cham_vs_poly_percent" in result.summary

    def test_fig23_reports_both_ratios(self):
        result = run_fig23(SMOKE_SCALE, ratios=(3, 7))
        assert "1:3:opt_vs_pom" in result.summary
        assert "1:7:opt_vs_pom" in result.summary


class TestOsFigures:
    def test_fig2a_capacity_bound_hit_rate(self):
        result = run_fig2a(SMOKE_SCALE)
        # First-touch hit rate sits near the stacked capacity share
        # (1/6 of memory, ~18.5% in the paper).
        assert 5.0 < result.summary["average"] < 45.0

    def test_fig2b_runs_all_thresholds(self):
        result = run_fig2b(SMOKE_SCALE)
        assert len(result.summary) == 3

    def test_fig2c_timeline_shape(self):
        timeline, result = run_fig2c(SMOKE_SCALE, epoch_accesses=300)
        assert len(timeline) >= 3
        assert result.summary["total_migrated"] > 0
        # Rise-then-decay: the peak is no worse than the final value.
        assert (
            result.summary["peak_hit_percent"]
            >= result.summary["final_hit_percent"] - 1e-9
        )


class TestLongrunFigures:
    def test_fig3_free_memory_swings(self):
        timeline, result = run_fig3(base_seconds=600.0)
        assert result.summary["min_free_mb"] < result.summary["max_free_mb"]

    def test_fig4_improvement_monotone_then_saturates(self):
        result = run_fig4()
        summary = result.summary
        assert summary["18GB"] < summary["24GB"]
        assert summary["24GB"] == pytest.approx(summary["28GB"], abs=0.5)

    def test_fig5_utilisation_rises_with_capacity(self):
        result = run_fig5()
        assert result.summary["util@16GB"] < result.summary["util@24GB"]
        assert result.summary["util@24GB"] == pytest.approx(100.0, abs=0.1)
        assert result.summary["faults_M@16GB"] > result.summary["faults_M@24GB"]


class TestTablesAndOverhead:
    def test_table1_renders(self):
        result = run_table1()
        text = result.render()
        assert "Stacked DRAM" in text
        assert result.summary["peak_bw_ratio"] == pytest.approx(4.0)

    def test_table2_mpki_accuracy(self):
        result = run_table2()
        assert result.summary["max_mpki_relative_error"] < 0.05

    def test_overhead_near_paper_estimate(self):
        report = run_overhead_analysis()
        # Paper: 1.06%; our schedule reproduces the same arithmetic.
        assert 0.3 < report.overhead_percent < 3.0
        assert report.isa_events > 1e8  # paper: 242.8M events
