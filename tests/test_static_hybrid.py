"""Tests for the KNL-style static hybrid (Section II-C3)."""

import pytest

from repro.config import scaled_config
from repro.arch import StaticHybridMemory
from repro.sim import simulate
from repro.workloads import benchmark, build_workload


@pytest.fixture
def config():
    return scaled_config(fast_mb=1.0)


class TestPartitioning:
    def test_fraction_zero_is_all_memory(self, config):
        arch = StaticHybridMemory(config, cache_fraction=0.0)
        assert arch.cache_bytes == 0
        assert arch.os_visible_bytes == config.total_capacity_bytes

    def test_fraction_one_is_all_cache(self, config):
        arch = StaticHybridMemory(config, cache_fraction=1.0)
        assert arch.flat_fast_bytes == 0
        assert arch.os_visible_bytes == config.slow_mem.capacity_bytes

    def test_half_split(self, config):
        arch = StaticHybridMemory(config, cache_fraction=0.5)
        fast = config.fast_mem.capacity_bytes
        assert arch.cache_bytes == fast // 2
        assert arch.flat_fast_bytes == fast - fast // 2

    def test_visible_capacity_shrinks_with_cache_share(self, config):
        visible = [
            StaticHybridMemory(config, cache_fraction=f).os_visible_bytes
            for f in (0.0, 0.25, 0.5, 1.0)
        ]
        assert visible == sorted(visible, reverse=True)

    def test_invalid_fraction(self, config):
        with pytest.raises(ValueError):
            StaticHybridMemory(config, cache_fraction=1.5)


class TestAccessBehaviour:
    def test_fast_partition_always_hits(self, config):
        arch = StaticHybridMemory(config, cache_fraction=0.5)
        result = arch.access(0, 0.0)
        assert result.fast_hit

    def test_slow_region_misses_then_caches(self, config):
        arch = StaticHybridMemory(config, cache_fraction=0.5)
        address = arch.flat_fast_bytes + 0x10000
        assert not arch.access(address, 0.0).fast_hit
        assert arch.access(address, 1e5).fast_hit

    def test_pure_memory_mode_never_caches(self, config):
        arch = StaticHybridMemory(config, cache_fraction=0.0)
        address = arch.flat_fast_bytes + 0x10000
        for i in range(5):
            result = arch.access(address, i * 1e5)
        assert not result.fast_hit

    def test_out_of_range_rejected(self, config):
        arch = StaticHybridMemory(config, cache_fraction=0.5)
        with pytest.raises(ValueError):
            arch.access(arch.os_visible_bytes, 0.0)

    def test_dirty_writeback_counted(self, config):
        arch = StaticHybridMemory(config, cache_fraction=0.5)
        base = arch.flat_fast_bytes
        stride = arch.cache_bytes  # same set, different tag
        arch.access(base, 0.0, is_write=True)
        arch.access(base + stride, 1e5)
        assert arch.counters["knl.writebacks"] == 1


class TestStaticVsDynamic:
    def test_static_partitions_trade_capacity_for_hits(self, config):
        """The KNL dilemma: more cache share loses OS-visible capacity
        (faults for big footprints), less loses hit rate."""
        workload = build_workload(config, benchmark("cloverleaf"), num_copies=4)
        all_cache = simulate(
            StaticHybridMemory(config, cache_fraction=1.0),
            workload,
            accesses_per_core=400,
            warmup_per_core=400,
        )
        all_memory = simulate(
            StaticHybridMemory(config, cache_fraction=0.0),
            workload,
            accesses_per_core=400,
            warmup_per_core=400,
        )
        assert all_cache.page_faults > 0  # 23GB-class footprint overflows
        assert all_memory.page_faults == 0
        assert all_memory.fast_hit_rate < all_cache.fast_hit_rate

    def test_chameleon_dominates_static_hybrid_on_big_footprints(self, config):
        from repro.core import ChameleonOptArchitecture

        workload = build_workload(config, benchmark("cloverleaf"), num_copies=4)
        knl = simulate(
            StaticHybridMemory(config, cache_fraction=0.5),
            workload,
            accesses_per_core=600,
            warmup_per_core=600,
        )
        chameleon = simulate(
            ChameleonOptArchitecture(config),
            workload,
            accesses_per_core=600,
            warmup_per_core=600,
        )
        # Chameleon keeps full capacity (no faults) AND caches.
        assert chameleon.page_faults == 0
        assert chameleon.fast_hit_rate > knl.fast_hit_rate * 0.8
