"""Batched-kernel parity and regression suite.

The batched replay kernel is only allowed to be *faster* than the
scalar reference — never different.  These tests hold the two kernels
bit-identical (full :meth:`SimulationResult.to_dict` wire form plus the
telemetry event stream) across every registered design, and pin the
engine behaviours the batched path had to preserve: telemetry-bus
restoration, integer fault tallies, warmup/measured accounting, and the
bulk counter/histogram accumulators.
"""

import json

import pytest

from repro.config import scaled_config
from repro.arch import FlatMemory, PoMArchitecture
from repro.core import ChameleonArchitecture
from repro.experiments.designs import REGISTRY
from repro.experiments.runner import SMOKE_SCALE
from repro.sim import KERNELS, KernelDecision, select_kernel, simulate
from repro.stats import CounterSet, Histogram
from repro.telemetry.bus import EventBus
from repro.telemetry.events import EpochSample
from repro.telemetry.recorder import EventLog
from repro.workloads import benchmark, build_workload

#: Designs whose OS-visible capacity forces a pager (batched-paged).
PAGER_BACKED = {
    "baseline_20GB_DDR3",
    "Alloy-Cache",
    "KNL-hybrid-25",
    "KNL-hybrid-50",
}


def _smoke_workload(config):
    return build_workload(
        config,
        benchmark(SMOKE_SCALE.benchmarks[0]),
        num_copies=SMOKE_SCALE.num_copies,
        seed=SMOKE_SCALE.seed,
    )


def _run(label, kernel, config):
    architecture = REGISTRY.get(label).factory(config)
    workload = _smoke_workload(config)
    bus = EventBus()
    log = EventLog()
    bus.subscribe(log)
    result = simulate(
        architecture,
        workload,
        accesses_per_core=SMOKE_SCALE.accesses_per_core,
        warmup_per_core=SMOKE_SCALE.warmup_per_core,
        telemetry=bus,
        kernel=kernel,
    )
    events = [event.to_dict() for event in log.events]
    return result, events


class TestKernelParity:
    """auto (batched where eligible) == scalar, for every design."""

    @pytest.fixture(scope="class")
    def config(self):
        return SMOKE_SCALE.config()

    @pytest.mark.slow
    @pytest.mark.parametrize("label", REGISTRY.labels())
    def test_design_parity(self, label, config):
        scalar_result, scalar_events = _run(label, "scalar", config)
        auto_result, auto_events = _run(label, "auto", config)
        assert json.dumps(
            auto_result.to_dict(), sort_keys=True
        ) == json.dumps(scalar_result.to_dict(), sort_keys=True)
        assert auto_events == scalar_events

    def test_parity_covers_batched_designs(self, config):
        """The sweep above exercises the batched kernel, not just the
        pager-segmented path — guard against the registry drifting to
        all-pager designs."""
        batched = [
            label
            for label in REGISTRY.labels()
            if label not in PAGER_BACKED
        ]
        assert len(batched) >= 3

    def test_parity_covers_pager_backed_designs(self):
        """And the converse: the registry keeps pager-backed designs so
        the sweep exercises the batched-paged kernel."""
        assert PAGER_BACKED <= set(REGISTRY.labels())


class TestKernelSelection:
    @pytest.fixture(scope="class")
    def config(self):
        return SMOKE_SCALE.config()

    def test_kernels_constant(self):
        assert KERNELS == ("auto", "batched", "batched-paged", "scalar")

    @pytest.mark.parametrize("label", sorted(PAGER_BACKED))
    def test_pager_backed_designs_select_batched_paged(self, label, config):
        architecture = REGISTRY.get(label).factory(config)
        workload = _smoke_workload(config)
        pager_present = (
            architecture.os_visible_bytes < config.total_capacity_bytes
        )
        assert pager_present
        decision = select_kernel(architecture, workload, pager_present)
        assert decision == KernelDecision("batched-paged", "pager-segmented")
        assert decision.kernel == "batched-paged"
        assert decision.reason == "pager-segmented"

    def test_pom_selects_batched(self, config):
        architecture = PoMArchitecture(config)
        workload = _smoke_workload(config)
        assert select_kernel(architecture, workload, False) == KernelDecision(
            "batched", "batch-capable"
        )

    def test_decision_is_a_pair(self, config):
        """KernelDecision unpacks as a (kernel, reason) tuple."""
        kernel, reason = select_kernel(PoMArchitecture(config), None, False)
        assert kernel == "batched"
        assert reason == "batch-capable"

    def test_forced_batched_rejects_pager_backed_design(self, config):
        architecture = REGISTRY.get("Alloy-Cache").factory(config)
        workload = _smoke_workload(config)
        with pytest.raises(ValueError, match="pager-backed"):
            simulate(
                architecture,
                workload,
                accesses_per_core=50,
                warmup_per_core=0,
                kernel="batched",
            )

    def test_forced_batched_paged_rejects_pagerless_design(self, config):
        architecture = PoMArchitecture(config)
        workload = _smoke_workload(config)
        with pytest.raises(ValueError, match="pager"):
            simulate(
                architecture,
                workload,
                accesses_per_core=50,
                warmup_per_core=0,
                kernel="batched-paged",
            )

    def test_unknown_kernel_rejected(self, config):
        architecture = PoMArchitecture(config)
        workload = _smoke_workload(config)
        with pytest.raises(ValueError, match="kernel"):
            simulate(
                architecture,
                workload,
                accesses_per_core=50,
                warmup_per_core=0,
                kernel="vectorised",
            )


class TestFaultSegmentParity:
    """batched-paged == scalar under real fault pressure.

    The registry parity sweep above runs the pager-backed designs at
    capacities where faults are rare; these cases shrink a FlatMemory's
    capacity until the fault machinery dominates — constant thrash at
    the smallest fraction exercises faults on every lane of a chunk
    (lane 0, last lane, consecutive faults), LRU evictions mid-chunk,
    and the stale-translation diversion path, while the larger
    fractions mix long resident streaks with occasional faults.
    """

    #: Fraction of total capacity the flat device exposes.  1e-7 floors
    #: at one page (every access faults); 0.6 leaves faults rare.
    FRACTIONS = (1e-7, 1e-3, 0.02, 0.6)

    @pytest.fixture(scope="class")
    def config(self):
        return SMOKE_SCALE.config()

    def _run_flat(self, config, fraction, kernel, *, warmup=300):
        capacity = max(
            int(config.total_capacity_bytes * fraction), config.page_bytes
        )
        architecture = FlatMemory(config, capacity_bytes=capacity)
        assert architecture.os_visible_bytes < config.total_capacity_bytes
        workload = _smoke_workload(config)
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        result = simulate(
            architecture,
            workload,
            accesses_per_core=300,
            warmup_per_core=warmup,
            telemetry=bus,
            kernel=kernel,
        )
        return result, [event.to_dict() for event in log.events]

    @pytest.mark.parametrize("fraction", FRACTIONS)
    def test_fault_heavy_parity(self, config, fraction):
        scalar_result, scalar_events = self._run_flat(
            config, fraction, "scalar"
        )
        paged_result, paged_events = self._run_flat(
            config, fraction, "batched-paged"
        )
        assert json.dumps(
            paged_result.to_dict(), sort_keys=True
        ) == json.dumps(scalar_result.to_dict(), sort_keys=True)
        assert paged_events == scalar_events
        assert paged_result.page_faults == scalar_result.page_faults

    def test_thrash_faults_are_measured(self, config):
        """The smallest fraction really does fault in the measured
        window — the parity case above is not vacuous."""
        result, events = self._run_flat(config, self.FRACTIONS[0], "scalar")
        assert result.page_faults > 0
        kinds = {event["kind"] for event in events}
        assert "page_fault" in kinds

    def test_warmup_boundary_fault_parity(self, config):
        """Faults straddling the warmup/measured boundary: warmup
        faults mutate LRU state and emit events but must not leak into
        measured fault tallies, identically on both kernels."""
        scalar_result, scalar_events = self._run_flat(
            config, 1e-3, "scalar", warmup=301
        )
        paged_result, paged_events = self._run_flat(
            config, 1e-3, "batched-paged", warmup=301
        )
        assert json.dumps(
            paged_result.to_dict(), sort_keys=True
        ) == json.dumps(scalar_result.to_dict(), sort_keys=True)
        assert paged_events == scalar_events
        # Warmup faulted (events precede measurement) yet measured
        # tallies count only the measured window.
        faults_seen = sum(
            1 for event in scalar_events if event["kind"] == "page_fault"
        )
        assert faults_seen >= scalar_result.page_faults


class TestTelemetryBusHygiene:
    def test_simulate_restores_prior_bus(self):
        """A telemetry run must not leak its bus into the architecture:
        reusing the instance afterwards (with or without telemetry)
        sees the architecture's original bus again."""
        config = scaled_config(fast_mb=1.0)
        architecture = ChameleonArchitecture(config)
        original_bus = architecture.telemetry
        workload = _smoke_workload(config)
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        simulate(
            architecture,
            workload,
            accesses_per_core=100,
            warmup_per_core=100,
            telemetry=bus,
        )
        assert architecture.telemetry is original_bus
        assert log.events  # the run did emit through the passed bus
        before = len(log.events)
        simulate(
            architecture,
            _smoke_workload(config),
            accesses_per_core=100,
            warmup_per_core=100,
        )
        # The second (telemetry-off) run must not feed the first's log.
        assert len(log.events) == before

    def test_epoch_faults_are_int(self):
        config = scaled_config(fast_mb=1.0)
        architecture = PoMArchitecture(config)
        workload = _smoke_workload(config)
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        simulate(
            architecture,
            workload,
            accesses_per_core=200,
            warmup_per_core=0,
            telemetry=bus,
        )
        samples = [e for e in log.events if isinstance(e, EpochSample)]
        assert samples
        for sample in samples:
            assert type(sample.faults) is int
            assert type(sample.to_dict()["faults"]) is int


class TestWarmupBoundary:
    """counters.reset() after warmup leaves the measured-window metrics
    derived from measured traffic only — on both kernels."""

    @pytest.mark.parametrize("kernel", ["scalar", "auto"])
    def test_measured_window_metrics(self, kernel):
        config = scaled_config(fast_mb=1.0)
        workload = _smoke_workload(config)
        result = simulate(
            PoMArchitecture(config),
            workload,
            accesses_per_core=300,
            warmup_per_core=300,
            kernel=kernel,
        )
        measured = 300 * SMOKE_SCALE.num_copies
        assert result.counters["arch.accesses"] == measured
        assert (
            result.fast_hit_rate
            == result.counters["arch.fast_hits"] / measured
        )
        assert (
            result.average_latency_ns
            == result.counters["arch.latency_ns"] / measured
        )

    def test_trailing_epoch_flush_with_telemetry(self):
        """A measured total not divisible by the epoch stride emits one
        trailing partial EpochSample covering the leftovers, and its
        cumulative tallies equal the full measured window."""
        config = scaled_config(fast_mb=1.0)
        workload = _smoke_workload(config)
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        # 301 * 4 = 1204 measured accesses; stride = 1204 // 20 = 60,
        # 1204 % 60 = 4 leftovers -> 20 full epochs + 1 trailing flush.
        result = simulate(
            PoMArchitecture(config),
            workload,
            accesses_per_core=301,
            warmup_per_core=301,
            telemetry=bus,
        )
        samples = [e for e in log.events if isinstance(e, EpochSample)]
        assert len(samples) == 21
        assert [s.epoch for s in samples] == list(range(1, 22))
        last = samples[-1]
        assert last.accesses == result.counters["arch.accesses"]
        assert last.fast_hits == result.counters["arch.fast_hits"]


class TestBulkAccumulators:
    """The bulk accumulator primitives the batched kernel relies on."""

    def test_add_many_matches_sequential_adds(self):
        bulk = CounterSet()
        sequential = CounterSet()
        values = [0.1, 0.25, 1.75, 3.5, 0.1]
        bulk.add_many("k", values)
        for value in values:
            sequential.add("k", value)
        assert bulk["k"] == sequential["k"]

    def test_add_repeat_matches_repeated_adds(self):
        bulk = CounterSet()
        sequential = CounterSet()
        bulk.add_repeat("k", 0.1, 7)
        for _ in range(7):
            sequential.add("k", 0.1)
        assert bulk["k"] == sequential["k"]
        assert bulk["k"] != 0.1 * 7  # the multiply is NOT equivalent

    def test_observe_array_matches_sequential_records(self):
        bulk = Histogram.linear(0.0, 128.0, 8)
        sequential = Histogram.linear(0.0, 128.0, 8)
        values = [3.0, 17.5, 120.0, 64.25, 3.0, 250.0]
        bulk.observe_array(values)
        for value in values:
            sequential.record(value)
        assert bulk.buckets() == sequential.buckets()
        assert bulk.mean == sequential.mean
        assert (bulk.count, bulk.minimum, bulk.maximum) == (
            sequential.count,
            sequential.minimum,
            sequential.maximum,
        )
