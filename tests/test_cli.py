"""Tests for the ``python -m repro.experiments`` CLI."""

import dataclasses

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main
from repro.experiments.runner import DEFAULT_SCALE, SMOKE_SCALE


@pytest.fixture(autouse=True)
def _isolated_cache_dir(isolated_cache_dir):
    """Keep CLI runs without --cache-dir out of the user's home
    (delegates to the shared ``isolated_cache_dir`` fixture)."""


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "table1" in out and "overhead" in out

    def test_every_registered_experiment_has_a_runner(self):
        expected = {
            "table1", "table2", "fig2a", "fig2b", "fig2c", "fig3",
            "fig4", "fig5", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "fig21", "fig22", "fig23", "overhead",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        assert "Stacked DRAM" in capsys.readouterr().out

    def test_overhead_runs(self, capsys):
        assert main(["overhead"]) == 0
        assert "ISA events" in capsys.readouterr().out

    def test_fig15_with_scale_flags(self, capsys):
        code = main(
            ["fig15", "--accesses", "150", "--warmup", "150", "--fast-mb", "1"]
        )
        assert code == 0
        assert "Figure 15" in capsys.readouterr().out

    def test_fig2c_series_output(self, capsys):
        code = main(
            ["fig2c", "--accesses", "200", "--warmup", "0", "--fast-mb", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit_rate" in out


SMOKE_FLAGS = [
    "--accesses", "150", "--warmup", "150", "--fast-mb", "1",
]


class TestRuntimeFlags:
    def test_jobs_flag_runs_parallel(self, capsys, tmp_path):
        code = main(
            ["fig16", *SMOKE_FLAGS, "--jobs", "2",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 16" in captured.out
        assert "[runtime]" in captured.err
        assert "jobs=2" in captured.err

    def test_warm_cache_performs_zero_simulations(self, capsys, tmp_path):
        assert main(
            ["fig16", *SMOKE_FLAGS, "--cache-dir", str(tmp_path)]
        ) == 0
        first = capsys.readouterr()
        assert "simulated=0" not in first.err
        assert main(
            ["fig16", *SMOKE_FLAGS, "--cache-dir", str(tmp_path)]
        ) == 0
        second = capsys.readouterr()
        assert "simulated=0" in second.err
        assert "hit-rate=100.0%" in second.err
        assert second.out == first.out

    def test_no_cache_flag_disables_persistence(self, capsys, tmp_path):
        for _ in range(2):
            assert main(
                ["fig16", *SMOKE_FLAGS, "--no-cache",
                 "--cache-dir", str(tmp_path)]
            ) == 0
            err = capsys.readouterr().err
            assert "disk-hits=0" in err
        assert not any(tmp_path.iterdir())

    def test_progress_flag_prints_cells(self, capsys, tmp_path):
        assert main(
            ["fig16", *SMOKE_FLAGS, "--no-cache", "--progress",
             "--cache-dir", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "Chameleon/mcf" in err or "Chameleon-Opt/mcf" in err

    def test_arena_on_by_default_and_reported(self, capsys, tmp_path):
        assert main(
            ["fig16", *SMOKE_FLAGS, "--no-cache",
             "--cache-dir", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "arena-bytes=" in err
        assert "arena-hits=" in err

    def test_no_arena_flag_disables_the_arena(self, capsys, tmp_path):
        assert main(
            ["fig16", *SMOKE_FLAGS, "--no-cache", "--no-arena",
             "--cache-dir", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "arena-bytes=" not in err

    def test_arena_does_not_change_output(self, capsys, tmp_path):
        assert main(
            ["fig16", *SMOKE_FLAGS, "--no-cache",
             "--cache-dir", str(tmp_path)]
        ) == 0
        with_arena = capsys.readouterr().out
        assert main(
            ["fig16", *SMOKE_FLAGS, "--no-cache", "--no-arena",
             "--cache-dir", str(tmp_path)]
        ) == 0
        without = capsys.readouterr().out
        assert with_arena == without


class TestFaultToleranceFlags:
    def test_retries_and_timeout_flags_accepted(self, capsys, tmp_path):
        code = main(
            ["fig16", *SMOKE_FLAGS, "--no-cache",
             "--retries", "1", "--timeout", "120",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "[runtime]" in err
        assert "retries=0" in err  # tolerance armed, nothing failed

    def test_env_fault_plan_drives_the_cli(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1,error=1,retries=2")
        code = main(
            ["fig16", *SMOKE_FLAGS, "--no-cache",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        # The injected transient error was absorbed by one retry and
        # the figure still rendered.
        assert "Figure 16" in captured.out
        assert "retries=1" in captured.err

    def test_resume_flag_completes_and_discards_journal(
        self, capsys, tmp_path
    ):
        code = main(
            ["fig16", *SMOKE_FLAGS, "--resume",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        assert "resumed=0" in capsys.readouterr().err
        # The sweep completed, so no interrupted-sweep marker remains.
        assert not list(tmp_path.rglob("sweep-*.jsonl"))


class TestCacheSubcommand:
    def test_info_empty(self, capsys, tmp_path):
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries      : 0" in out
        assert str(tmp_path) in out

    def test_info_then_clear(self, capsys, tmp_path):
        assert main(
            ["fig16", *SMOKE_FLAGS, "--cache-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        cells = 2 * len(DEFAULT_SCALE.benchmarks)  # fig16: two designs
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert f"entries      : {cells}" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert f"removed {cells}" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "entries      : 0" in capsys.readouterr().out

    def test_unknown_cache_action(self, capsys, tmp_path):
        assert main(["cache", "wipe", "--cache-dir", str(tmp_path)]) == 2
        assert "unknown cache action" in capsys.readouterr().err


class TestExitCodes:
    """The CLI contract: 0 success, 1 runtime failure, 2 usage error —
    a sweep that cannot complete must never exit 0."""

    def test_exhausted_fault_plan_exits_one(
        self, capsys, tmp_path, monkeypatch
    ):
        # A crash with no retries is unsurvivable: the SweepJobError
        # must surface as exit code 1, not a traceback or a false 0.
        monkeypatch.setenv("REPRO_FAULTS", "seed=1,crash=1,retries=0")
        code = main(
            ["fig16", *SMOKE_FLAGS, "--no-cache",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "Figure 16" not in captured.out

    def test_all_with_failing_plan_exits_one(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1,crash=1,retries=0")
        code = main(
            ["all", *SMOKE_FLAGS, "--no-cache",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err
