"""Tests for the ``python -m repro.experiments`` CLI."""

import dataclasses

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main
from repro.experiments.runner import SMOKE_SCALE


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "table1" in out and "overhead" in out

    def test_every_registered_experiment_has_a_runner(self):
        expected = {
            "table1", "table2", "fig2a", "fig2b", "fig2c", "fig3",
            "fig4", "fig5", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "fig21", "fig22", "fig23", "overhead",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        assert "Stacked DRAM" in capsys.readouterr().out

    def test_overhead_runs(self, capsys):
        assert main(["overhead"]) == 0
        assert "ISA events" in capsys.readouterr().out

    def test_fig15_with_scale_flags(self, capsys):
        code = main(
            ["fig15", "--accesses", "150", "--warmup", "150", "--fast-mb", "1"]
        )
        assert code == 0
        assert "Figure 15" in capsys.readouterr().out

    def test_fig2c_series_output(self, capsys):
        code = main(
            ["fig2c", "--accesses", "200", "--warmup", "0", "--fast-mb", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit_rate" in out
