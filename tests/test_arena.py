"""The shared-memory trace arena: parity, fallback, and cleanup.

The arena is pure plumbing — it must never change a result.  The
tests here pin that from every side: compiled traces are byte-equal
to fresh generation, arena-on sweeps are byte-equal to arena-off
sweeps across the whole design registry (both replay kernels), every
failure mode degrades to regeneration, and no ``/dev/shm`` segment
survives a sweep — not even one whose workers were crash-injected.
"""

import glob
import json

import numpy as np
import pytest

from repro.experiments.designs import REGISTRY
from repro.experiments.runner import SMOKE_SCALE, Scale
from repro.runtime import SweepExecutor
from tests.conftest import tiny_scale
from repro.runtime.arena import (
    ARENA_PREFIX,
    ARENA_SCHEMA_VERSION,
    DEFAULT_ARENA_BUDGET,
    TraceArena,
    arena_budget,
    arena_key,
    attach_arena,
)
from repro.telemetry import ArenaEvent, event_from_dict
from repro.workloads import benchmark, build_workload
from repro.workloads.compiled import compile_trace

TINY = tiny_scale(benchmarks=("mcf", "bwaves"))


def leaked_segments() -> list:
    return glob.glob(f"/dev/shm/{ARENA_PREFIX}*")


def tiny_workload(name: str = "mcf"):
    return build_workload(
        TINY.config(),
        benchmark(name),
        num_copies=TINY.num_copies,
        seed=TINY.seed,
    )


def shm_available() -> bool:
    probe = TraceArena.publish(TINY, ["mcf"])
    if probe is None:
        return False
    probe.dispose()
    return True


needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this host"
)


class TestCompiledTrace:
    def test_compiled_equals_fresh_generation(self):
        workload = tiny_workload()
        total = TINY.warmup_per_core + TINY.accesses_per_core
        trace = compile_trace(workload, total)
        fresh = tiny_workload()
        for compiled_stream, live_stream in zip(
            trace.streams(total), fresh.streams(total)
        ):
            assert list(compiled_stream) == list(live_stream)

    def test_batch_boundaries_preserved(self):
        workload = tiny_workload()
        total = TINY.warmup_per_core + TINY.accesses_per_core
        trace = compile_trace(workload, total)
        fresh = tiny_workload()
        compiled_sizes = [
            [len(b) for b in stream] for stream in trace.stream_batches(total)
        ]
        live_sizes = [
            [len(b) for b in stream]
            for stream in fresh.stream_batches(total)
        ]
        assert compiled_sizes == live_sizes

    def test_prefix_request_rejected(self):
        # RNG plan sizes depend on the requested total, so a prefix of
        # a longer compiled trace is NOT the shorter generation — the
        # trace must refuse rather than silently diverge.
        workload = tiny_workload()
        trace = compile_trace(workload, 240)
        with pytest.raises(ValueError, match="compiled for"):
            list(trace.streams(120))

    def test_attached_workload_dispatches_to_trace(self):
        workload = tiny_workload()
        total = TINY.warmup_per_core + TINY.accesses_per_core
        trace = compile_trace(workload, total)
        workload.attach_trace(trace)
        assert workload.trace is trace
        direct = [list(s) for s in trace.streams(total)]
        via = [list(s) for s in workload.streams(total)]
        assert direct == via
        workload.detach_trace()
        assert workload.trace is None

    def test_attach_validates_identity(self):
        workload = tiny_workload()
        other = compile_trace(tiny_workload("bwaves"), 240)
        with pytest.raises(ValueError, match="bwaves"):
            workload.attach_trace(other)


@needs_shm
class TestPublishAttach:
    def test_roundtrip_is_byte_identical(self):
        arena = TraceArena.publish(TINY, list(TINY.benchmarks))
        try:
            view = attach_arena(arena.manifest)
            try:
                total = TINY.warmup_per_core + TINY.accesses_per_core
                for name in TINY.benchmarks:
                    shared = view.trace(name)
                    local = compile_trace(tiny_workload(name), total)
                    for s_core, l_core in zip(shared.cores, local.cores):
                        np.testing.assert_array_equal(
                            s_core.batch.addresses, l_core.batch.addresses
                        )
                        np.testing.assert_array_equal(
                            s_core.batch.icount_gaps,
                            l_core.batch.icount_gaps,
                        )
                        np.testing.assert_array_equal(
                            s_core.batch.is_writes, l_core.batch.is_writes
                        )
                        np.testing.assert_array_equal(
                            s_core.batch_lengths, l_core.batch_lengths
                        )
            finally:
                view.close()
        finally:
            arena.dispose()
        assert leaked_segments() == []

    def test_attached_views_are_read_only(self):
        arena = TraceArena.publish(TINY, ["mcf"])
        try:
            view = attach_arena(arena.manifest)
            try:
                trace = view.trace("mcf")
                with pytest.raises(ValueError):
                    trace.cores[0].batch.addresses[0] = 1
                with pytest.raises(ValueError):
                    trace.cores[0].batch_lengths[0] = 1
            finally:
                view.close()
        finally:
            arena.dispose()

    def test_manifest_is_json_safe(self):
        arena = TraceArena.publish(TINY, ["mcf"])
        try:
            wire = json.dumps(arena.manifest)
            assert json.loads(wire) == arena.manifest
        finally:
            arena.dispose()

    def test_dispose_is_idempotent_and_unlinks(self):
        arena = TraceArena.publish(TINY, ["mcf"])
        name = arena.name
        arena.dispose()
        arena.dispose()
        assert not glob.glob(f"/dev/shm/{name}")
        with pytest.raises(OSError):
            attach_arena(
                {
                    "arena_schema": ARENA_SCHEMA_VERSION,
                    "segment": name,
                    "workloads": {},
                    "accesses_per_core": 1,
                    "num_copies": 1,
                    "bytes": 1,
                    "key": "",
                }
            )

    def test_schema_mismatch_rejected(self):
        arena = TraceArena.publish(TINY, ["mcf"])
        try:
            bad = dict(arena.manifest, arena_schema=ARENA_SCHEMA_VERSION + 1)
            with pytest.raises(ValueError, match="schema"):
                attach_arena(bad)
        finally:
            arena.dispose()


class TestBudgetAndKeys:
    def test_over_budget_returns_none(self):
        assert TraceArena.publish(TINY, ["mcf"], budget=64) is None
        assert leaked_segments() == []

    def test_empty_grid_returns_none(self):
        assert TraceArena.publish(TINY, []) is None

    def test_env_budget_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA_BUDGET", "12345")
        assert arena_budget() == 12345
        monkeypatch.setenv("REPRO_ARENA_BUDGET", "not-a-number")
        assert arena_budget() == DEFAULT_ARENA_BUDGET
        assert arena_budget(99) == 99

    def test_key_is_content_addressed(self):
        base = arena_key(TINY, ["mcf"])
        assert base == arena_key(TINY, ["mcf"])
        assert base != arena_key(TINY, ["mcf", "bwaves"])
        bumped = Scale(
            fast_mb=TINY.fast_mb,
            accesses_per_core=TINY.accesses_per_core,
            warmup_per_core=TINY.warmup_per_core,
            num_copies=TINY.num_copies,
            benchmarks=TINY.benchmarks,
            seed=TINY.seed + 1,
        )
        assert base != arena_key(bumped, ["mcf"])


class TestSweepParity:
    def _sweep(self, jobs: int, arena: bool, designs, scale=SMOKE_SCALE):
        executor = SweepExecutor(jobs=jobs, cache=None, arena=arena)
        results = executor.run(scale, designs)
        return (
            {
                f"{d}/{w}": r.to_dict()
                for (d, w), r in sorted(results.items())
            },
            executor.metrics,
        )

    @pytest.mark.slow
    def test_arena_matches_regeneration_across_registry(self):
        # Every design — batched-kernel, scalar, and pager-backed
        # alike — must produce byte-identical wire forms either way.
        labels = REGISTRY.labels()
        with_arena, metrics = self._sweep(1, True, labels)
        without, _ = self._sweep(1, False, labels)
        assert with_arena == without
        if metrics.arena_bytes:
            assert metrics.arena_hits == len(with_arena)
        assert leaked_segments() == []

    @needs_shm
    def test_pooled_arena_matches_serial(self):
        designs = ("PoM", "Chameleon-Opt")
        pooled, metrics = self._sweep(4, True, designs, scale=TINY)
        serial, _ = self._sweep(1, False, designs, scale=TINY)
        assert pooled == serial
        assert metrics.arena_bytes > 0
        assert leaked_segments() == []

    def test_no_arena_reports_zero_metrics(self):
        _, metrics = self._sweep(1, False, ("PoM",), scale=TINY)
        assert metrics.arena_bytes == 0
        assert metrics.arena_hits == 0
        assert "arena-bytes" not in metrics.summary()


@needs_shm
class TestFaultInteraction:
    def test_crash_injected_sweep_cleans_up(self):
        from repro.runtime import FaultPlan

        executor = SweepExecutor(
            jobs=2,
            cache=None,
            arena=True,
            faults=FaultPlan(seed=7, crashes=2, retries=2),
        )
        results = executor.run(TINY, ("PoM", "Alloy-Cache"))
        plain = SweepExecutor(jobs=1, cache=None, arena=False).run(
            TINY, ("PoM", "Alloy-Cache")
        )
        assert {
            k: v.to_dict() for k, v in results.items()
        } == {k: v.to_dict() for k, v in plain.items()}
        assert executor.metrics.crashes >= 1
        assert leaked_segments() == []

    def test_failed_sweep_still_unlinks(self):
        from repro.runtime import FaultPlan, SweepJobError

        executor = SweepExecutor(
            jobs=2,
            cache=None,
            arena=True,
            retries=0,
            faults=FaultPlan(seed=3, crashes=1, retries=0),
        )
        with pytest.raises(SweepJobError):
            executor.run(TINY, ("PoM",))
        assert leaked_segments() == []

    def test_worker_attach_failure_regenerates(self):
        from repro.runtime.cells import timed_cell

        arena = TraceArena.publish(TINY, ["mcf"])
        manifest = dict(arena.manifest)
        arena.dispose()  # segment now gone: attach must fail cleanly
        design, workload, _, result, _ = timed_cell(
            (TINY, "PoM", "mcf", False, False, None, 0.0, manifest)
        )
        baseline, _, _, plain, _ = timed_cell(
            (TINY, "PoM", "mcf", False, False, None, 0.0, None)
        )
        assert result.to_dict() == plain.to_dict()


class TestArenaTelemetry:
    def test_event_wire_roundtrip(self):
        event = ArenaEvent(
            time_ns=1.5,
            action="attach",
            segment="repro-arena-abc-1",
            bytes=4096,
            workloads=3,
        )
        wire = event.to_dict()
        assert wire["kind"] == "arena"
        assert event_from_dict(wire) == event

    @needs_shm
    def test_captured_streams_mark_attach_and_detach(self):
        executor = SweepExecutor(
            jobs=1, cache=None, arena=True, telemetry=__import__(
                "repro.telemetry", fromlist=["EventBus"]
            ).EventBus()
        )
        executor.run(TINY, ("PoM",))
        for (design, workload), stream in executor.events.items():
            kinds = [event.kind for event in stream]
            assert kinds.count("arena") == 2
            arena_events = [e for e in stream if e.kind == "arena"]
            assert [e.action for e in arena_events] == ["attach", "detach"]
