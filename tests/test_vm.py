"""Tests for virtual memory and the page-fault engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import KB, MB, PAGE_BYTES, THP_BYTES
from repro.osmodel import (
    AddressSpace,
    BuddyAllocator,
    PageFaultEngine,
    PageHookDispatcher,
    VirtualMemory,
)


class RecordingNotifier:
    def __init__(self):
        self.allocs = []
        self.frees = []

    def isa_alloc(self, segment_id):
        self.allocs.append(segment_id)

    def isa_free(self, segment_id):
        self.frees.append(segment_id)


class TestAddressSpace:
    def test_translate_unmapped_is_none(self):
        assert AddressSpace(1).translate(0x1000) is None

    def test_map_and_translate(self):
        space = AddressSpace(1)
        space.map(0x10000, 0x4000, PAGE_BYTES)
        assert space.translate(0x10000) == 0x4000
        assert space.translate(0x10004) == 0x4004

    def test_double_map_rejected(self):
        space = AddressSpace(1)
        space.map(0, 0x1000, PAGE_BYTES)
        with pytest.raises(ValueError):
            space.map(0, 0x2000, PAGE_BYTES)

    def test_unmap(self):
        space = AddressSpace(1)
        space.map(0, 0x1000, 2 * PAGE_BYTES)
        mapping = space.unmap(PAGE_BYTES)  # any page of the mapping
        assert mapping.size == 2 * PAGE_BYTES
        assert space.translate(0) is None

    def test_unmap_missing_raises(self):
        with pytest.raises(KeyError):
            AddressSpace(1).unmap(0)

    def test_mapped_bytes(self):
        space = AddressSpace(1)
        space.map(0, 0x1000, 3 * PAGE_BYTES)
        assert space.mapped_bytes() == 3 * PAGE_BYTES


class TestAddressSpaceLastPageCache:
    """The one-entry last-page cache is a pure lookup shortcut: every
    observable translation must match the uncached walk."""

    def test_repeated_same_page_translations(self):
        space = AddressSpace(1)
        space.map(0x10000, 0x4000, PAGE_BYTES)
        # Second lookup is served by the cache; results identical.
        assert space.translate(0x10000) == 0x4000
        assert space.translate(0x10008) == 0x4008
        assert space.translate(0x10ffc) == 0x4ffc

    def test_cache_does_not_leak_across_pages(self):
        space = AddressSpace(1)
        space.map(0, 0x1000, PAGE_BYTES)
        space.map(PAGE_BYTES, 0x9000, PAGE_BYTES)
        assert space.translate(4) == 0x1004
        assert space.translate(PAGE_BYTES + 4) == 0x9004
        assert space.translate(4) == 0x1004

    def test_unmap_invalidates_cached_page(self):
        space = AddressSpace(1)
        space.map(0, 0x1000, PAGE_BYTES)
        assert space.translate(0) == 0x1000  # now cached
        space.unmap(0)
        assert space.translate(0) is None

    def test_negative_lookup_not_cached(self):
        space = AddressSpace(1)
        assert space.translate(0x2000) is None
        space.map(0x2000, 0x7000, PAGE_BYTES)
        assert space.translate(0x2000) == 0x7000

    def test_remap_after_unmap_translates_fresh(self):
        space = AddressSpace(1)
        space.map(0, 0x1000, PAGE_BYTES)
        assert space.translate(0) == 0x1000
        space.unmap(0)
        space.map(0, 0x5000, PAGE_BYTES)
        assert space.translate(0) == 0x5000

    @given(
        st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=200
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_cached_translation_matches_model(self, vpages):
        """Arbitrary translate sequences agree with a plain dict model
        — the cache can never change a result (and therefore never a
        fault count or access timing derived from one)."""
        space = AddressSpace(1)
        model = {}
        for vpage in range(0, 32, 2):  # even pages mapped, odd missing
            paddr = 0x100000 + vpage * PAGE_BYTES
            space.map(vpage * PAGE_BYTES, paddr, PAGE_BYTES)
            model[vpage] = paddr
        for vpage in vpages:
            vaddr = vpage * PAGE_BYTES + (vpage % PAGE_BYTES)
            expected = (
                model[vpage] + vpage % PAGE_BYTES
                if vpage in model
                else None
            )
            assert space.translate(vaddr) == expected


class TestTranslateBatch:
    """Vectorised page-table lookups must agree lane-for-lane with the
    scalar resident-set view, and stop at the first non-resident lane."""

    def _engine(self, pages_resident, capacity_pages=8):
        engine = PageFaultEngine(capacity_pages * PAGE_BYTES)
        for page in pages_resident:
            engine.access(page * PAGE_BYTES)
        return engine

    def test_all_resident_column(self):
        engine = self._engine([0, 1, 2, 3])
        addresses = np.array(
            [2 * PAGE_BYTES + 8, 12, 3 * PAGE_BYTES, PAGE_BYTES + 100],
            dtype=np.int64,
        )
        physical, pages, n_resident = engine.translate_batch(addresses)
        assert n_resident == len(addresses)
        assert pages.tolist() == [2, 0, 3, 1]
        # Every lane agrees with the scalar translation.
        for lane, address in enumerate(addresses.tolist()):
            _, expected = engine.access_translate(address)
            assert physical[lane] == expected

    def test_fault_on_lane_zero(self):
        engine = self._engine([0, 1])
        addresses = np.array(
            [5 * PAGE_BYTES, 0, PAGE_BYTES], dtype=np.int64
        )
        physical, pages, n_resident = engine.translate_batch(addresses)
        assert n_resident == 0
        assert len(physical) == 0
        assert len(pages) == 0

    def test_fault_mid_column_cuts_prefix(self):
        engine = self._engine([0, 1, 2])
        addresses = np.array(
            [0, PAGE_BYTES, 7 * PAGE_BYTES, 2 * PAGE_BYTES],
            dtype=np.int64,
        )
        _, pages, n_resident = engine.translate_batch(addresses)
        assert n_resident == 2
        assert pages.tolist() == [0, 1]

    def test_fault_on_last_lane(self):
        engine = self._engine([0, 1])
        addresses = np.array([0, PAGE_BYTES, 9 * PAGE_BYTES], dtype=np.int64)
        _, _, n_resident = engine.translate_batch(addresses)
        assert n_resident == 2

    def test_addresses_beyond_frame_table_are_non_resident(self):
        engine = self._engine([0])
        far = 10_000 * PAGE_BYTES  # page index past the table's extent
        addresses = np.array([0, far], dtype=np.int64)
        _, _, n_resident = engine.translate_batch(addresses)
        assert n_resident == 1

    def test_epoch_bumps_on_eviction_not_insertion(self):
        engine = PageFaultEngine(2 * PAGE_BYTES)
        start = engine.epoch
        engine.access(0)            # insertion, no eviction
        engine.access(PAGE_BYTES)   # insertion, no eviction
        assert engine.epoch == start
        engine.access(2 * PAGE_BYTES)  # evicts page 0
        assert engine.epoch == start + 1

    def test_eviction_invalidates_frame_table(self):
        engine = PageFaultEngine(2 * PAGE_BYTES)
        engine.access(0)
        engine.access(PAGE_BYTES)
        engine.access(2 * PAGE_BYTES)  # evicts page 0 (LRU)
        addresses = np.array([0], dtype=np.int64)
        _, _, n_resident = engine.translate_batch(addresses)
        assert n_resident == 0

    def test_touch_resident_many_orders_lru(self):
        engine = PageFaultEngine(2 * PAGE_BYTES)
        engine.access(0)
        engine.access(PAGE_BYTES)
        engine.touch_resident_many([0])  # page 1 becomes LRU
        engine.access(2 * PAGE_BYTES)    # must evict page 1
        assert engine.access(0) == 0
        assert engine.access(PAGE_BYTES) == engine.fault_latency_cycles

    @given(
        st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=120
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_prefix_matches_scalar_walk(self, pages):
        """After any access history, translate_batch's prefix equals
        the scalar per-lane walk: resident lanes translate identically
        and the horizon is the first non-resident lane."""
        engine = PageFaultEngine(4 * PAGE_BYTES)
        for page in pages:
            engine.access(page * PAGE_BYTES)
        probe = list(range(0, 32, 3))
        addresses = np.array(
            [p * PAGE_BYTES + 7 for p in probe], dtype=np.int64
        )
        physical, batch_pages, n_resident = engine.translate_batch(addresses)
        for lane, page in enumerate(probe):
            if lane < n_resident:
                assert engine.is_resident(page)
                assert batch_pages[lane] == page
                assert physical[lane] % PAGE_BYTES == 7
                assert (
                    physical[lane] // PAGE_BYTES
                    == engine._resident[page]
                )
            else:
                break
        if n_resident < len(probe):
            assert not engine.is_resident(probe[n_resident])


class TestVirtualMemory:
    def setup_method(self):
        self.buddy = BuddyAllocator(8 * MB)
        self.notifier = RecordingNotifier()
        dispatcher = PageHookDispatcher(2 * KB, PAGE_BYTES, self.notifier)
        self.vm = VirtualMemory(
            allocate_backing=lambda size: self.buddy.alloc(
                max(0, (size // PAGE_BYTES - 1).bit_length())
            ),
            free_backing=self.buddy.free,
            dispatcher=dispatcher,
        )

    def test_first_touch_allocates(self):
        paddr = self.vm.touch(pid=1, vaddr=0x5000)
        assert paddr is not None
        assert self.notifier.allocs  # ISA-Alloc fired (Algorithm 1)

    def test_second_touch_is_stable(self):
        first = self.vm.touch(1, 0x5000)
        second = self.vm.touch(1, 0x5000)
        assert first == second

    def test_thp_touch_maps_2mb(self):
        self.vm.touch(1, 0x200000, prefer_thp=True)
        space = self.vm.space(1)
        assert space.mapped_bytes() == THP_BYTES
        assert len(self.notifier.allocs) == THP_BYTES // (2 * KB)

    def test_thp_fallback_to_base_pages(self):
        # Exhaust so no 2MB block remains but 4KB pages do.
        holds = []
        while self.buddy.free_bytes >= THP_BYTES:
            holds.append(self.buddy.alloc(0))
        self.vm.touch(1, 0x200000, prefer_thp=True)
        assert self.vm.space(1).mapped_bytes() == PAGE_BYTES

    def test_release_frees_and_notifies(self):
        self.vm.touch(1, 0x5000)
        before = self.buddy.free_bytes
        self.vm.release(1, 0x5000)
        assert self.buddy.free_bytes == before + PAGE_BYTES
        assert self.notifier.frees

    def test_release_all(self):
        for page in range(5):
            self.vm.touch(1, page * PAGE_BYTES)
        released = self.vm.release_all(1)
        assert released == 5 * PAGE_BYTES
        assert self.vm.space(1).mapped_bytes() == 0

    def test_isolated_address_spaces(self):
        a = self.vm.touch(1, 0x5000)
        b = self.vm.touch(2, 0x5000)
        assert a != b


class TestPageFaultEngine:
    def test_first_touch_is_minor_with_capacity(self):
        engine = PageFaultEngine(16 * PAGE_BYTES)
        assert engine.access(0) == 0
        assert engine.page_faults == 0

    def test_resident_hit_is_free(self):
        engine = PageFaultEngine(16 * PAGE_BYTES)
        engine.access(0)
        assert engine.access(0) == 0

    def test_refault_after_eviction_is_major(self):
        engine = PageFaultEngine(2 * PAGE_BYTES)
        engine.access(0)
        engine.access(PAGE_BYTES)
        engine.access(2 * PAGE_BYTES)  # evicts page 0
        cost = engine.access(0)
        assert cost == engine.fault_latency_cycles
        assert engine.page_faults >= 1

    def test_lru_eviction_order(self):
        engine = PageFaultEngine(2 * PAGE_BYTES)
        engine.access(0)
        engine.access(PAGE_BYTES)
        engine.access(0)  # page 0 is MRU; page 1 is LRU
        engine.access(2 * PAGE_BYTES)  # must evict page 1
        assert engine.access(0) == 0
        assert engine.access(PAGE_BYTES) > 0

    def test_translation_stays_in_capacity(self):
        capacity = 4 * PAGE_BYTES
        engine = PageFaultEngine(capacity)
        for page in range(50):
            _, physical = engine.access_translate(page * PAGE_BYTES + 12)
            assert 0 <= physical < capacity
            assert physical % PAGE_BYTES == 12

    def test_translation_stable_while_resident(self):
        engine = PageFaultEngine(8 * PAGE_BYTES)
        _, first = engine.access_translate(0)
        _, second = engine.access_translate(0)
        assert first == second

    def test_resident_pages_bounded(self):
        engine = PageFaultEngine(4 * PAGE_BYTES)
        for page in range(100):
            engine.access(page * PAGE_BYTES)
        assert engine.resident_pages <= 4

    def test_prime_marks_overflow_swapped_out(self):
        engine = PageFaultEngine(2 * PAGE_BYTES)
        engine.prime(page * PAGE_BYTES for page in range(4))
        # Pages 0 and 1 were evicted by priming; touching them is major.
        assert engine.access(0) == engine.fault_latency_cycles
        # Pages 2 and 3 are resident.
        assert engine.access(3 * PAGE_BYTES) == 0

    def test_prime_within_capacity_no_faults(self):
        engine = PageFaultEngine(8 * PAGE_BYTES)
        engine.prime(page * PAGE_BYTES for page in range(8))
        for page in range(8):
            assert engine.access(page * PAGE_BYTES) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PageFaultEngine(100)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=63), min_size=1, max_size=400
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_two_distinct_frames_never_alias(self, pages):
        engine = PageFaultEngine(8 * PAGE_BYTES)
        frames = {}
        for page in pages:
            _, physical = engine.access_translate(page * PAGE_BYTES)
            frames[page] = physical // PAGE_BYTES
            # All currently resident pages map to distinct frames.
            resident = {
                p: engine._resident[p] for p in engine._resident
            }
            assert len(set(resident.values())) == len(resident)
