"""Tests for repro.config (Table I modelling)."""

import dataclasses

import pytest

from repro.config import (
    GB,
    KB,
    MB,
    CoreConfig,
    DramTiming,
    SystemConfig,
    offchip_dram,
    paper_config,
    ratio_config,
    scaled_config,
    stacked_dram,
)


class TestDramTiming:
    def test_row_hit_is_cas_only(self):
        timing = DramTiming()
        assert timing.row_hit_cycles == timing.tCAS

    def test_row_miss_adds_activate(self):
        timing = DramTiming()
        assert timing.row_miss_cycles == timing.tRCD + timing.tCAS

    def test_row_conflict_adds_precharge(self):
        timing = DramTiming()
        assert (
            timing.row_conflict_cycles
            == timing.tRP + timing.tRCD + timing.tCAS
        )

    def test_table1_timings(self):
        timing = DramTiming()
        assert (timing.tCAS, timing.tRCD, timing.tRP, timing.tRAS) == (
            11,
            11,
            11,
            28,
        )


class TestDramConfig:
    def test_stacked_dram_capacity_default(self):
        assert stacked_dram().capacity_bytes == 4 * GB

    def test_offchip_dram_capacity_default(self):
        assert offchip_dram().capacity_bytes == 20 * GB

    def test_stacked_has_higher_bandwidth(self):
        fast, slow = stacked_dram(), offchip_dram()
        ratio = (
            fast.peak_bandwidth_bytes_per_sec
            / slow.peak_bandwidth_bytes_per_sec
        )
        # 1.6GHz*128b*2ch vs 0.8GHz*64b*2ch => 4x.
        assert ratio == pytest.approx(4.0)

    def test_trfc_asymmetry(self):
        assert stacked_dram().timing.tRFC_ns == 138.0
        assert offchip_dram().timing.tRFC_ns == 530.0

    def test_burst_time_scales_linearly(self):
        fast = stacked_dram()
        assert fast.burst_time_ns(128) == pytest.approx(
            2 * fast.burst_time_ns(64)
        )

    def test_total_banks(self):
        assert stacked_dram().total_banks == 2 * 2 * 8


class TestSystemConfig:
    def test_paper_config_ratio(self):
        assert paper_config().capacity_ratio == 5

    def test_paper_config_total(self):
        assert paper_config().total_capacity_bytes == 24 * GB

    def test_segment_group_count_equals_fast_segments(self):
        config = scaled_config()
        assert config.num_segment_groups == config.num_fast_segments

    def test_segments_per_group(self):
        assert scaled_config().segments_per_group == 6

    def test_scaled_config_preserves_ratio(self):
        assert scaled_config().capacity_ratio == paper_config().capacity_ratio

    def test_rejects_non_multiple_capacities(self):
        with pytest.raises(ValueError):
            SystemConfig(
                fast_mem=stacked_dram(3 * MB),
                slow_mem=offchip_dram(20 * MB),
            )

    def test_rejects_non_power_of_two_segment(self):
        with pytest.raises(ValueError):
            scaled_config(segment_bytes=3000)

    def test_with_segment_bytes(self):
        config = scaled_config().with_segment_bytes(64)
        assert config.segment_bytes == 64
        assert config.num_fast_segments == 4 * MB // 64


class TestRatioConfig:
    @pytest.mark.parametrize("ratio", [3, 5, 7])
    def test_ratio_preserved(self, ratio):
        assert ratio_config(ratio).capacity_ratio == ratio

    @pytest.mark.parametrize("ratio", [3, 5, 7])
    def test_total_is_constant(self, ratio):
        config = ratio_config(ratio)
        assert config.total_capacity_bytes == pytest.approx(24 * GB, rel=1e-6)

    def test_one_to_three_split(self):
        config = ratio_config(3)
        assert config.fast_mem.capacity_bytes == 6 * GB
        assert config.slow_mem.capacity_bytes == 18 * GB

    def test_one_to_seven_split(self):
        config = ratio_config(7)
        assert config.fast_mem.capacity_bytes == 3 * GB

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            ratio_config(0)


class TestCoreConfig:
    def test_frequency_matches_table1(self):
        assert CoreConfig().frequency_hz == 3.6e9

    def test_replace_keeps_frozen_semantics(self):
        core = CoreConfig()
        faster = dataclasses.replace(core, mlp=8.0)
        assert faster.mlp == 8.0
        assert core.mlp != 8.0
